#!/usr/bin/env python3
"""Appendix A: constructing shortcuts with zero topology knowledge.

The doubling search needs *no* genus, no embedding, and no (c, b)
estimates — it just tries, detects failure, and doubles.  This script
runs it on graph classes for which no closed-form bound is available
(Erdős–Rényi, k-trees) and on a torus for comparison with Theorem 1.

Run:  python examples/unknown_parameters.py
"""

from repro.core import find_shortcut_doubling, genus_bound, measure
from repro.graphs import generators, voronoi
from repro.graphs.spanning_trees import SpanningTree

def main() -> None:
    cases = [
        ("erdos-renyi", generators.erdos_renyi_connected(120, 0.04, seed=2)),
        ("k-tree (tw=3)", generators.k_tree(120, 3, seed=2)),
        ("torus (genus 1)", generators.torus(8, 8)),
    ]
    for name, topology in cases:
        partition = voronoi(topology, 10, seed=4)
        tree = SpanningTree.bfs(topology, 0)
        outcome = find_shortcut_doubling(topology, tree, partition, seed=9)
        report = measure(outcome.result.shortcut, topology, with_dilation=False)
        trail = " -> ".join(
            f"(c={t.c},b={t.b}){'ok' if t.succeeded else 'fail'}"
            for t in outcome.trials
        )
        print(f"{name}: n={topology.n}, D={tree.height}")
        print(f"  trials: {trail}")
        print(f"  built:  {report}")
        if name.startswith("torus"):
            c_bound, b_bound = genus_bound(1, tree.height)
            print(
                f"  Theorem 1 would have promised c={c_bound}, b={b_bound} — "
                f"doubling found a much better shortcut, as Appendix A notes."
            )
        print()

if __name__ == "__main__":
    main()
