#!/usr/bin/env python3
"""Quickstart: build a tree-restricted shortcut and route on it.

Walks the full public API surface in one script:

1. generate a planar grid and a partition into connected parts;
2. compute a BFS tree *distributively* (O(D) rounds);
3. certify an existential (c, b) pair and run FindShortcut (Theorem 3);
4. measure the shortcut (congestion / block parameter / dilation);
5. elect a leader for every part in parallel (Theorem 2).

Run:  python examples/quickstart.py

Engine selection: every simulation below runs on the default
``"batched"`` engine.  To pin the bit-for-bit identical (but slower)
executable specification instead, pass ``engine="reference"`` to any
wrapper that runs a simulation (``build_bfs_tree``, ``core_slow``,
``minimum_spanning_tree``, ``Simulator``, …) or scope a whole block
with ``with repro.congest.using_engine("reference"): ...``.
"""

from repro.congest import RoundLedger, Topology, build_bfs_tree, get_default_engine
from repro.core import PartwiseEngine, best_certified, find_shortcut, measure
from repro.graphs import generators, voronoi

def main() -> None:
    # A 12x12 planar grid, partitioned into 12 connected Voronoi cells.
    topology = generators.grid(12, 12)
    partition = voronoi(topology, 12, seed=1)
    print(f"network: {topology}, diameter {topology.diameter()}")
    print(f"partition: {partition}")
    print(f"simulator engine: {get_default_engine()}")

    # Distributed BFS tree; the ledger accumulates the round costs of
    # everything that follows.
    ledger = RoundLedger()
    tree, _ = build_bfs_tree(topology, root=0, ledger=ledger)
    print(f"BFS tree height (the paper's D): {tree.height}")

    # The existential promise: certify a (c, b) pair on this instance.
    point = best_certified(tree, partition)
    print(f"certified existential parameters: c={point.congestion}, b={point.block}")

    # Theorem 3: construct a shortcut that is (up to log factors) as
    # good as the promise — without any embedding.
    result = find_shortcut(
        topology, tree, partition, point.congestion, point.block,
        seed=7, ledger=ledger,
    )
    report = measure(result.shortcut, topology)
    print(f"FindShortcut: {result.iterations} iteration(s), quality {report}")

    # Theorem 2: part-parallel leader election on the shortcut.
    engine = PartwiseEngine(topology, result.shortcut, seed=7, ledger=ledger)
    leaders, _knowledge = engine.elect_leaders(3 * point.block)
    print(f"leaders (part -> min node id): {leaders}")

    print()
    print("round accounting:")
    print(ledger.summary())

if __name__ == "__main__":
    main()
