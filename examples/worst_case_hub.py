#!/usr/bin/env python3
"""The motivating scenario (Section 1.2): part diameter >> D.

A cycle with a spoked hub has constant-ish diameter, but a contiguous
arc of the cycle — a perfectly reasonable "part" — has induced diameter
Θ(n).  Aggregating within parts the naive way pays that diameter;
routing over a tree-restricted shortcut pays ~D instead.

Run:  python examples/worst_case_hub.py
"""

from repro.apps.fragment_comm import fragment_aggregate
from repro.congest import RoundLedger
from repro.core import PartwiseEngine, find_shortcut_doubling
from repro.graphs import cycle_arcs, generators
from repro.graphs.spanning_trees import SpanningTree

def main() -> None:
    n_cycle = 512
    topology = generators.cycle_with_hub(n_cycle, spoke_every=8)
    partition = cycle_arcs(n_cycle, 8, extra_nodes=1)
    diameters = partition.part_diameters(topology)
    print(f"network: {topology}, diameter {topology.diameter()}")
    print(f"parts: {partition.size} arcs, induced diameters {diameters}")

    # Naive: aggregate the per-part minimum using only G[P_i] edges.
    labels = {v: partition.part_of(v) for v in topology.nodes}
    values = {v: v for v in topology.nodes if labels[v] is not None}
    naive_ledger = RoundLedger()
    naive = fragment_aggregate(
        topology, labels, values, "min", seed=5, ledger=naive_ledger
    )

    # Shortcut: Appendix A doubling (no parameters known), then
    # Theorem 2 aggregation.
    tree = SpanningTree.bfs(topology, n_cycle)  # root at the hub
    outcome = find_shortcut_doubling(topology, tree, partition, seed=5)
    fast_ledger = RoundLedger()
    engine = PartwiseEngine(
        topology, outcome.result.shortcut, seed=5, ledger=fast_ledger
    )
    fast = engine.minimum_per_part(values, 3 * outcome.result.b)

    for i in range(partition.size):
        expected = min(partition.members(i))
        members = partition.members(i)
        assert all(naive[v] == expected for v in members)
        assert all(fast[v] == expected for v in members)

    print(f"naive intra-part aggregation: {naive_ledger.total_rounds} rounds")
    print(f"shortcut aggregation:         {fast_ledger.total_rounds} rounds")
    print(
        f"speedup: {naive_ledger.total_rounds / fast_ledger.total_rounds:.1f}x "
        f"(grows linearly with the cycle length)"
    )

if __name__ == "__main__":
    main()
