#!/usr/bin/env python3
"""Figure 1: the block-component structure of a shortcut subgraph.

Reproduces the paper's only figure as ASCII art: one part of a grid
partition, its tree-restricted shortcut subgraph H_i, and the block
components b1, b2, ... (subtrees of T intersecting P_i).

Legend:  ##  node of the part P_i
         b1  node of H_i, labelled by its block component
         ..  other nodes

Run:  python examples/visualize_blocks.py
"""

from repro.core import best_certified, block_components, find_shortcut
from repro.graphs import generators, grid_rows
from repro.graphs.spanning_trees import SpanningTree

def main() -> None:
    side = 10
    topology = generators.grid(side, side)
    partition = grid_rows(side, side)
    tree = SpanningTree.bfs(topology, 0)
    point = best_certified(tree, partition, caps=[2])  # force small caps
    result = find_shortcut(
        topology, tree, partition, point.congestion, point.block, seed=3
    )

    # Pick the part with the most block components — the most
    # interesting picture.
    part = max(
        range(partition.size),
        key=lambda i: len(block_components(result.shortcut, i)),
    )
    blocks = block_components(result.shortcut, part)
    print(
        f"part P_{part} (grid row {part}) has {len(blocks)} block "
        f"component(s); tree depth D = {tree.height}\n"
    )
    label = {}
    for index, block in enumerate(blocks, start=1):
        for v in block.nodes:
            label[v] = f"b{index}"
    members = partition.members(part)
    for r in range(side):
        cells = []
        for c in range(side):
            v = r * side + c
            if v in members:
                cells.append("##")
            elif v in label:
                cells.append(label[v])
            else:
                cells.append("..")
        print(" ".join(cells))
    print()
    for index, block in enumerate(blocks, start=1):
        print(
            f"  b{index}: root {block.root} at depth {block.root_depth}, "
            f"{block.size} node(s)"
        )

if __name__ == "__main__":
    main()
