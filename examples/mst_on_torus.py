#!/usr/bin/env python3
"""MST on a genus-1 graph with Theorem 1 parameters (Lemma 4).

Runs the shortcut-accelerated Borůvka MST on a toroidal grid — a
genus-1 topology for which no distributed embedding algorithm is known,
which is exactly the case this paper unlocks — and validates the result
against centralized Kruskal.

Run:  python examples/mst_on_torus.py
"""

from repro.apps import kruskal_reference, minimum_spanning_tree
from repro.graphs import generators
from repro.graphs.weights import weighted

def main() -> None:
    topology = weighted(generators.torus(7, 7), seed=3)
    print(f"network: {topology} (toroidal grid, genus 1)")

    result = minimum_spanning_tree(topology, params="genus", genus=1, seed=11)
    _edges, reference_weight = kruskal_reference(topology)

    print(f"Borůvka phases: {result.phases}")
    print(f"total rounds:   {result.rounds}")
    print(f"MST weight:     {result.weight} (Kruskal: {reference_weight})")
    assert result.weight == reference_weight, "MST mismatch!"
    assert result.edges == kruskal_reference(topology)[0]
    print("exact MST reproduced.")
    print()
    print("per-phase fragment counts and merges:")
    for record in result.phase_records:
        print(
            f"  phase {record.phase:2d}: {record.fragments:3d} fragments, "
            f"{record.merges:3d} merges"
        )

if __name__ == "__main__":
    main()
