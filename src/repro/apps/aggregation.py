"""Partwise aggregation on top of tree-restricted shortcuts.

The primitives distributed optimization algorithms actually call
(Section 1.2: "compute a (typically simple) function for each of the
parts in isolation"): per-part minimum / maximum / sum, and the
Borůvka workhorse — the minimum-weight outgoing edge of every part —
each in ``O(b (D + c))`` rounds via Theorem 2 routing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.encoding import decode_edge_candidate, encode_edge_candidate
from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.partwise import PartwiseEngine
from repro.core.shortcut import TreeRestrictedShortcut

LABEL_TOKEN = "lbl"


class NeighborLabelExchangeAlgorithm(NodeAlgorithm):
    """One round: every node learns every neighbor's label.

    Per-node inputs: ``label`` (any small int, or ``None`` to send a
    ``-1`` placeholder).  Outputs: ``neighbor_labels`` — mapping
    neighbor -> label.
    """

    name = "neighbor-label-exchange"

    def on_start(self, node) -> None:
        node.state.neighbor_labels = {}
        label = node.state.label
        node.broadcast((LABEL_TOKEN, -1 if label is None else label))

    def on_round(self, node, messages) -> None:
        for sender, payload in messages:
            value = payload[1]
            node.state.neighbor_labels[sender] = None if value == -1 else value


def exchange_labels(
    topology: Topology,
    labels: Dict[int, Optional[int]],
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    engine: EngineLike = None,
    backend: Optional[str] = None,
) -> Dict[int, Dict[int, Optional[int]]]:
    """Run one neighbor-label exchange round over all edges.

    ``backend="direct"`` skips the simulation: the exchange is one
    broadcast round of exactly ``2m`` messages, so the direct twin
    reads the labels off the CSR arrays and charges the identical cost.
    """
    from repro.core.partwise_fast import neighbor_labels_direct, resolve_backend

    if resolve_backend(backend) == "direct":
        neighbor_labels, rounds, messages = neighbor_labels_direct(topology, labels)
        if ledger is not None:
            ledger.charge("label-exchange", rounds, messages)
        return neighbor_labels
    inputs = {v: {"label": labels.get(v)} for v in topology.nodes}
    result = Simulator(
        topology, NeighborLabelExchangeAlgorithm(inputs), seed=seed,
        engine=engine,
    ).run()
    if ledger is not None:
        ledger.charge("label-exchange", result.rounds, result.messages)
    return {v: result.states[v].neighbor_labels for v in topology.nodes}


def aggregate_min(
    engine: PartwiseEngine, values: Dict[int, Optional[int]], b_bound: int
) -> Dict[int, Optional[int]]:
    """Per-part minimum, known to every part member (Theorem 2 ii+iii)."""
    return engine.minimum_per_part(values, b_bound)


def aggregate_max(
    engine: PartwiseEngine, values: Dict[int, Optional[int]], b_bound: int
) -> Dict[int, Optional[int]]:
    """Per-part maximum (negate-and-min through the same machinery)."""
    shifted = {
        v: (-values[v] if values.get(v) is not None else None) for v in values
    }
    result = engine.minimum_per_part(shifted, b_bound)
    return {v: (-r if r is not None else None) for v, r in result.items()}


def aggregate_sum(
    engine: PartwiseEngine, values: Dict[int, Optional[int]], b_bound: int
) -> Dict[int, Optional[int]]:
    """Per-part sum, delivered to the part's supergraph-BFS root.

    Uses the Lemma 3 pipeline with caller values instead of unit block
    counts; the per-part totals are then re-broadcast by the count
    protocol's verdict stage.
    """
    per_part, _verdict = engine.count_blocks(b_bound, values=values)
    out: Dict[int, Optional[int]] = {}
    for v in engine.block_of:
        part = engine.partition.part_of(v)
        out[v] = per_part.get(part)
    return out


def min_outgoing_edges(
    topology: Topology,
    engine: PartwiseEngine,
    b_bound: int,
    *,
    labels: Optional[Dict[int, Optional[int]]] = None,
    seed: int = 0,
) -> Tuple[
    Dict[int, Optional[Tuple[int, int, int]]],
    Dict[int, Dict[int, Optional[int]]],
]:
    """Minimum-weight outgoing edge of every part (Borůvka's primitive).

    Every node learns its part's globally minimum ``(weight, u, v)``
    outgoing edge (``None`` if the part has no outgoing edge — e.g. it
    spans the whole graph).  ``labels`` defaults to part ids.  Weight
    ties are broken by the lexicographic ``(u, v)`` encoding so the
    answer is unique.

    Returns ``(per-node minimum edge, per-node neighbor labels)`` — the
    neighbor labels come from the exchange round and are reused by
    Borůvka's merge logic.
    """
    partition = engine.partition
    if labels is None:
        labels = {v: partition.part_of(v) for v in topology.nodes}
    neighbor_labels = exchange_labels(
        topology, labels, seed=seed, ledger=engine.ledger,
        backend=engine.backend,
    )
    candidates: Dict[int, Optional[int]] = {}
    for v in topology.nodes:
        own = labels.get(v)
        if own is None:
            continue
        best: Optional[int] = None
        for w in topology.neighbors(v):
            if neighbor_labels[v].get(w) == own:
                continue
            code = encode_edge_candidate(topology.weight(v, w), v, w, topology.n)
            if best is None or code < best:
                best = code
        candidates[v] = best
    flooded = engine.minimum_per_part(candidates, b_bound)
    out: Dict[int, Optional[Tuple[int, int, int]]] = {}
    for v in engine.block_of:
        code = flooded.get(v)
        out[v] = None if code is None else decode_edge_candidate(code, topology.n)
    return out, neighbor_labels
