"""Shortcut-accelerated Borůvka MST (Lemma 4).

Borůvka's 1926 algorithm maintains a partition of the graph into MST
fragments; each phase every fragment finds its minimum-weight outgoing
edge and merges along it.  The distributed cost of a phase is the cost
of *communicating within fragments* — exactly the problem shortcuts
solve.  Per phase:

1. build a tree-restricted shortcut for the current fragment partition
   (FindShortcut with Theorem 1 parameters on a bounded-genus graph,
   or the Appendix A doubling search on arbitrary graphs);
2. one neighbor-label exchange round, then a Theorem 2 aggregation to
   find each fragment's minimum outgoing edge;
3. the paper's star-merge rule: every fragment flips a shared coin —
   *tail* fragments whose minimum edge points at a *head* fragment
   merge into it (chains cannot form, and each selected edge merges
   with probability >= 1/4, so O(log n) phases suffice w.h.p.);
4. the new fragment label travels from the merge endpoint to all old
   members through the shortcut (Theorem 2 broadcast).

On a genus-g graph this gives the paper's O(gD log^2 D log^2 n)-round
MST (Lemma 4).  The computed tree is exact: weights are made unique,
and tests compare against Kruskal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.apps.aggregation import min_outgoing_edges
from repro.congest.engine import engine_parameter
from repro.congest.randomness import coin, mix
from repro.congest.topology import Edge, Topology, canonical_edge
from repro.congest.trace import RoundLedger
from repro.core.doubling import find_shortcut_doubling
from repro.core.existence import best_certified, genus_bound
from repro.core.find_shortcut import find_shortcut
from repro.core.partwise import PartwiseEngine
from repro.core.partwise_fast import (
    backend_parameter,
    bfs_and_shared_randomness,
    get_default_backend,
)
from repro.errors import ReproError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

HEAD_COIN_SALT = 0x4EAD

PARAM_MODES = ("doubling", "genus", "given", "certified")


@dataclass(frozen=True)
class PhaseRecord:
    """Per-phase measurements of the Borůvka loop.

    ``construct_rounds`` and ``aggregate_rounds`` split the phase's
    ledger delta: rounds spent building the per-phase shortcut
    (FindShortcut / doubling, including barriers) vs rounds spent using
    it (neighbor discovery, the Theorem 2 minimum-outgoing-edge
    aggregation, the label broadcast, and the termination check).
    """

    phase: int
    fragments: int
    shortcut_c: int
    shortcut_b: int
    merges: int
    construct_rounds: int = 0
    aggregate_rounds: int = 0


@dataclass(frozen=True)
class MSTResult:
    """Output of a distributed MST computation.

    On a disconnected topology the result is the minimum spanning
    *forest*: ``edges``/``weight`` aggregate the per-component MSTs and
    ``components`` reports the explicit component count (``1`` for the
    ordinary connected case).  Components are disjoint networks that
    run concurrently in the CONGEST model, so ``ledger`` (and hence
    ``rounds``) is the slowest component's — the makespan — and
    ``phases`` / ``phase_records`` describe that same component.
    """

    edges: FrozenSet[Edge]
    weight: int
    phases: int
    ledger: RoundLedger
    phase_records: Tuple[PhaseRecord, ...]
    components: int = 1

    @property
    def rounds(self) -> int:
        """Total rounds including synchronisation barriers."""
        return self.ledger.total_rounds


def _build_shortcut(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    params: str,
    genus: Optional[int],
    c: Optional[int],
    b: Optional[int],
    use_fast: bool,
    seed: int,
    shared_seed: int,
    ledger: RoundLedger,
    construct_mode: Optional[str] = None,
):
    """Construct the per-phase shortcut; returns (shortcut, 3b bound).

    ``construct_mode`` selects the construction kernels
    (``"simulate"`` / ``"direct"``, see
    :mod:`repro.core.construct_fast`); ``None`` uses the process
    default.
    """
    if params == "genus":
        if genus is None:
            raise ReproError("params='genus' requires the genus argument")
        c_g, b_g = genus_bound(genus, tree.height)
        result = find_shortcut(
            topology, tree, partition, c_g, b_g,
            use_fast=use_fast, seed=seed, shared_seed=shared_seed, ledger=ledger,
            mode=construct_mode,
        )
        return result.shortcut, 3 * result.b
    if params == "given":
        if c is None or b is None:
            raise ReproError("params='given' requires both c and b")
        result = find_shortcut(
            topology, tree, partition, c, b,
            use_fast=use_fast, seed=seed, shared_seed=shared_seed, ledger=ledger,
            mode=construct_mode,
        )
        return result.shortcut, 3 * result.b
    if params == "certified":
        point = best_certified(tree, partition)
        result = find_shortcut(
            topology, tree, partition, point.congestion, point.block,
            use_fast=use_fast, seed=seed, shared_seed=shared_seed, ledger=ledger,
            mode=construct_mode,
        )
        return result.shortcut, 3 * result.b
    if params == "doubling":
        outcome = find_shortcut_doubling(
            topology, tree, partition,
            use_fast=use_fast, seed=seed, shared_seed=shared_seed, ledger=ledger,
            mode=construct_mode,
        )
        return outcome.result.shortcut, 3 * outcome.result.b
    raise ReproError(
        f"unknown shortcut params {params!r}; available: {PARAM_MODES}"
    )


@engine_parameter
@backend_parameter
def minimum_spanning_tree(
    topology: Topology,
    *,
    params: Optional[str] = None,
    genus: Optional[int] = None,
    c: Optional[int] = None,
    b: Optional[int] = None,
    use_fast: bool = True,
    seed: int = 0,
    max_phases: Optional[int] = None,
    construct_mode: Optional[str] = None,
) -> MSTResult:
    """Compute the exact MST with shortcut-accelerated Borůvka.

    Parameters
    ----------
    topology:
        A weighted topology (weights should be unique; use
        :func:`repro.graphs.weights.weighted`).  A disconnected
        topology is first-class: the result is the minimum spanning
        forest with ``components`` set to the component count (see
        :class:`MSTResult`).
    params:
        How per-phase shortcuts obtain their (c, b) promise:

        * ``"doubling"`` — Appendix A search, no knowledge needed
          (works on any graph; the default);
        * ``"genus"`` — Theorem 1 parameters (requires ``genus``);
        * ``"given"`` — explicit ``c``/``b``;
        * ``"certified"`` — per-phase offline certification (an oracle
          variant used in ablation experiments).

        (The former ``mode=`` alias was removed after its one-release
        deprecation window; ``mode`` names the construction-kernel
        axis elsewhere, see ``construct_mode``.)
    use_fast:
        CoreFast vs CoreSlow inside FindShortcut.
    max_phases:
        Watchdog on Borůvka phases (default ``8 log2 n + 8``).
    construct_mode:
        Construction kernels for the per-phase FindShortcut
        (``"simulate"`` / ``"direct"``; ``None`` = process default).
    backend:
        Partwise backend for every aggregation/broadcast superstep
        (``"simulate"`` / ``"direct"``; injected by
        :func:`~repro.core.partwise_fast.backend_parameter`).
    """
    if params is None:
        params = "doubling"
    if not topology.is_connected:
        return _mst_forest(
            topology,
            params=params,
            genus=genus,
            c=c,
            b=b,
            use_fast=use_fast,
            seed=seed,
            max_phases=max_phases,
            construct_mode=construct_mode,
        )
    backend = get_default_backend()
    n = topology.n
    if max_phases is None:
        max_phases = 8 * max(1, math.ceil(math.log2(n + 1))) + 8
    ledger = RoundLedger()
    tree, shared_seed = bfs_and_shared_randomness(topology, seed, ledger, backend)

    labels: Dict[int, int] = {v: v for v in topology.nodes}
    mst_edges: set = set()
    phase_records: List[PhaseRecord] = []
    phase = 0
    while True:
        phase += 1
        if phase > max_phases:
            raise ReproError(
                f"Borůvka did not converge within {max_phases} phases"
            )
        partition = Partition.from_labels([labels[v] for v in topology.nodes])
        if partition.size <= 1:
            phase -= 1
            break

        phase_start = ledger.total_rounds
        shortcut, b_bound = _build_shortcut(
            topology, tree, partition, params, genus, c, b,
            use_fast, mix(seed, phase), mix(shared_seed, phase), ledger,
            construct_mode,
        )
        construct_end = ledger.total_rounds
        engine = PartwiseEngine(
            topology, shortcut, seed=mix(seed, phase, 2), ledger=ledger
        )
        min_edges, neighbor_labels = min_outgoing_edges(
            topology, engine, b_bound, labels=labels, seed=mix(seed, phase, 3)
        )

        # Merge decisions are purely local at the minimum edge's inner
        # endpoint u: u knows its own label, the neighbor's label, and
        # both fragments' shared coins.
        injections: Dict[int, int] = {}
        merges = 0
        done = True
        for index in range(partition.size):
            some_member = next(iter(partition.members(index)))
            edge = min_edges.get(some_member)
            if edge is None:
                continue
            done = False
            _weight, u, v = edge
            own_label = labels[u]
            other_label = neighbor_labels[u].get(v)
            own_head = coin(shared_seed, own_label, HEAD_COIN_SALT, phase) < 0.5
            other_head = (
                coin(shared_seed, other_label, HEAD_COIN_SALT, phase) < 0.5
            )
            if not own_head and other_head:
                injections[u] = other_label
                mst_edges.add(canonical_edge(u, v))
                merges += 1

        if not done:
            # Broadcast the adopted label through the shortcut
            # (Theorem 2 iii), then the global "any fragment still
            # active?" check: one convergecast on T.
            adopted = engine.broadcast_from_leaders(injections, b_bound)
            for v in topology.nodes:
                new_label = adopted.get(v)
                if new_label is not None:
                    labels[v] = new_label
            ledger.charge_phase("mst/termination-check", 2 * tree.height + 1)
        phase_records.append(
            PhaseRecord(
                phase=phase,
                fragments=partition.size,
                shortcut_c=max(
                    (len(p) for p in shortcut.edge_map.values()), default=0
                ),
                shortcut_b=b_bound,
                merges=merges,
                construct_rounds=construct_end - phase_start,
                aggregate_rounds=ledger.total_rounds - construct_end,
            )
        )
        if done:
            phase -= 1
            break

    weight = sum(topology.weight(u, v) for u, v in mst_edges)
    return MSTResult(
        edges=frozenset(mst_edges),
        weight=weight,
        phases=phase,
        ledger=ledger,
        phase_records=tuple(phase_records),
    )


def _mst_forest(
    topology: Topology,
    *,
    params: str,
    genus: Optional[int],
    c: Optional[int],
    b: Optional[int],
    use_fast: bool,
    seed: int,
    max_phases: Optional[int],
    construct_mode: Optional[str],
) -> MSTResult:
    """Minimum spanning forest of a disconnected topology.

    Runs the shortcut MST independently on every connected component
    (components are disjoint CONGEST networks, so they genuinely run in
    parallel) and aggregates: edges and weight are the union/sum, while
    the ledger and phase records are the slowest component's — the
    makespan of the parallel composition.  Singleton components
    contribute nothing.
    """
    from repro.congest.topology import component_subtopologies

    forest: set = set()
    weight = 0
    slowest: Optional[MSTResult] = None
    pieces = component_subtopologies(topology)
    for index, (sub, nodes) in enumerate(pieces):
        if sub.n <= 1:
            continue
        result = minimum_spanning_tree(
            sub,
            params=params,
            genus=genus,
            c=c,
            b=b,
            use_fast=use_fast,
            seed=mix(seed, index),
            max_phases=max_phases,
            construct_mode=construct_mode,
        )
        forest.update(
            canonical_edge(nodes[u], nodes[v]) for u, v in result.edges
        )
        weight += result.weight
        if slowest is None or result.rounds > slowest.rounds:
            slowest = result
    if slowest is None:
        # Every component is a singleton: the forest is empty and no
        # rounds are spent.
        return MSTResult(
            edges=frozenset(),
            weight=0,
            phases=0,
            ledger=RoundLedger(),
            phase_records=(),
            components=len(pieces),
        )
    return MSTResult(
        edges=frozenset(forest),
        weight=weight,
        phases=slowest.phases,
        ledger=slowest.ledger,
        phase_records=slowest.phase_records,
        components=len(pieces),
    )


def kruskal_reference(topology: Topology) -> Tuple[FrozenSet[Edge], int]:
    """Centralized exact MST — or minimum spanning *forest* on a
    disconnected topology (validation oracle for the distributed one,
    components-aware in the same way)."""
    parent = list(range(topology.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen = set()
    total = 0
    ranked = sorted(
        topology.edges, key=lambda e: (topology.weight(*e), e[0], e[1])
    )
    for u, v in ranked:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            chosen.add((u, v))
            total += topology.weight(u, v)
    return frozenset(chosen), total
