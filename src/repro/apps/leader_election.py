"""Part-parallel leader election (Theorem 2 i) as a standalone app.

Elects the minimum-id node of every part as its leader, with every
member learning it, in ``O(b (D + c))`` rounds on a tree-restricted
shortcut with congestion ``c`` and block parameter ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.congest.engine import engine_parameter
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.partwise import PartwiseEngine
from repro.core.partwise_fast import backend_parameter
from repro.core.shortcut import TreeRestrictedShortcut


@dataclass(frozen=True)
class LeaderElectionResult:
    """Leaders per part plus each node's knowledge of its leader."""

    leaders: Dict[int, int]
    knowledge: Dict[int, Optional[int]]
    rounds: int


@engine_parameter
@backend_parameter
def elect_leaders(
    topology: Topology,
    shortcut: TreeRestrictedShortcut,
    b_bound: int,
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
) -> LeaderElectionResult:
    """Elect a leader for every part in parallel.

    ``b_bound`` must upper-bound the number of block components of any
    part (use ``3b`` for shortcuts built by FindShortcut).  The
    ``backend=`` keyword (``"simulate"`` / ``"direct"``) selects the
    partwise backend the supersteps run on.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    before = ledger.total_rounds
    engine = PartwiseEngine(topology, shortcut, seed=seed, ledger=ledger)
    leaders, knowledge = engine.elect_leaders(b_bound)
    return LeaderElectionResult(
        leaders=leaders,
        knowledge=knowledge,
        rounds=ledger.total_rounds - before,
    )
