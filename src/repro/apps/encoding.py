"""Integer encodings for O(log n)-bit message payloads.

Composite values (a weighted edge candidate, a labelled pair) are
packed into single integers so they can ride through the generic
``min``-combining primitives: the lexicographic order on
``(weight, u, v)`` coincides with the numeric order of the packed
value, which is exactly the unique-MST tie-break.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ReproError

NO_CANDIDATE = None


def encode_edge_candidate(weight: int, u: int, v: int, n: int) -> int:
    """Pack ``(weight, u, v)`` so numeric order = lexicographic order.

    Requires ``0 <= u, v < n`` and ``weight >= 0``; weights are
    polynomially bounded in the CONGEST model so the result stays
    within O(log n) bits.
    """
    if weight < 0:
        raise ReproError("edge weights must be non-negative for encoding")
    if not (0 <= u < n and 0 <= v < n):
        raise ReproError(f"endpoint out of range: ({u}, {v}) with n={n}")
    return (weight * n + u) * n + v


def decode_edge_candidate(code: int, n: int) -> Tuple[int, int, int]:
    """Inverse of :func:`encode_edge_candidate`: ``(weight, u, v)``."""
    code, v = divmod(code, n)
    weight, u = divmod(code, n)
    return weight, u, v


def encode_pair(a: int, b: int, n: int) -> int:
    """Pack an ordered pair of node-range integers."""
    if not (0 <= a < n and 0 <= b < n):
        raise ReproError(f"pair out of range: ({a}, {b}) with n={n}")
    return a * n + b


def decode_pair(code: int, n: int) -> Tuple[int, int]:
    """Inverse of :func:`encode_pair`."""
    return divmod(code, n)
