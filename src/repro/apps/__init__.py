"""Applications and baselines built on tree-restricted shortcuts."""

from repro.apps.encoding import (
    decode_edge_candidate,
    decode_pair,
    encode_edge_candidate,
    encode_pair,
)
from repro.apps.aggregation import (
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    exchange_labels,
    min_outgoing_edges,
)
from repro.apps.leader_election import LeaderElectionResult, elect_leaders
from repro.apps.mst import (
    MSTResult,
    PhaseRecord,
    kruskal_reference,
    minimum_spanning_tree,
)
from repro.apps.mst_baselines import (
    mst_collect_at_root,
    mst_kutten_peleg,
    mst_no_shortcut,
)
from repro.apps.fragment_comm import fragment_aggregate, fragment_flood_min
from repro.apps.connectivity import ConnectivityResult, connected_components
from repro.apps.mincut import MinCutResult, approximate_min_cut
from repro.apps.selfcheck import (
    VerifiedRun,
    certify_components,
    certify_leaders,
    certify_mst,
    run_verified,
    verified_connectivity,
    verified_leaders,
    verified_mst,
)

__all__ = [
    "decode_edge_candidate",
    "decode_pair",
    "encode_edge_candidate",
    "encode_pair",
    "aggregate_max",
    "aggregate_min",
    "aggregate_sum",
    "exchange_labels",
    "min_outgoing_edges",
    "LeaderElectionResult",
    "elect_leaders",
    "MSTResult",
    "PhaseRecord",
    "kruskal_reference",
    "minimum_spanning_tree",
    "mst_collect_at_root",
    "mst_kutten_peleg",
    "mst_no_shortcut",
    "fragment_aggregate",
    "fragment_flood_min",
    "ConnectivityResult",
    "connected_components",
    "MinCutResult",
    "approximate_min_cut",
    "VerifiedRun",
    "certify_components",
    "certify_leaders",
    "certify_mst",
    "run_verified",
    "verified_connectivity",
    "verified_leaders",
    "verified_mst",
]
