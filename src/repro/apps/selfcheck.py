"""Self-verifying application runs for unreliable networks.

The application drivers in :mod:`repro.apps` trust the CONGEST layer to
deliver every message.  Under a :class:`~repro.congest.faults.FaultPlan`
that trust is misplaced: dropped or duplicated messages can corrupt a
Borůvka phase and the run would return a *wrong* MST without noticing.

This module closes the loop with the classic detect-and-retry recipe:

1. run the application with the fault plan installed as the process
   default (:func:`~repro.congest.faults.using_faults`), so every
   internal simulation — BFS trees, doubling searches, partwise
   supersteps — experiences the unreliable network;
2. check the *output* against a cheap centralized certificate (union-
   find: acyclicity, spanning, component structure, leader minima);
3. on a crash, a model violation, or a failed certificate, retry with
   the plan reseeded (``mix(seed, attempt)`` — the same plan would
   deterministically fail again), up to ``max_attempts``;
4. if every attempt fails, raise a declared
   :class:`~repro.errors.DetectedFailure` carrying the per-attempt
   reasons — **never** a silently wrong answer.

The certificates are deliberately *centralized and fault-free*: they
run on the Python side, outside the simulated network, the same way the
repository's differential tests consult :func:`kruskal_reference`.
Certificate cost is O(m α(n)) — negligible next to the simulated run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.apps.connectivity import ConnectivityResult, connected_components
from repro.apps.leader_election import LeaderElectionResult, elect_leaders
from repro.apps.mst import MSTResult, kruskal_reference, minimum_spanning_tree
from repro.congest.faults import FaultPlan, using_faults
from repro.congest.randomness import mix
from repro.congest.topology import Topology
from repro.core.doubling import find_shortcut_doubling
from repro.errors import DetectedFailure
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

RETRY_SALT = 0x5E1F

DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class VerifiedRun:
    """A certified application result plus its retry history."""

    value: Any
    attempts: int
    reasons: Tuple[str, ...]


# ----------------------------------------------------------------------
# Union-find certificates (centralized, fault-free, cheap)
# ----------------------------------------------------------------------


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, nodes: Iterable[int]) -> None:
        self.parent = {v: v for v in nodes}

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def certify_mst(topology: Topology, result: MSTResult) -> List[str]:
    """Certificate for an MST/MSF result; returns the violations found."""
    problems: List[str] = []
    edge_set = set(topology.edges)
    uf = _UnionFind(topology.nodes)
    total = 0
    for edge in result.edges:
        if edge not in edge_set:
            problems.append(f"edge {edge} is not a graph edge")
            continue
        if not uf.union(*edge):
            problems.append(f"edge {edge} closes a cycle")
            continue
        total += topology.weight(*edge)
    components = len({uf.find(v) for v in topology.nodes})
    if components != result.components:
        problems.append(
            f"claimed {result.components} components, edges span {components}"
        )
    # Spanning + acyclic + minimum weight == the unique MSF (weights are
    # unique by construction in this repository's instances).
    ref_edges, ref_weight = kruskal_reference(topology)
    if total != ref_weight or result.weight != ref_weight:
        problems.append(
            f"weight {result.weight} (edges sum {total}) != minimum {ref_weight}"
        )
    if frozenset(result.edges) != frozenset(ref_edges):
        problems.append("edge set differs from the unique minimum forest")
    return problems


def certify_components(
    topology: Topology,
    alive_edges: Iterable[Tuple[int, int]],
    result: ConnectivityResult,
) -> List[str]:
    """Certificate for a component labelling: exact partition match."""
    problems: List[str] = []
    uf = _UnionFind(topology.nodes)
    for u, v in alive_edges:
        uf.union(u, v)
    labels = result.labels
    missing = [v for v in topology.nodes if v not in labels]
    if missing:
        return [f"nodes {missing[:5]} have no label"]
    # The labelling must induce *exactly* the union-find partition:
    # root -> label and label -> root must both be functions.
    root_to_label: Dict[int, int] = {}
    label_to_root: Dict[int, int] = {}
    for v in topology.nodes:
        root, label = uf.find(v), labels[v]
        if root_to_label.setdefault(root, label) != label:
            problems.append(
                f"component of {v} carries labels {root_to_label[root]} "
                f"and {label}"
            )
        if label_to_root.setdefault(label, root) != root:
            problems.append(
                f"label {label} spans two components (node {v})"
            )
        if len(problems) >= 5:
            break
    return problems


def certify_leaders(
    partition: Partition, result: LeaderElectionResult
) -> List[str]:
    """Certificate for leader election: each part elects its minimum."""
    problems: List[str] = []
    for part in range(partition.size):
        members = partition.members(part)
        expected = min(members)
        got = result.leaders.get(part)
        if got != expected:
            problems.append(f"part {part}: leader {got} != min {expected}")
        for v in members:
            if result.knowledge.get(v) != expected:
                problems.append(
                    f"node {v}: knows leader {result.knowledge.get(v)} "
                    f"!= {expected}"
                )
                break
    return problems


# ----------------------------------------------------------------------
# The detect-and-retry driver
# ----------------------------------------------------------------------


def run_verified(
    run: Callable[[], Any],
    certify: Callable[[Any], List[str]],
    plan: FaultPlan,
    *,
    label: str = "application",
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> VerifiedRun:
    """Run ``run()`` under ``plan`` until ``certify`` passes.

    Each retry reseeds the plan with ``mix(seed, attempt, RETRY_SALT)``
    — re-running the identical deterministic plan would fail the exact
    same way.  Crash schedules are preserved across reseeds (a crashed
    node stays crashed; only the transport coins are redrawn), so
    crash-partitioned runs exhaust their attempts and surface a
    :class:`~repro.errors.DetectedFailure`.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    reasons: List[str] = []
    for attempt in range(1, max_attempts + 1):
        attempt_plan = (
            plan
            if attempt == 1
            else plan.reseed(mix(plan.seed, attempt, RETRY_SALT))
        )
        try:
            with using_faults(attempt_plan):
                value = run()
        except DetectedFailure as error:
            reasons.append(f"attempt {attempt}: detected: {error}")
            continue
        except Exception as error:  # noqa: BLE001 — corrupted payloads
            # can surface as any exception type; under a fault plan a
            # crash *is* data, not a bug to propagate.
            reasons.append(
                f"attempt {attempt}: {type(error).__name__}: {error}"
            )
            continue
        problems = certify(value)
        if not problems:
            return VerifiedRun(
                value=value, attempts=attempt, reasons=tuple(reasons)
            )
        reasons.append(
            f"attempt {attempt}: certificate failed: {'; '.join(problems[:3])}"
        )
    raise DetectedFailure(
        f"{label}: no certified result in {max_attempts} attempts under "
        f"{plan.describe()}",
        attempts=max_attempts,
        reasons=tuple(reasons),
    )


def verified_mst(
    topology: Topology,
    plan: FaultPlan,
    *,
    seed: int = 0,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    reliable: bool = True,
    **mst_kwargs: Any,
) -> VerifiedRun:
    """Self-verifying :func:`~repro.apps.mst.minimum_spanning_tree`.

    With ``reliable`` (the default) every internal simulation runs
    through the reliable-delivery sublayer, so transport faults are
    masked and retries only have to beat crash schedules.  Without it,
    the bare protocol runs on the lossy network — any dropped message
    corrupts some phase, the certificate catches it, and the run is
    declared failed after ``max_attempts``; useful for demonstrating
    detection, not recovery.
    """
    return run_verified(
        lambda: minimum_spanning_tree(topology, seed=seed, **mst_kwargs),
        lambda result: certify_mst(topology, result),
        plan.with_reliable(reliable),
        label="mst",
        max_attempts=max_attempts,
    )


def verified_connectivity(
    topology: Topology,
    alive_edges: Iterable[Tuple[int, int]],
    plan: FaultPlan,
    *,
    seed: int = 0,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    reliable: bool = True,
    **kwargs: Any,
) -> VerifiedRun:
    """Self-verifying :func:`~repro.apps.connectivity.connected_components`."""
    alive = tuple(alive_edges)
    return run_verified(
        lambda: connected_components(topology, alive, seed=seed, **kwargs),
        lambda result: certify_components(topology, alive, result),
        plan.with_reliable(reliable),
        label="connectivity",
        max_attempts=max_attempts,
    )


def verified_leaders(
    topology: Topology,
    partition: Partition,
    plan: FaultPlan,
    *,
    seed: int = 0,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    reliable: bool = True,
) -> VerifiedRun:
    """Self-verifying leader election over a freshly built shortcut.

    The whole pipeline — BFS tree, Appendix A doubling construction,
    and the partwise election supersteps — runs under the fault plan;
    a fault anywhere surfaces in the certificate.
    """

    def run() -> LeaderElectionResult:
        tree = SpanningTree.bfs(topology, 0)
        outcome = find_shortcut_doubling(topology, tree, partition, seed=seed)
        return elect_leaders(
            topology, outcome.result.shortcut, 3 * outcome.b, seed=seed
        )

    return run_verified(
        run,
        lambda result: certify_leaders(partition, result),
        plan.with_reliable(reliable),
        label="leader-election",
        max_attempts=max_attempts,
    )
