"""Intra-fragment communication *without* shortcuts.

This is the baseline world the paper improves on: a fragment may only
use its own induced edges ``G[P_i]``, so every aggregation costs
Θ(diameter of G[P_i]) rounds — which can vastly exceed the network
diameter ``D`` (Section 1.2).

Two node programs implement the standard toolkit:

* :class:`FragmentFloodAlgorithm` — flood the minimum value through
  each fragment; as a side effect each node learns a parent pointer
  towards the minimum's origin, giving a fragment BFS tree;
* :class:`FragmentTreeAggregateAlgorithm` — convergecast + broadcast an
  associative combine over that fragment tree.

The drivers compose them into :func:`fragment_flood_min` and
:func:`fragment_aggregate`, whose measured rounds scale with fragment
diameter — the quantity experiment E13 exhibits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.errors import ShortcutError

FLOOD_TOKEN = "f"
CLAIM_TOKEN = "cl"
UP_TOKEN = "up"
DOWN_TOKEN = "dn"


class FragmentFloodAlgorithm(NodeAlgorithm):
    """Flood the fragment-wide minimum value over fragment edges.

    Per-node inputs: ``fragment_neighbors`` (same-fragment neighbors)
    and ``value`` (int or ``None``).  Outputs: ``best`` — the fragment
    minimum — and ``flood_parent`` — the neighbor that delivered it
    (``None`` at the value's origin), forming a tree towards it.
    """

    name = "fragment-flood"

    def on_start(self, node) -> None:
        node.state.best = node.state.value
        node.state.flood_parent = None
        if node.state.best is not None:
            self._spread(node)

    def on_round(self, node, messages) -> None:
        improved = False
        for sender, payload in messages:
            value = payload[1]
            if node.state.best is None or value < node.state.best:
                node.state.best = value
                node.state.flood_parent = sender
                improved = True
        if improved:
            self._spread(node)

    def _spread(self, node) -> None:
        for neighbor in node.state.fragment_neighbors:
            node.send(neighbor, (FLOOD_TOKEN, node.state.best))


class FragmentTreeAggregateAlgorithm(NodeAlgorithm):
    """Convergecast + broadcast over a fragment tree.

    Per-node inputs: ``agg_parent`` (``None`` at fragment roots) and
    ``value``.  Round 1 discovers children via claims; values then
    combine upward and the root's result floods back down.

    Outputs: ``agg_result`` at every fragment node.
    """

    name = "fragment-tree-aggregate"

    def __init__(self, inputs, combine: str):
        super().__init__(inputs)
        self.combine = combine

    def _merge(self, left: Optional[int], right: Optional[int]) -> Optional[int]:
        if left is None:
            return right
        if right is None:
            return left
        if self.combine == "min":
            return min(left, right)
        if self.combine == "max":
            return max(left, right)
        if self.combine == "sum":
            return left + right
        raise ShortcutError(f"unknown combine op {self.combine!r}")

    def on_start(self, node) -> None:
        state = node.state
        state.children = []
        state.pending = None
        state.acc = state.value
        state.agg_result = None
        state.sent_up = False
        if state.agg_parent is not None:
            node.send(state.agg_parent, (CLAIM_TOKEN,))
        node.wake_at(2)  # children are known after the claim round

    def on_round(self, node, messages) -> None:
        state = node.state
        for sender, payload in messages:
            tag = payload[0]
            if tag == CLAIM_TOKEN:
                state.children.append(sender)
            elif tag == UP_TOKEN:
                state.acc = self._merge(state.acc, payload[1])
                state.pending -= 1
            elif tag == DOWN_TOKEN:
                state.agg_result = payload[1]
                for child in state.children:
                    node.send(child, (DOWN_TOKEN, payload[1]))
        if node.round >= 2 and state.pending is None:
            state.pending = len(state.children)
        if state.pending == 0 and not state.sent_up:
            state.sent_up = True
            if state.agg_parent is not None:
                node.send(state.agg_parent, (UP_TOKEN, state.acc))
            else:
                state.agg_result = state.acc
                for child in state.children:
                    node.send(child, (DOWN_TOKEN, state.acc))


def _fragment_neighbors(
    topology: Topology, labels: Dict[int, Optional[int]]
) -> Dict[int, Tuple[int, ...]]:
    out = {}
    for v in topology.nodes:
        label = labels.get(v)
        if label is None:
            out[v] = ()
        else:
            out[v] = tuple(
                w for w in topology.neighbors(v) if labels.get(w) == label
            )
    return out


def fragment_flood_min(
    topology: Topology,
    labels: Dict[int, Optional[int]],
    values: Dict[int, Optional[int]],
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    phase_name: str = "fragment-flood",
    engine: EngineLike = None,
    backend: Optional[str] = None,
) -> Tuple[Dict[int, Optional[int]], Dict[int, Optional[int]]]:
    """Flood each fragment's minimum value; return (minima, parents).

    ``backend="direct"`` replays the improvement-triggered flood
    centrally (:func:`repro.core.partwise_fast.fragment_flood_direct`)
    — identical minima, parent pointers, rounds, and messages.
    """
    from repro.core.partwise_fast import fragment_flood_direct, resolve_backend

    neighbors = _fragment_neighbors(topology, labels)
    if resolve_backend(backend) == "direct":
        best, parents, rounds, messages = fragment_flood_direct(
            topology, neighbors, values
        )
        if ledger is not None:
            ledger.charge_phase(phase_name, rounds, messages)
        return best, parents
    inputs = {
        v: {"fragment_neighbors": neighbors[v], "value": values.get(v)}
        for v in topology.nodes
    }
    result = Simulator(topology, FragmentFloodAlgorithm(inputs), seed=seed, engine=engine).run()
    if ledger is not None:
        ledger.charge_phase(phase_name, result.rounds, result.messages)
    best = {v: result.states[v].best for v in topology.nodes}
    parents = {v: result.states[v].flood_parent for v in topology.nodes}
    return best, parents


def fragment_aggregate(
    topology: Topology,
    labels: Dict[int, Optional[int]],
    values: Dict[int, Optional[int]],
    combine: str = "min",
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    phase_name: str = "fragment-aggregate",
    engine: EngineLike = None,
    backend: Optional[str] = None,
) -> Dict[int, Optional[int]]:
    """Aggregate ``values`` within each fragment (no shortcuts).

    First floods node ids to elect a fragment root and build a BFS-like
    fragment tree, then convergecasts + broadcasts ``combine`` over it.
    Every fragment member ends up knowing the fragment-wide result.
    Rounds scale with the largest fragment diameter.

    ``backend="direct"`` computes both stages centrally with identical
    results and ledger charges
    (:mod:`repro.core.partwise_fast`).
    """
    from repro.core.partwise_fast import (
        fragment_tree_aggregate_direct,
        resolve_backend,
    )

    resolved = resolve_backend(backend)
    ids = {v: v if labels.get(v) is not None else None for v in topology.nodes}
    _best, parents = fragment_flood_min(
        topology, labels, ids, seed=seed, ledger=ledger,
        phase_name=phase_name + "/flood", engine=engine, backend=resolved,
    )
    masked = {
        v: values.get(v) if labels.get(v) is not None else None
        for v in topology.nodes
    }
    if resolved == "direct":
        results, rounds, messages = fragment_tree_aggregate_direct(
            topology, parents, masked, combine
        )
        if ledger is not None:
            ledger.charge_phase(phase_name + "/tree", rounds, messages)
        return {
            v: (results[v] if labels.get(v) is not None else None)
            for v in topology.nodes
        }
    inputs = {
        v: {"agg_parent": parents[v], "value": masked[v]}
        for v in topology.nodes
    }
    result = Simulator(
        topology, FragmentTreeAggregateAlgorithm(inputs, combine), seed=seed + 1,
        engine=engine,
    ).run()
    if ledger is not None:
        ledger.charge_phase(
            phase_name + "/tree", result.rounds, result.messages
        )
    return {
        v: (result.states[v].agg_result if labels.get(v) is not None else None)
        for v in topology.nodes
    }
