"""Baseline distributed MST algorithms (the paper's comparison world).

Three baselines bracket the shortcut algorithm of :mod:`repro.apps.mst`:

* :func:`mst_no_shortcut` — Borůvka where each fragment communicates
  only inside ``G[P_i]`` (no shortcuts).  Per-phase cost scales with
  the largest *fragment* diameter, which can be Θ(n) even when the
  network diameter is tiny — the failure mode motivating the paper.
* :func:`mst_kutten_peleg` — a two-phase Õ(√n + D) pipeline in the
  style of Kutten–Peleg [13] / Garay–Kutten–Peleg [5]: size-capped
  Borůvka until every fragment has ≥ √n nodes, then upcast each
  fragment's minimum outgoing edge to the BFS root, which merges
  centrally and broadcasts label remaps back.  This is the bound the
  Ω̃(√n + D) lower bound says is optimal *in general* — and the bound
  shortcuts beat on planar/bounded-genus topologies.
* :func:`mst_collect_at_root` — the O(m + D) strawman: ship the whole
  graph to the root, solve locally, ship the answer back.

All three are real node programs; the upcast/downcast pipelines follow
the classic sorted-merge pipelining argument (O(D + k) rounds for k
items).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.apps.aggregation import exchange_labels
from repro.apps.encoding import decode_edge_candidate, encode_edge_candidate
from repro.apps.fragment_comm import fragment_aggregate
from repro.apps.mst import MSTResult, PhaseRecord
from repro.congest.algorithm import NodeAlgorithm
from repro.congest.bfs import build_bfs_tree
from repro.congest.randomness import coin, mix, share_randomness
from repro.congest.engine import engine_parameter
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology, canonical_edge
from repro.congest.trace import RoundLedger
from repro.errors import ReproError
from repro.graphs.spanning_trees import SpanningTree

HEAD_COIN_SALT = 0x4EAD  # same star-merge coin as the shortcut MST

UP_TOKEN = "u"
UP_DONE_TOKEN = "ud"
DOWN_TOKEN = "d"


class PipelinedUpcastAlgorithm(NodeAlgorithm):
    """Upcast keyed records to the tree root in O(D + k) rounds.

    Every node holds records ``key -> value-tuple``; records with equal
    keys merge by taking the lexicographically smaller value.  Children
    emit records in ascending key order, so a node may safely forward
    its smallest pending key once every unfinished child has reported a
    key at least that large — the classic pipelining argument.

    Per-node inputs: ``tree_parent``, ``tree_children``, ``items``.
    Outputs: ``store`` (at the root: all merged records).
    """

    name = "pipelined-upcast"

    def on_start(self, node) -> None:
        state = node.state
        state.store: Dict[int, tuple] = dict(state.items)
        state.child_last: Dict[int, Optional[int]] = {
            child: None for child in state.tree_children
        }
        state.child_done: Set[int] = set()
        state.emitted: Set[int] = set()
        state.done_sent = False
        self._pump(node)

    def on_round(self, node, messages) -> None:
        state = node.state
        for sender, payload in messages:
            if payload[0] == UP_TOKEN:
                key = payload[1]
                value = tuple(payload[2:])
                state.child_last[sender] = key
                current = state.store.get(key)
                if current is None or value < current:
                    state.store[key] = value
            elif payload[0] == UP_DONE_TOKEN:
                state.child_done.add(sender)
        self._pump(node)

    def _pump(self, node) -> None:
        state = node.state
        if state.tree_parent is None or state.done_sent:
            return
        pending = [k for k in state.store if k not in state.emitted]
        if pending:
            smallest = min(pending)
            safe = all(
                child in state.child_done
                or (last is not None and last >= smallest)
                for child, last in state.child_last.items()
            )
            if safe:
                state.emitted.add(smallest)
                node.send(
                    state.tree_parent,
                    (UP_TOKEN, smallest) + state.store[smallest],
                )
                node.wake_after(1)
                return
        if not pending and len(state.child_done) == len(state.child_last):
            node.send(state.tree_parent, (UP_DONE_TOKEN,))
            state.done_sent = True


class PipelinedDowncastAlgorithm(NodeAlgorithm):
    """Stream a list of records from the root to every node, FIFO.

    Per-node inputs: ``tree_children`` and ``records`` (non-empty only
    at the root).  Outputs: ``received`` — the full record list at
    every node.  O(D + k) rounds for k records.
    """

    name = "pipelined-downcast"

    def __init__(self, inputs, total: int):
        super().__init__(inputs)
        self.total = total

    def on_start(self, node) -> None:
        node.state.received: List[tuple] = list(node.state.records)
        node.state.forwarded = 0
        self._pump(node)

    def on_round(self, node, messages) -> None:
        for _sender, payload in messages:
            node.state.received.append(tuple(payload[1:]))
        self._pump(node)

    def _pump(self, node) -> None:
        state = node.state
        if state.forwarded < len(state.received):
            record = state.received[state.forwarded]
            state.forwarded += 1
            for child in state.tree_children:
                node.send(child, (DOWN_TOKEN,) + record)
            if state.forwarded < len(state.received):
                node.wake_after(1)


def _upcast(
    topology: Topology,
    tree: SpanningTree,
    items: Dict[int, Dict[int, tuple]],
    *,
    seed: int,
    ledger: RoundLedger,
    phase_name: str,
) -> Dict[int, tuple]:
    inputs = {
        v: {
            "tree_parent": tree.parent(v),
            "tree_children": tree.children(v),
            "items": items.get(v, {}),
        }
        for v in topology.nodes
    }
    result = Simulator(topology, PipelinedUpcastAlgorithm(inputs), seed=seed).run()
    ledger.charge_phase(phase_name, result.rounds, result.messages)
    return dict(result.states[tree.root].store)


def _downcast(
    topology: Topology,
    tree: SpanningTree,
    records: List[tuple],
    *,
    seed: int,
    ledger: RoundLedger,
    phase_name: str,
) -> Dict[int, List[tuple]]:
    inputs = {
        v: {
            "tree_children": tree.children(v),
            "records": records if v == tree.root else [],
        }
        for v in topology.nodes
    }
    result = Simulator(
        topology, PipelinedDowncastAlgorithm(inputs, len(records)), seed=seed
    ).run()
    ledger.charge_phase(phase_name, result.rounds, result.messages)
    return {v: result.states[v].received for v in topology.nodes}


# ----------------------------------------------------------------------
# Baseline 1: Borůvka without shortcuts
# ----------------------------------------------------------------------


def _fragment_phase(
    topology: Topology,
    labels: Dict[int, int],
    shared_seed: int,
    phase: int,
    *,
    propose: Dict[int, bool],
    seed: int,
    ledger: RoundLedger,
) -> Tuple[int, Set[Tuple[int, int]], bool]:
    """One Borůvka phase over intra-fragment communication.

    ``propose[label]`` gates which fragments may initiate a merge.
    Returns (merge count, new MST edges, any-fragment-had-outgoing).
    """
    n = topology.n
    neighbor_labels = exchange_labels(
        topology, labels, seed=mix(seed, 1), ledger=ledger
    )
    candidates: Dict[int, Optional[int]] = {}
    for v in topology.nodes:
        best = None
        for w in topology.neighbors(v):
            if neighbor_labels[v].get(w) == labels[v]:
                continue
            code = encode_edge_candidate(topology.weight(v, w), v, w, n)
            if best is None or code < best:
                best = code
        candidates[v] = best
    minima = fragment_aggregate(
        topology, labels, candidates, "min",
        seed=mix(seed, 2), ledger=ledger, phase_name=f"boruvka#{phase}/min-edge",
    )

    injections: Dict[int, Optional[int]] = {}
    mst_edges: Set[Tuple[int, int]] = set()
    merges = 0
    any_outgoing = False
    for v in topology.nodes:
        code = minima.get(v)
        if code is None:
            continue
        any_outgoing = True
        _weight, u, w = decode_edge_candidate(code, n)
        if u != v:
            continue  # only the chosen endpoint decides
        own_label = labels[u]
        if not propose.get(own_label, True):
            continue
        other_label = neighbor_labels[u].get(w)
        own_head = coin(shared_seed, own_label, HEAD_COIN_SALT, phase) < 0.5
        other_head = coin(shared_seed, other_label, HEAD_COIN_SALT, phase) < 0.5
        if not own_head and other_head:
            injections[u] = other_label
            mst_edges.add(canonical_edge(u, w))
            merges += 1
    adopted = fragment_aggregate(
        topology, labels, injections, "min",
        seed=mix(seed, 3), ledger=ledger, phase_name=f"boruvka#{phase}/adopt",
    )
    for v in topology.nodes:
        new_label = adopted.get(v)
        if new_label is not None:
            labels[v] = new_label
    return merges, mst_edges, any_outgoing


@engine_parameter
def mst_no_shortcut(
    topology: Topology,
    *,
    seed: int = 0,
    max_phases: Optional[int] = None,
) -> MSTResult:
    """Borůvka with intra-fragment communication only (no shortcuts)."""
    n = topology.n
    if max_phases is None:
        max_phases = 8 * max(1, math.ceil(math.log2(n + 1))) + 8
    ledger = RoundLedger()
    tree, _ = build_bfs_tree(topology, 0, seed=seed, ledger=ledger)
    shared_seed, _ = share_randomness(topology, tree, seed=seed, ledger=ledger)

    labels = {v: v for v in topology.nodes}
    mst_edges: Set[Tuple[int, int]] = set()
    records: List[PhaseRecord] = []
    phase = 0
    while True:
        phase += 1
        if phase > max_phases:
            raise ReproError(f"Borůvka did not converge in {max_phases} phases")
        fragments = len(set(labels.values()))
        if fragments <= 1:
            phase -= 1
            break
        merges, new_edges, any_outgoing = _fragment_phase(
            topology, labels, shared_seed, phase,
            propose={}, seed=mix(seed, phase), ledger=ledger,
        )
        mst_edges |= new_edges
        records.append(
            PhaseRecord(
                phase=phase, fragments=fragments,
                shortcut_c=0, shortcut_b=0, merges=merges,
            )
        )
        ledger.charge_phase("boruvka/termination-check", 2 * tree.height + 1)
        if not any_outgoing:
            break
    weight = sum(topology.weight(u, v) for u, v in mst_edges)
    return MSTResult(
        edges=frozenset(mst_edges), weight=weight, phases=phase,
        ledger=ledger, phase_records=tuple(records),
    )


# ----------------------------------------------------------------------
# Baseline 2: Kutten–Peleg-style Õ(√n + D) pipeline
# ----------------------------------------------------------------------


@engine_parameter
def mst_kutten_peleg(
    topology: Topology,
    *,
    seed: int = 0,
    cap: Optional[int] = None,
    max_small_phases: Optional[int] = None,
) -> MSTResult:
    """Two-phase Õ(√n + D) MST (Kutten–Peleg style).

    Phase 1 runs size-capped Borůvka (only fragments smaller than
    ``cap = ⌈√n⌉`` propose merges) so the per-phase intra-fragment cost
    stays O(√n).  Phase 2 upcasts each remaining fragment's minimum
    outgoing edge to the BFS root, merges centrally, and downcasts
    label remaps — O(D + F) per iteration with F ≤ √n fragments w.h.p.
    """
    n = topology.n
    if cap is None:
        cap = max(2, math.isqrt(n - 1) + 1)
    if max_small_phases is None:
        max_small_phases = 4 * max(1, math.ceil(math.log2(n + 1))) + 8
    ledger = RoundLedger()
    tree, _ = build_bfs_tree(topology, 0, seed=seed, ledger=ledger)
    shared_seed, _ = share_randomness(topology, tree, seed=seed, ledger=ledger)

    labels = {v: v for v in topology.nodes}
    mst_edges: Set[Tuple[int, int]] = set()
    records: List[PhaseRecord] = []
    phase = 0

    # --- Phase 1: size-capped Borůvka --------------------------------
    for _ in range(max_small_phases):
        fragments = len(set(labels.values()))
        if fragments <= 1:
            break
        sizes = fragment_aggregate(
            topology, labels, {v: 1 for v in topology.nodes}, "sum",
            seed=mix(seed, phase, 11), ledger=ledger,
            phase_name=f"kp1#{phase + 1}/sizes",
        )
        propose = {}
        any_small = False
        for v in topology.nodes:
            small = sizes[v] is not None and sizes[v] < cap
            propose[labels[v]] = small
            any_small = any_small or small
        ledger.charge_phase("kp1/small-check", 2 * tree.height + 1)
        if not any_small:
            break
        phase += 1
        merges, new_edges, _any = _fragment_phase(
            topology, labels, shared_seed, phase,
            propose=propose, seed=mix(seed, phase), ledger=ledger,
        )
        mst_edges |= new_edges
        records.append(
            PhaseRecord(
                phase=phase, fragments=fragments,
                shortcut_c=0, shortcut_b=0, merges=merges,
            )
        )

    # --- Phase 2: centralized merging at the BFS root ----------------
    while True:
        fragments = len(set(labels.values()))
        if fragments <= 1:
            break
        phase += 1
        neighbor_labels = exchange_labels(
            topology, labels, seed=mix(seed, phase, 21), ledger=ledger
        )
        items: Dict[int, Dict[int, tuple]] = {}
        for v in topology.nodes:
            best = None
            target = None
            for w in topology.neighbors(v):
                other = neighbor_labels[v].get(w)
                if other == labels[v]:
                    continue
                code = encode_edge_candidate(topology.weight(v, w), v, w, n)
                if best is None or code < best:
                    best, target = code, other
            if best is not None:
                items[v] = {labels[v]: (best, target)}
        table = _upcast(
            topology, tree, items,
            seed=mix(seed, phase, 22), ledger=ledger,
            phase_name=f"kp2#{phase}/upcast",
        )
        if not table:
            break
        # Central merge at the root: union fragments along selected
        # edges; the new label is the minimum old label of the cluster.
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        chosen_codes = []
        merges = 0
        for label, (code, target) in sorted(table.items()):
            ru, rv = find(label), find(target)
            if ru != rv:
                parent[max(ru, rv)] = min(ru, rv)
                chosen_codes.append(code)
                merges += 1
        remap_records = []
        for label in sorted(table):
            root_label = find(label)
            if root_label != label:
                remap_records.append((label, root_label))
        down_records = [("r",) + r for r in remap_records] + [
            ("e", code) for code in chosen_codes
        ]
        delivered = _downcast(
            topology, tree, down_records,
            seed=mix(seed, phase, 23), ledger=ledger,
            phase_name=f"kp2#{phase}/downcast",
        )
        for v in topology.nodes:
            remap = {}
            for record in delivered[v]:
                if record[0] == "r":
                    remap[record[1]] = record[2]
                elif record[0] == "e":
                    _w, a, bnode = decode_edge_candidate(record[1], n)
                    if a == v:
                        mst_edges.add(canonical_edge(a, bnode))
            # Follow remap chains (the union-find flattened them to one hop).
            labels[v] = remap.get(labels[v], labels[v])
        records.append(
            PhaseRecord(
                phase=phase, fragments=fragments,
                shortcut_c=0, shortcut_b=0, merges=merges,
            )
        )

    weight = sum(topology.weight(u, v) for u, v in mst_edges)
    return MSTResult(
        edges=frozenset(mst_edges), weight=weight, phases=phase,
        ledger=ledger, phase_records=tuple(records),
    )


# ----------------------------------------------------------------------
# Baseline 3: collect everything at the root
# ----------------------------------------------------------------------


@engine_parameter
def mst_collect_at_root(topology: Topology, *, seed: int = 0) -> MSTResult:
    """The O(m + D) strawman: upcast all edges, solve at the root."""
    from repro.apps.mst import kruskal_reference

    n = topology.n
    ledger = RoundLedger()
    tree, _ = build_bfs_tree(topology, 0, seed=seed, ledger=ledger)
    items: Dict[int, Dict[int, tuple]] = {}
    for u, v in topology.edges:
        code = encode_edge_candidate(topology.weight(u, v), u, v, n)
        items.setdefault(u, {})[code] = ()
    store = _upcast(
        topology, tree, items, seed=seed + 1, ledger=ledger,
        phase_name="collect/upcast",
    )
    edges = [decode_edge_candidate(code, n) for code in store]
    collected = Topology(
        n,
        [(u, v) for _w, u, v in edges],
        weights={canonical_edge(u, v): w for w, u, v in edges},
    )
    mst_edges, weight = kruskal_reference(collected)
    down_records = [
        ("e", encode_edge_candidate(collected.weight(u, v), u, v, n))
        for u, v in sorted(mst_edges)
    ]
    _delivered = _downcast(
        topology, tree, down_records, seed=seed + 2, ledger=ledger,
        phase_name="collect/downcast",
    )
    return MSTResult(
        edges=frozenset(mst_edges), weight=weight, phases=1,
        ledger=ledger, phase_records=(),
    )
