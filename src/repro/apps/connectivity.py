"""Connected-components labelling over a designated edge subset.

The "connectivity verification" application from the Ω̃(√n + D) lower
bound literature: given a subset of *alive* edges, label every node
with the minimum node id of its alive-component.  The components are
connected subgraphs of ``G``, so they are valid parts — and merging
them Borůvka-style rides on exactly the same shortcut primitives as
the MST (minus the weights).

Both variants are provided: shortcut-accelerated (per-phase
FindShortcut + Theorem 2 aggregation) and intra-fragment-only (the
baseline whose cost scales with component diameters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.apps.aggregation import exchange_labels, min_outgoing_edges
from repro.apps.encoding import decode_edge_candidate, encode_edge_candidate
from repro.apps.fragment_comm import fragment_aggregate
from repro.congest.engine import engine_parameter
from repro.congest.randomness import coin, mix
from repro.congest.topology import Edge, Topology, canonical_edge
from repro.congest.trace import RoundLedger
from repro.core.doubling import find_shortcut_doubling
from repro.core.partwise import PartwiseEngine
from repro.core.partwise_fast import (
    backend_parameter,
    bfs_and_shared_randomness,
    get_default_backend,
)
from repro.errors import ReproError
from repro.graphs.partitions import Partition

MERGE_COIN_SALT = 0xC0C0


@dataclass(frozen=True)
class ConnectivityResult:
    """Per-node component labels plus round accounting."""

    labels: Dict[int, int]
    components: int
    phases: int
    ledger: RoundLedger

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def _alive_set(alive_edges: Iterable[Tuple[int, int]]) -> FrozenSet[Edge]:
    return frozenset(canonical_edge(u, v) for u, v in alive_edges)


def _min_alive_candidates(
    topology: Topology,
    labels: Dict[int, int],
    alive: FrozenSet[Edge],
    neighbor_labels,
) -> Dict[int, Optional[int]]:
    candidates: Dict[int, Optional[int]] = {}
    for v in topology.nodes:
        best = None
        for w in topology.neighbors(v):
            if canonical_edge(v, w) not in alive:
                continue
            if neighbor_labels[v].get(w) == labels[v]:
                continue
            code = encode_edge_candidate(0, v, w, topology.n)
            if best is None or code < best:
                best = code
        candidates[v] = best
    return candidates


@engine_parameter
@backend_parameter
def connected_components(
    topology: Topology,
    alive_edges: Iterable[Tuple[int, int]],
    *,
    use_shortcuts: bool = True,
    seed: int = 0,
    max_phases: Optional[int] = None,
    construct_mode: Optional[str] = None,
) -> ConnectivityResult:
    """Label the components of the alive subgraph.

    With ``use_shortcuts`` the per-phase fragment aggregation runs over
    tree-restricted shortcuts (Appendix A doubling, no parameter
    knowledge); otherwise it floods within fragments only.
    ``construct_mode`` selects the construction kernels for the
    doubling searches; the ``backend=`` keyword (injected by
    :func:`~repro.core.partwise_fast.backend_parameter`) selects the
    simulate/direct partwise backend for every aggregation.
    """
    n = topology.n
    backend = get_default_backend()
    alive = _alive_set(alive_edges)
    if max_phases is None:
        max_phases = 8 * max(1, math.ceil(math.log2(n + 1))) + 8
    ledger = RoundLedger()
    tree, shared_seed = bfs_and_shared_randomness(topology, seed, ledger, backend)

    labels = {v: v for v in topology.nodes}
    phase = 0
    while True:
        phase += 1
        if phase > max_phases:
            raise ReproError(f"components did not converge in {max_phases} phases")
        neighbor_labels = exchange_labels(
            topology, labels, seed=mix(seed, phase, 1), ledger=ledger,
            backend=backend,
        )
        candidates = _min_alive_candidates(topology, labels, alive, neighbor_labels)
        if use_shortcuts:
            partition = Partition.from_labels([labels[v] for v in topology.nodes])
            outcome = find_shortcut_doubling(
                topology, tree, partition,
                seed=mix(seed, phase, 2),
                shared_seed=mix(shared_seed, phase),
                ledger=ledger,
                mode=construct_mode,
            )
            engine = PartwiseEngine(
                topology, outcome.result.shortcut,
                seed=mix(seed, phase, 3), ledger=ledger,
            )
            b_bound = 3 * outcome.result.b
            minima = engine.minimum_per_part(candidates, b_bound)
        else:
            minima = fragment_aggregate(
                topology, labels, candidates, "min",
                seed=mix(seed, phase, 4), ledger=ledger,
                phase_name=f"components#{phase}/min",
                backend=backend,
            )

        injections: Dict[int, Optional[int]] = {}
        merges = 0
        for v in topology.nodes:
            code = minima.get(v)
            if code is None:
                continue
            _zero, u, w = decode_edge_candidate(code, n)
            if u != v:
                continue
            own_label = labels[u]
            other_label = neighbor_labels[u].get(w)
            own_head = coin(shared_seed, own_label, MERGE_COIN_SALT, phase) < 0.5
            other_head = coin(shared_seed, other_label, MERGE_COIN_SALT, phase) < 0.5
            if not own_head and other_head:
                injections[u] = other_label
                merges += 1
        if merges == 0 and all(minima.get(v) is None for v in topology.nodes):
            phase -= 1
            break
        if use_shortcuts:
            adopted = engine.broadcast_from_leaders(injections, b_bound)
        else:
            adopted = fragment_aggregate(
                topology, labels, injections, "min",
                seed=mix(seed, phase, 5), ledger=ledger,
                phase_name=f"components#{phase}/adopt",
                backend=backend,
            )
        for v in topology.nodes:
            new_label = adopted.get(v)
            if new_label is not None:
                labels[v] = new_label
        ledger.charge_phase("components/termination-check", 2 * tree.height + 1)

    # Canonicalise: every component label becomes its minimum node id.
    canonical: Dict[int, int] = {}
    if use_shortcuts:
        partition = Partition.from_labels([labels[v] for v in topology.nodes])
        outcome = find_shortcut_doubling(
            topology, tree, partition,
            seed=mix(seed, 7777), shared_seed=shared_seed, ledger=ledger,
            mode=construct_mode,
        )
        engine = PartwiseEngine(
            topology, outcome.result.shortcut,
            seed=mix(seed, 7778), ledger=ledger,
        )
        minima = engine.minimum_per_part(
            {v: v for v in topology.nodes}, 3 * outcome.result.b
        )
        canonical = {v: minima[v] for v in topology.nodes}
    else:
        minima = fragment_aggregate(
            topology, labels, {v: v for v in topology.nodes}, "min",
            seed=mix(seed, 7779), ledger=ledger,
            phase_name="components/canonicalise",
            backend=backend,
        )
        canonical = {v: minima[v] for v in topology.nodes}
    return ConnectivityResult(
        labels=canonical,
        components=len(set(canonical.values())),
        phases=phase,
        ledger=ledger,
    )
