"""Connected-components labelling over a designated edge subset.

The "connectivity verification" application from the Ω̃(√n + D) lower
bound literature: given a subset of *alive* edges, label every node
with the minimum node id of its alive-component.  The components are
connected subgraphs of ``G``, so they are valid parts — and merging
them Borůvka-style rides on exactly the same shortcut primitives as
the MST (minus the weights).

Both variants are provided: shortcut-accelerated (per-phase
FindShortcut + Theorem 2 aggregation) and intra-fragment-only (the
baseline whose cost scales with component diameters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.apps.aggregation import exchange_labels, min_outgoing_edges
from repro.apps.encoding import decode_edge_candidate, encode_edge_candidate
from repro.apps.fragment_comm import fragment_aggregate
from repro.congest.engine import engine_parameter
from repro.congest.randomness import coin, mix
from repro.congest.topology import Edge, Topology, canonical_edge
from repro.congest.trace import RoundLedger
from repro.core.doubling import find_shortcut_doubling
from repro.core.partwise import PartwiseEngine
from repro.core.partwise_fast import (
    backend_parameter,
    bfs_and_shared_randomness,
    get_default_backend,
)
from repro.errors import ReproError
from repro.graphs.partitions import Partition

MERGE_COIN_SALT = 0xC0C0


@dataclass(frozen=True)
class ConnectivityResult:
    """Per-node component labels plus round accounting.

    ``components`` counts the *alive* components (the answer);
    ``graph_components`` counts the connected components of the
    underlying topology itself — ``1`` for the ordinary connected case.
    On a disconnected topology the algorithm runs independently inside
    every graph component (disjoint CONGEST networks execute
    concurrently), so the ledger and phase count are the slowest
    component's — the makespan.
    """

    labels: Dict[int, int]
    components: int
    phases: int
    ledger: RoundLedger
    graph_components: int = 1

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def _alive_set(alive_edges: Iterable[Tuple[int, int]]) -> FrozenSet[Edge]:
    return frozenset(canonical_edge(u, v) for u, v in alive_edges)


def _min_alive_candidates(
    topology: Topology,
    labels: Dict[int, int],
    alive: FrozenSet[Edge],
    neighbor_labels,
) -> Dict[int, Optional[int]]:
    candidates: Dict[int, Optional[int]] = {}
    for v in topology.nodes:
        best = None
        for w in topology.neighbors(v):
            if canonical_edge(v, w) not in alive:
                continue
            if neighbor_labels[v].get(w) == labels[v]:
                continue
            code = encode_edge_candidate(0, v, w, topology.n)
            if best is None or code < best:
                best = code
        candidates[v] = best
    return candidates


@engine_parameter
@backend_parameter
def connected_components(
    topology: Topology,
    alive_edges: Iterable[Tuple[int, int]],
    *,
    use_shortcuts: bool = True,
    seed: int = 0,
    max_phases: Optional[int] = None,
    construct_mode: Optional[str] = None,
) -> ConnectivityResult:
    """Label the components of the alive subgraph.

    With ``use_shortcuts`` the per-phase fragment aggregation runs over
    tree-restricted shortcuts (Appendix A doubling, no parameter
    knowledge); otherwise it floods within fragments only.
    ``construct_mode`` selects the construction kernels for the
    doubling searches; the ``backend=`` keyword (injected by
    :func:`~repro.core.partwise_fast.backend_parameter`) selects the
    simulate/direct partwise backend for every aggregation.

    A disconnected topology is first-class: the labelling runs per
    graph component and the result carries ``graph_components`` (see
    :class:`ConnectivityResult`).
    """
    n = topology.n
    backend = get_default_backend()
    alive = _alive_set(alive_edges)
    if not topology.is_connected:
        return _components_per_piece(
            topology,
            alive,
            use_shortcuts=use_shortcuts,
            seed=seed,
            max_phases=max_phases,
            construct_mode=construct_mode,
        )
    if max_phases is None:
        max_phases = 8 * max(1, math.ceil(math.log2(n + 1))) + 8
    ledger = RoundLedger()
    tree, shared_seed = bfs_and_shared_randomness(topology, seed, ledger, backend)

    labels = {v: v for v in topology.nodes}
    phase = 0
    while True:
        phase += 1
        if phase > max_phases:
            raise ReproError(f"components did not converge in {max_phases} phases")
        neighbor_labels = exchange_labels(
            topology, labels, seed=mix(seed, phase, 1), ledger=ledger,
            backend=backend,
        )
        candidates = _min_alive_candidates(topology, labels, alive, neighbor_labels)
        if use_shortcuts:
            partition = Partition.from_labels([labels[v] for v in topology.nodes])
            outcome = find_shortcut_doubling(
                topology, tree, partition,
                seed=mix(seed, phase, 2),
                shared_seed=mix(shared_seed, phase),
                ledger=ledger,
                mode=construct_mode,
            )
            engine = PartwiseEngine(
                topology, outcome.result.shortcut,
                seed=mix(seed, phase, 3), ledger=ledger,
            )
            b_bound = 3 * outcome.result.b
            minima = engine.minimum_per_part(candidates, b_bound)
        else:
            minima = fragment_aggregate(
                topology, labels, candidates, "min",
                seed=mix(seed, phase, 4), ledger=ledger,
                phase_name=f"components#{phase}/min",
                backend=backend,
            )

        injections: Dict[int, Optional[int]] = {}
        merges = 0
        for v in topology.nodes:
            code = minima.get(v)
            if code is None:
                continue
            _zero, u, w = decode_edge_candidate(code, n)
            if u != v:
                continue
            own_label = labels[u]
            other_label = neighbor_labels[u].get(w)
            own_head = coin(shared_seed, own_label, MERGE_COIN_SALT, phase) < 0.5
            other_head = coin(shared_seed, other_label, MERGE_COIN_SALT, phase) < 0.5
            if not own_head and other_head:
                injections[u] = other_label
                merges += 1
        if merges == 0 and all(minima.get(v) is None for v in topology.nodes):
            phase -= 1
            break
        if use_shortcuts:
            adopted = engine.broadcast_from_leaders(injections, b_bound)
        else:
            adopted = fragment_aggregate(
                topology, labels, injections, "min",
                seed=mix(seed, phase, 5), ledger=ledger,
                phase_name=f"components#{phase}/adopt",
                backend=backend,
            )
        for v in topology.nodes:
            new_label = adopted.get(v)
            if new_label is not None:
                labels[v] = new_label
        ledger.charge_phase("components/termination-check", 2 * tree.height + 1)

    # Canonicalise: every component label becomes its minimum node id.
    canonical: Dict[int, int] = {}
    if use_shortcuts:
        partition = Partition.from_labels([labels[v] for v in topology.nodes])
        outcome = find_shortcut_doubling(
            topology, tree, partition,
            seed=mix(seed, 7777), shared_seed=shared_seed, ledger=ledger,
            mode=construct_mode,
        )
        engine = PartwiseEngine(
            topology, outcome.result.shortcut,
            seed=mix(seed, 7778), ledger=ledger,
        )
        minima = engine.minimum_per_part(
            {v: v for v in topology.nodes}, 3 * outcome.result.b
        )
        canonical = {v: minima[v] for v in topology.nodes}
    else:
        minima = fragment_aggregate(
            topology, labels, {v: v for v in topology.nodes}, "min",
            seed=mix(seed, 7779), ledger=ledger,
            phase_name="components/canonicalise",
            backend=backend,
        )
        canonical = {v: minima[v] for v in topology.nodes}
    return ConnectivityResult(
        labels=canonical,
        components=len(set(canonical.values())),
        phases=phase,
        ledger=ledger,
    )


def _components_per_piece(
    topology: Topology,
    alive: FrozenSet[Edge],
    *,
    use_shortcuts: bool,
    seed: int,
    max_phases: Optional[int],
    construct_mode: Optional[str],
) -> ConnectivityResult:
    """Components labelling on a disconnected topology.

    Each graph component is a disjoint CONGEST network; the labelling
    runs independently (and conceptually concurrently) inside each one,
    with alive edges and the resulting minimum-id labels mapped through
    the component's local-to-global node table.  The mapping preserves
    label semantics because it is monotone: a component's local minimum
    maps to the global minimum of the same alive-component.  The merged
    ledger/phase count is the slowest component's — the makespan.
    """
    from repro.congest.topology import component_subtopologies

    labels: Dict[int, int] = {}
    total = 0
    slowest: Optional[ConnectivityResult] = None
    pieces = component_subtopologies(topology)
    for index, (sub, nodes) in enumerate(pieces):
        if sub.n <= 1:
            labels[nodes[0]] = nodes[0]
            total += 1
            continue
        local = {v: i for i, v in enumerate(nodes)}
        sub_alive = [
            (local[u], local[v]) for u, v in alive if u in local
        ]
        result = connected_components(
            sub,
            sub_alive,
            use_shortcuts=use_shortcuts,
            seed=mix(seed, index),
            max_phases=max_phases,
            construct_mode=construct_mode,
        )
        for v, label in result.labels.items():
            labels[nodes[v]] = nodes[label]
        total += result.components
        if slowest is None or result.rounds > slowest.rounds:
            slowest = result
    return ConnectivityResult(
        labels=labels,
        components=total,
        phases=slowest.phases if slowest is not None else 0,
        ledger=slowest.ledger if slowest is not None else RoundLedger(),
        graph_components=len(pieces),
    )
