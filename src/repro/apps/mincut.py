"""Approximate minimum cut via greedy tree packing (the paper's second
application).

The paper applies shortcuts to "Min-Cut approximation" through the
framework of [7], whose engine is repeated MST-like computations.  We
reproduce that shape with the classic greedy tree-packing approach
(Thorup/Karger): pack ``k`` spanning trees, each a minimum spanning
tree under the edge loads accumulated so far; for each packed tree,
evaluate every *1-respecting* cut (the cut induced by removing one
tree edge); return the smallest cut seen.

Every 1-respecting cut is a real cut, so the result is always an upper
bound on the minimum cut; with a packing of Θ(log n) trees it is a
close approximation in practice (validated against exact Stoer–Wagner
in the tests — within a small constant factor on every family we
generate, as the tree-packing theory predicts).

Faithfulness note (documented substitution): the packing loop runs the
*distributed* shortcut MST when ``use_distributed_mst=True`` — that is
the shortcut-relevant workload — while the per-tree 1-respecting cut
evaluation (subtree degree sums) is computed centrally.  The
distributed version of that evaluation is a convergecast per tree and
costs O(D) extra rounds per tree; it contains no shortcut-specific
logic, so its omission does not change what the experiments measure.
The round cost of one such convergecast is charged to the ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.congest.engine import engine_parameter
from repro.congest.topology import Edge, Topology, canonical_edge
from repro.congest.trace import RoundLedger
from repro.core.partwise_fast import backend_parameter
from repro.graphs.spanning_trees import SpanningTree


@dataclass(frozen=True)
class MinCutResult:
    """An upper-bound cut found by the packing.

    On a disconnected topology the minimum cut is exactly ``0``: the
    result reports it explicitly (``value=0``, ``cut_edges`` empty,
    ``side`` = the first connected component as the certificate, and
    ``components`` > 1) instead of failing inside the packing loop.
    """

    value: int
    cut_edges: FrozenSet[Edge]
    side: FrozenSet[int]
    trees_packed: int
    ledger: RoundLedger
    components: int = 1

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def _mst_under_loads(
    topology: Topology, loads: Dict[Edge, int]
) -> FrozenSet[Edge]:
    """Kruskal under current loads (ties by edge id)."""
    parent = list(range(topology.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: Set[Edge] = set()
    for edge in sorted(topology.edges, key=lambda e: (loads[e], e)):
        u, v = edge
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            chosen.add(edge)
    return frozenset(chosen)


def _one_respecting_cuts(
    topology: Topology, tree_edges: FrozenSet[Edge]
) -> Tuple[int, Edge, FrozenSet[int]]:
    """Best 1-respecting cut of a spanning tree.

    For each tree edge, the cut crossing its subtree is
    ``sum(deg(v) for v in S) - 2 * |edges inside S|`` where ``S`` is
    the subtree below the edge.  Returns (value, tree edge, side).
    """
    parent: List[Optional[int]] = [None] * topology.n
    order: List[int] = []
    seen = [False] * topology.n
    adjacency: Dict[int, List[int]] = {v: [] for v in topology.nodes}
    for u, v in tree_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    stack = [0]
    seen[0] = True
    while stack:
        u = stack.pop()
        order.append(u)
        for w in adjacency[u]:
            if not seen[w]:
                seen[w] = True
                parent[w] = u
                stack.append(w)

    # Subtree degree sums and subtree-internal edge counts, bottom-up.
    # A graph edge (a, b) lies inside subtree(v) exactly when v is an
    # ancestor of lca(a, b), so accumulating +1 at each lca and summing
    # over subtrees yields the internal-edge counts.
    tree = SpanningTree(0, parent)
    lca_count = [0] * topology.n
    depth = [tree.depth(v) for v in topology.nodes]
    for a, b in topology.edges:
        x, y = a, b
        while x != y:
            if depth[x] < depth[y]:
                y = parent[y]
            else:
                x = parent[x]
        lca_count[x] += 1
    subtree_deg = [topology.degree(v) for v in topology.nodes]
    subtree_inside = lca_count[:]
    for v in reversed(order):
        p = parent[v]
        if p is not None:
            subtree_deg[p] += subtree_deg[v]
            subtree_inside[p] += subtree_inside[v]

    best_value = None
    best_edge = None
    best_root = None
    for v in topology.nodes:
        if parent[v] is None:
            continue
        value = subtree_deg[v] - 2 * subtree_inside[v]
        if best_value is None or value < best_value:
            best_value = value
            best_edge = canonical_edge(v, parent[v])
            best_root = v
    # Recover the side of the best cut.
    side: Set[int] = set()
    stack = [best_root]
    children: Dict[int, List[int]] = {v: [] for v in topology.nodes}
    for v in topology.nodes:
        if parent[v] is not None:
            children[parent[v]].append(v)
    while stack:
        u = stack.pop()
        side.add(u)
        stack.extend(children[u])
    return best_value, best_edge, frozenset(side)


@engine_parameter
@backend_parameter
def approximate_min_cut(
    topology: Topology,
    *,
    trees: Optional[int] = None,
    seed: int = 0,
    use_distributed_mst: bool = False,
    construct_mode: Optional[str] = None,
) -> MinCutResult:
    """Greedy-tree-packing min-cut approximation.

    Packs ``trees`` spanning trees (default ``⌈3 log2 n⌉``) by repeated
    minimum spanning trees under accumulated edge loads; returns the
    best 1-respecting cut over all packed trees.

    With ``use_distributed_mst`` each packing iteration runs the full
    distributed shortcut MST (slow; exercises the complete stack) and
    its rounds are charged to the ledger; otherwise only the per-tree
    O(D) cut-evaluation convergecasts are charged.  ``construct_mode``
    and the injected ``backend=`` keyword select the construction
    kernels and the partwise backend of those inner MSTs.
    """
    n = topology.n
    components = topology.components()
    if len(components) > 1:
        # The cut value is 0, certified by any single component; no
        # packing (and no rounds) needed.
        return MinCutResult(
            value=0,
            cut_edges=frozenset(),
            side=frozenset(components[0]),
            trees_packed=0,
            ledger=RoundLedger(),
            components=len(components),
        )
    if trees is None:
        trees = max(3, math.ceil(3 * math.log2(n + 1)))
    ledger = RoundLedger()
    depth_estimate = topology.eccentricity(0)
    ledger.barrier_depth = depth_estimate

    loads: Dict[Edge, int] = {edge: 0 for edge in topology.edges}
    best: Optional[Tuple[int, Edge, FrozenSet[int]]] = None
    for index in range(trees):
        if use_distributed_mst:
            from repro.apps.mst import minimum_spanning_tree
            from repro.graphs.weights import perturbed_weights

            weighted = topology.with_weights(
                perturbed_weights(topology, loads)
            )
            result = minimum_spanning_tree(
                weighted, params="doubling", seed=seed + index,
                construct_mode=construct_mode,
            )
            ledger.merge(result.ledger, prefix=f"pack#{index}/")
            tree_edges = result.edges
        else:
            tree_edges = _mst_under_loads(topology, loads)
        value, edge, side = _one_respecting_cuts(topology, tree_edges)
        # One subtree convergecast per tree evaluates all its
        # 1-respecting cuts distributively: O(D) rounds.
        ledger.charge_phase(f"cut-eval#{index}", 2 * depth_estimate + 1)
        if best is None or value < best[0]:
            best = (value, edge, side)
        for e in tree_edges:
            loads[e] += 1

    value, _edge, side = best
    cut_edges = frozenset(
        e for e in topology.edges if (e[0] in side) != (e[1] in side)
    )
    return MinCutResult(
        value=value,
        cut_edges=cut_edges,
        side=side,
        trees_packed=trees,
        ledger=ledger,
    )
