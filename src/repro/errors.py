"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single exception type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TopologyError(ReproError):
    """Raised when a graph, tree, or partition is malformed."""


class SimulationError(ReproError):
    """Raised when a node program violates the CONGEST model.

    Examples: sending two messages over the same edge in one round,
    sending to a non-neighbor, or acting after halting.
    """


class BandwidthExceededError(SimulationError):
    """Raised when a message payload does not fit in O(log n) bits."""


class RoundLimitExceededError(SimulationError):
    """Raised when a simulation fails to terminate within ``max_rounds``."""


class ShortcutError(ReproError):
    """Raised when a shortcut object is malformed or violates its contract."""


class ConstructionFailedError(ReproError):
    """Raised when a shortcut construction cannot satisfy its guarantees.

    This is the failure signal used by the doubling mechanism of
    Appendix A: a trial with too-small parameter estimates raises this
    error, and the driver retries with doubled parameters.

    Attributes
    ----------
    iterations:
        Core/verification iterations consumed before giving up (0 when
        the failure happened before the main loop).  The doubling
        driver records this on its failed ``Trial``s.
    state:
        Optional partial-progress payload (a
        :class:`repro.core.find_shortcut.ConstructionState`): the parts
        still bad and the subgraphs already frozen, enabling the
        doubling warm start.  Kept untyped here so the exception layer
        stays free of core-layer imports.
    """

    def __init__(self, message: str, *, iterations: int = 0, state=None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.state = state


class VerificationError(ReproError):
    """Raised when the Verification subroutine is given malformed input."""


class DetectedFailure(ReproError):
    """A self-verifying run detected a fault it could not mask.

    This is the *declared* failure mode of the unreliable-network
    execution layer (:mod:`repro.congest.faults`,
    :mod:`repro.congest.reliable`, :mod:`repro.apps.selfcheck`): when
    retransmission budgets run out, a crash-stop schedule partitions
    the protocol, or an output fails its certificate after every retry,
    the run surfaces this exception instead of a silently wrong answer.

    Attributes
    ----------
    attempts:
        Number of full attempts consumed before declaring failure
        (0 when the failure was detected inside a single run).
    reasons:
        Per-attempt failure descriptions, for logs and reports.
    """

    def __init__(self, message: str, *, attempts: int = 0, reasons=()) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.reasons = tuple(reasons)
