"""Reproduction of "Low-Congestion Shortcuts without Embedding".

Haeupler, Izumi, Zuzic — PODC 2016 (arXiv:1607.07553).

The library implements, from scratch:

* a faithful **CONGEST simulator** (:mod:`repro.congest`);
* graph/partition/tree **workload generators** (:mod:`repro.graphs`);
* the paper's contribution — **tree-restricted shortcuts**, their
  routing schemes, and the embedding-free distributed construction
  ``FindShortcut`` (:mod:`repro.core`);
* **applications and baselines** — shortcut-accelerated Borůvka MST,
  partwise aggregation, connectivity, min-cut approximation, plus the
  Ω̃(√n + D)-style baselines the paper compares against
  (:mod:`repro.apps`);
* an **analysis harness** regenerating every quantitative claim of the
  paper as a table (:mod:`repro.analysis`);
* a **fault-tolerant shortcut service** — crash-safe persistent result
  store, HTTP/JSON request broker, retrying client SDK, and a seeded
  chaos harness (:mod:`repro.service`).
"""

from repro._version import __version__
from repro.errors import (
    BandwidthExceededError,
    ConstructionFailedError,
    ReproError,
    RoundLimitExceededError,
    ShortcutError,
    SimulationError,
    TopologyError,
    VerificationError,
)
from repro.congest import (
    NodeAlgorithm,
    RoundLedger,
    RunResult,
    Simulator,
    Topology,
    build_bfs_tree,
    canonical_edge,
)
from repro.graphs.spanning_trees import SpanningTree

__all__ = [
    "__version__",
    "ReproError",
    "TopologyError",
    "SimulationError",
    "BandwidthExceededError",
    "RoundLimitExceededError",
    "ShortcutError",
    "ConstructionFailedError",
    "VerificationError",
    "NodeAlgorithm",
    "RoundLedger",
    "RunResult",
    "Simulator",
    "Topology",
    "build_bfs_tree",
    "canonical_edge",
    "SpanningTree",
]
