"""Pluggable execution engines for the CONGEST simulator.

This module is the single place where the CONGEST execution semantics
are specified.  An *engine* is the object that actually runs a node
program over a topology; :class:`~repro.congest.simulator.Simulator`
is a thin facade that selects and drives one.  Two engines ship:

* :class:`ReferenceEngine` — the original per-node, per-message
  implementation.  It is deliberately simple and is the executable
  specification every other engine is tested against.
* :class:`BatchedEngine` — the default.  Semantically identical (the
  differential suite in ``tests/congest/test_engine_equivalence.py``
  asserts bit-for-bit equal results), but engineered for throughput:
  flat CSR-style adjacency slots, round-stamped duplicate detection,
  send-time delivery into preallocated per-node inboxes, and optional
  sampled bandwidth auditing.

The engine contract
-------------------

Every engine MUST implement the following observable semantics; the
property suite in ``tests/properties/test_prop_engines.py`` checks
them on random topologies and schedules:

1. Time advances in synchronous rounds.  Round 0 runs ``on_start`` on
   every node; round ``r >= 1`` runs ``on_round`` on exactly the nodes
   that received messages or scheduled a wake-up for round ``r``.
2. Per round, a node may send at most one message per incident edge
   per direction.  A second send over the same directed edge raises
   :class:`~repro.errors.SimulationError`, as does a send to a
   non-neighbor and a send from a halted node.
3. Messages sent in round ``r`` are delivered at the start of round
   ``r + 1`` — never earlier, never later.
4. ``on_round`` receives its ``(sender, payload)`` pairs in ascending
   sender order.
5. With ``check_bandwidth`` enabled, payloads are audited against the
   ``O(log n)``-bit budget via :func:`repro.congest.message.check_message`.
   ``audit_sample=k`` audits every ``k``-th queued message (``1`` =
   every message, the default); sampling trades audit coverage for
   throughput on hot paths but never changes rounds, messages, or
   states of a well-formed protocol.
6. Stretches of rounds in which no node acts are skipped in O(1) time
   but still *counted* — round complexity is the quantity this whole
   repository measures.  Exceeding ``max_rounds`` raises
   :class:`~repro.errors.RoundLimitExceededError`.
7. A halted node never runs again.  Messages arriving at a halted node
   are counted in ``messages`` and in ``dropped_to_halted``.
8. Per-node RNGs are seeded as ``(seed << 20) ^ (id * 2654435761)``;
   two runs with the same seed are bit-for-bit identical regardless of
   the engine.
9. ``RunResult.rounds`` is the index of the last round in which any
   node acted or any message was delivered.

Selecting an engine
-------------------

``Simulator(..., engine="reference")`` selects per call site, and most
high-level wrappers (``build_bfs_tree``, ``core_slow``, ``core_fast``,
``minimum_spanning_tree``, …) forward an ``engine=`` keyword.  The
process-wide default (``"batched"``) can be changed with
:func:`set_default_engine` or temporarily with :func:`using_engine`.
"""

from __future__ import annotations

import functools
import heapq
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Type, Union

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.message import (
    FRAME_BITS,
    TAG_BITS,
    bandwidth_limit,
    check_message,
)
from repro.congest.node import NodeHandle
from repro.congest.topology import Topology, canonical_edge
from repro.errors import RoundLimitExceededError, SimulationError


class RunResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    rounds:
        Number of communication rounds consumed (the index of the last
        round in which any node acted or any message was delivered).
    messages:
        Total number of messages delivered.
    states:
        Mapping ``node_id -> SimpleNamespace`` with each node's final
        state (the algorithm's outputs).
    edge_traffic:
        When tracing is enabled, mapping ``edge -> message count``.
    dropped_to_halted:
        Messages that arrived at an already-halted node (a well-formed
        protocol keeps this at zero; tests assert on it).
    """

    __slots__ = ("rounds", "messages", "states", "edge_traffic", "dropped_to_halted")

    def __init__(self, rounds, messages, states, edge_traffic, dropped_to_halted):
        self.rounds = rounds
        self.messages = messages
        self.states = states
        self.edge_traffic = edge_traffic
        self.dropped_to_halted = dropped_to_halted

    def __repr__(self) -> str:
        return f"RunResult(rounds={self.rounds}, messages={self.messages})"


class EngineBase:
    """Shared state and callbacks of every CONGEST engine.

    Subclasses implement :meth:`run` and :meth:`queue_message`; the
    wake-up machinery (a lazily-cleaned min-heap of alarm rounds) and
    the result assembly are common.
    """

    name = "abstract"

    def __init__(
        self,
        topology: Topology,
        algorithm: NodeAlgorithm,
        *,
        seed: int = 0,
        check_bandwidth: bool = True,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
        trace_edges: bool = False,
        audit_sample: int = 1,
    ) -> None:
        if audit_sample < 1:
            raise SimulationError("audit_sample must be >= 1")
        self.topology = topology
        self.algorithm = algorithm
        self.seed = seed
        self.check_bandwidth = check_bandwidth
        self.bandwidth_bits = (
            bandwidth_bits if bandwidth_bits is not None else bandwidth_limit(topology.n)
        )
        self.max_rounds = max_rounds
        self.trace_edges = trace_edges
        self.audit_sample = audit_sample

        self.current_round = 0
        self._nodes: List[NodeHandle] = [
            NodeHandle(v, topology.neighbors(v), self, (seed << 20) ^ (v * 2654435761))
            for v in topology.nodes
        ]
        self._alarm_heap: List[int] = []
        self._alarms: Dict[int, Set[int]] = {}
        self._audit_countdown = 1
        self._messages_delivered = 0
        self._dropped_to_halted = 0
        self._edge_traffic: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Callbacks used by NodeHandle
    # ------------------------------------------------------------------

    def queue_message(self, sender: int, to: int, payload: Any) -> None:
        raise NotImplementedError

    def queue_broadcast(self, sender: int, payload: Any) -> None:
        """Send ``payload`` to every neighbor of ``sender``, in order.

        Semantically exactly a loop of :meth:`queue_message` over the
        sender's (sorted) neighbors; engines may override it with a
        fan-out that validates once.
        """
        for to in self.topology.neighbors(sender):
            self.queue_message(sender, to, payload)

    def schedule_wakeup(self, node_id: int, round_number: int) -> None:
        """Register a future wake-up for a node."""
        if round_number <= self.current_round:
            raise SimulationError(
                f"wake-up for node {node_id} at round {round_number} is not "
                f"in the future (current round {self.current_round})"
            )
        bucket = self._alarms.get(round_number)
        if bucket is None:
            bucket = set()
            self._alarms[round_number] = bucket
            heapq.heappush(self._alarm_heap, round_number)
        bucket.add(node_id)

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        raise NotImplementedError

    def _audit(self, payload: Any) -> None:
        """Sampled bandwidth audit: check every ``audit_sample``-th message."""
        self._audit_countdown -= 1
        if self._audit_countdown <= 0:
            self._audit_countdown = self.audit_sample
            check_message(payload, self.bandwidth_bits)

    def _peek_alarm(self) -> int:
        while self._alarm_heap and self._alarm_heap[0] not in self._alarms:
            heapq.heappop(self._alarm_heap)
        if not self._alarm_heap:
            raise SimulationError("no pending alarms")  # pragma: no cover
        return self._alarm_heap[0]

    def _pop_alarms(self, round_number: int) -> Set[int]:
        due: Set[int] = set()
        while self._alarm_heap and self._alarm_heap[0] <= round_number:
            when = heapq.heappop(self._alarm_heap)
            due.update(self._alarms.pop(when, ()))
        return due

    def _result(self, last_active_round: int) -> RunResult:
        return RunResult(
            rounds=last_active_round,
            messages=self._messages_delivered,
            states={node.id: node.state for node in self._nodes},
            edge_traffic=dict(self._edge_traffic) if self.trace_edges else {},
            dropped_to_halted=self._dropped_to_halted,
        )


class ReferenceEngine(EngineBase):
    """The executable specification of the CONGEST semantics.

    One dict-based inbox per round, a ``(sender, to)`` set for
    duplicate detection, and an explicit collect pass between rounds —
    slow but transparently faithful to the model.  Every other engine
    is differentially tested against this one.
    """

    name = "reference"

    def __init__(self, topology, algorithm, **kwargs) -> None:
        super().__init__(topology, algorithm, **kwargs)
        # Messages queued during the current round, delivered next round.
        self._outgoing: List[Tuple[int, int, Any]] = []
        self._sent_pairs: Set[Tuple[int, int]] = set()
        self._neighbor_sets = [set(topology.neighbors(v)) for v in topology.nodes]

    def queue_message(self, sender: int, to: int, payload: Any) -> None:
        """Queue a message for next-round delivery, enforcing the model."""
        if to not in self._neighbor_sets[sender]:
            raise SimulationError(
                f"node {sender} tried to send to non-neighbor {to}"
            )
        pair = (sender, to)
        if pair in self._sent_pairs:
            raise SimulationError(
                f"node {sender} sent two messages to {to} in round "
                f"{self.current_round}"
            )
        if self.check_bandwidth:
            self._audit(payload)
        self._sent_pairs.add(pair)
        self._outgoing.append((sender, to, payload))

    def run(self) -> RunResult:
        """Execute the algorithm until quiescence and return the result."""
        algorithm = self.algorithm
        nodes = self._nodes

        for node in nodes:
            algorithm.setup(node)

        # Round 0: every node starts.
        self.current_round = 0
        for node in nodes:
            if not node._halted:
                algorithm.on_start(node)
        inbox = self._collect_outgoing()
        last_active_round = 0

        while inbox or self._alarm_heap:
            next_round = self.current_round + 1
            if not inbox:
                # Idle gap: jump straight to the earliest alarm.
                next_round = max(next_round, self._peek_alarm())
            if next_round > self.max_rounds:
                raise RoundLimitExceededError(
                    f"'{getattr(algorithm, 'name', algorithm)}' still running "
                    f"after {self.max_rounds} rounds"
                )
            self.current_round = next_round

            woken = self._pop_alarms(next_round)
            active = set(inbox)
            active.update(woken)
            acted = False
            for node_id in sorted(active):
                node = nodes[node_id]
                if node._halted:
                    if node_id in inbox:
                        self._dropped_to_halted += len(inbox[node_id])
                    continue
                messages = inbox.get(node_id, [])
                messages.sort(key=lambda pair: pair[0])
                algorithm.on_round(node, messages)
                acted = True
            if acted or inbox:
                last_active_round = next_round
            inbox = self._collect_outgoing()

        return self._result(last_active_round)

    def _collect_outgoing(self) -> Dict[int, List[Tuple[int, Any]]]:
        """Move queued messages into next round's inboxes."""
        inbox: Dict[int, List[Tuple[int, Any]]] = {}
        for sender, to, payload in self._outgoing:
            inbox.setdefault(to, []).append((sender, payload))
            self._messages_delivered += 1
            if self.trace_edges:
                edge = canonical_edge(sender, to)
                self._edge_traffic[edge] = self._edge_traffic.get(edge, 0) + 1
        self._outgoing.clear()
        self._sent_pairs.clear()
        return inbox

    def collect_inbox(self) -> Dict[int, List[Tuple[int, Any]]]:
        """Drain the messages queued this round into an inbox mapping.

        The delivery seam used by the fault-injection layer
        (:mod:`repro.congest.faults`): the wrapper validates sends
        through :meth:`queue_message` and then pulls the queued round
        out through this method to apply drop/duplicate/delay/reorder
        decisions before delivery.  Calling it resets the per-round
        send state exactly as the engine's own run loop would.
        """
        return self._collect_outgoing()


class BatchedEngine(EngineBase):
    """Throughput-oriented engine with flat, preallocated round state.

    Differences from :class:`ReferenceEngine` (none observable):

    * Adjacency is flattened once into directed-edge *slots*
      (``sender * n + to -> slot``); a send is one dict probe instead
      of a neighbor-set lookup plus a ``(sender, to)`` set insert.
    * Duplicate sends are detected by a round-stamped flat array
      (``sent_stamp[slot] == current_round``) — no per-round set to
      clear or rebuild.
    * Messages are delivered at send time into preallocated per-node
      inbox buffers for the next round; the inter-round collect pass
      disappears, and buffers are recycled by double-buffering.
    * Inboxes never need sorting: active nodes run in ascending id
      order and each sends at most once per neighbor, so per-recipient
      buffers are filled in ascending sender order by construction.
    * Bandwidth auditing honours ``audit_sample`` (contract item 5) so
      hot paths can sample the audit instead of paying
      :func:`~repro.congest.message.message_bits` per message.
    """

    name = "batched"

    def __init__(self, topology, algorithm, **kwargs) -> None:
        super().__init__(topology, algorithm, **kwargs)
        n = topology.n
        self._n = n
        edge_slot: Dict[int, int] = {}
        slot_offset = [0] * (n + 1)
        slot = 0
        for v in topology.nodes:
            for w in topology.neighbors(v):
                edge_slot[v * n + w] = slot
                slot += 1
            slot_offset[v + 1] = slot
        self._edge_slot = edge_slot
        self._slot_offset = slot_offset
        self._sent_stamp = [-1] * slot
        # Double-buffered inboxes: sends write into _next_box; at the
        # start of a round the buffers swap and _this_box is consumed.
        self._this_box: List[List[Tuple[int, Any]]] = [[] for _ in range(n)]
        self._next_box: List[List[Tuple[int, Any]]] = [[] for _ in range(n)]
        self._next_touched: List[int] = []
        self._box_stamp = [-1] * n

    def _audit_fast(self, payload: Any) -> None:
        """Inlined twin of :func:`~repro.congest.message.check_message`.

        Computes the exact same bit size as ``message_bits`` for the
        common payload shapes (flat tuples of tags / ints / bools /
        ``None``, or one such scalar) without recursion or isinstance
        chains, and defers every other shape — including all malformed
        payloads — to ``check_message`` so error behavior is identical.
        ``tests/properties/test_prop_engines.py`` asserts the
        equivalence on a payload corpus.
        """
        self._audit_countdown -= 1
        if self._audit_countdown > 0:
            return
        self._audit_countdown = self.audit_sample
        tp = type(payload)
        if tp is tuple:
            bits = FRAME_BITS
            for item in payload:
                ti = type(item)
                if ti is str:
                    bits += TAG_BITS
                elif ti is int:
                    width = item.bit_length()
                    bits += (width if width else 1) + 1
                elif ti is bool or item is None:
                    bits += 1
                else:
                    check_message(payload, self.bandwidth_bits)
                    return
        elif tp is str:
            bits = TAG_BITS
        elif tp is int:
            width = payload.bit_length()
            bits = (width if width else 1) + 1
        elif tp is bool or payload is None:
            bits = 1
        else:
            check_message(payload, self.bandwidth_bits)
            return
        if bits > self.bandwidth_bits:
            check_message(payload, self.bandwidth_bits)

    def queue_message(self, sender: int, to: int, payload: Any) -> None:
        """Validate and deliver a message into the next round's inbox."""
        slot = self._edge_slot.get(sender * self._n + to) if 0 <= to < self._n else None
        if slot is None:
            raise SimulationError(
                f"node {sender} tried to send to non-neighbor {to}"
            )
        stamp = self.current_round
        sent_stamp = self._sent_stamp
        if sent_stamp[slot] == stamp:
            raise SimulationError(
                f"node {sender} sent two messages to {to} in round {stamp}"
            )
        sent_stamp[slot] = stamp
        if self.check_bandwidth:
            self._audit_fast(payload)
        if self._box_stamp[to] != stamp:
            self._box_stamp[to] = stamp
            self._next_touched.append(to)
        self._next_box[to].append((sender, payload))
        self._messages_delivered += 1
        if self.trace_edges:
            edge = (sender, to) if sender < to else (to, sender)
            self._edge_traffic[edge] = self._edge_traffic.get(edge, 0) + 1

    def queue_broadcast(self, sender: int, payload: Any) -> None:
        """Fan ``payload`` out to every neighbor, validating once.

        The sender's directed-edge slots are contiguous in CSR order
        (matching its sorted neighbor tuple), so the whole fan-out is
        one pass over a flat range: per-edge duplicate stamps and
        per-recipient inbox appends, with a single bandwidth audit —
        the payload is shared, so one audit decides for all copies.
        """
        neighbors = self._nodes[sender].neighbors
        if not neighbors:
            return
        stamp = self.current_round
        sent_stamp = self._sent_stamp
        # Mirror the reference check order: the first neighbor's
        # duplicate check precedes the audit, which precedes the rest.
        if sent_stamp[self._slot_offset[sender]] == stamp:
            raise SimulationError(
                f"node {sender} sent two messages to {neighbors[0]} "
                f"in round {stamp}"
            )
        if self.check_bandwidth:
            self._audit_fast(payload)
        box_stamp = self._box_stamp
        next_box = self._next_box
        next_touched = self._next_touched
        slot = self._slot_offset[sender]
        message = (sender, payload)
        for to in neighbors:
            if sent_stamp[slot] == stamp:
                raise SimulationError(
                    f"node {sender} sent two messages to {to} in round {stamp}"
                )
            sent_stamp[slot] = stamp
            slot += 1
            if box_stamp[to] != stamp:
                box_stamp[to] = stamp
                next_touched.append(to)
            next_box[to].append(message)
        self._messages_delivered += len(neighbors)
        if self.trace_edges:
            traffic = self._edge_traffic
            for to in neighbors:
                edge = (sender, to) if sender < to else (to, sender)
                traffic[edge] = traffic.get(edge, 0) + 1

    def run(self) -> RunResult:
        """Execute the algorithm until quiescence and return the result."""
        algorithm = self.algorithm
        nodes = self._nodes
        on_round = algorithm.on_round

        for node in nodes:
            algorithm.setup(node)

        self.current_round = 0
        for node in nodes:
            if not node._halted:
                algorithm.on_start(node)
        touched = self._swap_buffers()
        last_active_round = 0
        alarm_heap = self._alarm_heap

        while touched or alarm_heap:
            next_round = self.current_round + 1
            if not touched:
                # Idle gap: jump straight to the earliest alarm.
                next_round = max(next_round, self._peek_alarm())
            if next_round > self.max_rounds:
                raise RoundLimitExceededError(
                    f"'{getattr(algorithm, 'name', algorithm)}' still running "
                    f"after {self.max_rounds} rounds"
                )
            self.current_round = next_round

            if alarm_heap and alarm_heap[0] <= next_round:
                woken = self._pop_alarms(next_round)
                active = sorted(set(touched) | woken) if woken else sorted(touched)
            else:
                touched.sort()
                active = touched
            this_box = self._this_box
            acted = False
            for node_id in active:
                node = nodes[node_id]
                messages = this_box[node_id]
                if messages:
                    this_box[node_id] = []
                if node._halted:
                    self._dropped_to_halted += len(messages)
                    continue
                on_round(node, messages)
                acted = True
            if acted or touched:
                last_active_round = next_round
            touched = self._swap_buffers()

        return self._result(last_active_round)

    def _swap_buffers(self) -> List[int]:
        """Promote next-round inboxes to current and recycle the buffers."""
        touched = self._next_touched
        self._next_touched = []
        # _this_box entries were reset as they were consumed, so the old
        # current buffer is all-empty and can absorb the next round's sends.
        self._this_box, self._next_box = self._next_box, self._this_box
        return touched

    def collect_inbox(self) -> Dict[int, List[Tuple[int, Any]]]:
        """Drain the messages queued this round into an inbox mapping.

        The fault-layer delivery seam (see
        :meth:`ReferenceEngine.collect_inbox`).  Swaps the double
        buffers and harvests the touched recipients, resetting their
        slots so the buffers stay recyclable.
        """
        inbox: Dict[int, List[Tuple[int, Any]]] = {}
        touched = self._swap_buffers()
        this_box = self._this_box
        for to in touched:
            messages = this_box[to]
            if messages:
                this_box[to] = []
                inbox[to] = messages
        return inbox


# ----------------------------------------------------------------------
# Registry and default selection
# ----------------------------------------------------------------------

ENGINES: Dict[str, Type[EngineBase]] = {
    ReferenceEngine.name: ReferenceEngine,
    BatchedEngine.name: BatchedEngine,
}

DEFAULT_ENGINE = BatchedEngine.name

_default_engine = DEFAULT_ENGINE

EngineLike = Union[None, str, Type[EngineBase]]


def get_default_engine() -> str:
    """Name of the engine used when none is specified."""
    return _default_engine


def set_default_engine(engine: EngineLike) -> str:
    """Set the process-wide default engine; returns the previous name."""
    global _default_engine
    previous = _default_engine
    _default_engine = resolve_engine(engine).name
    return previous


@contextmanager
def using_engine(engine: EngineLike) -> Iterator[str]:
    """Temporarily override the default engine (``None`` is a no-op)."""
    if engine is None:
        yield _default_engine
        return
    previous = set_default_engine(engine)
    try:
        yield _default_engine
    finally:
        set_default_engine(previous)


def engine_parameter(func):
    """Give an entry point an ``engine=`` keyword selecting the engine.

    The decorated function gains an ``engine`` keyword argument (name,
    class, or ``None`` for the current default); for the duration of
    the call it becomes the process default, so every simulation the
    function runs — however deeply nested — executes on that engine.
    """

    @functools.wraps(func)
    def wrapper(*args, engine: EngineLike = None, **kwargs):
        with using_engine(engine):
            return func(*args, **kwargs)

    return wrapper


def resolve_engine(engine: EngineLike) -> Type[EngineBase]:
    """Map an engine spec (name, class, or ``None``) to an engine class."""
    if engine is None:
        return ENGINES[_default_engine]
    if isinstance(engine, str):
        try:
            return ENGINES[engine]
        except KeyError:
            raise SimulationError(
                f"unknown engine {engine!r}; available: {sorted(ENGINES)}"
            ) from None
    if isinstance(engine, type) and issubclass(engine, EngineBase):
        return engine
    raise SimulationError(f"not an engine spec: {engine!r}")
