"""Shared randomness for part-level coin flips.

CoreFast requires all nodes of a part to flip the *same* coin.  The
paper (Section 5.4) realises this "by sharing O(log^2 n) random bits
among all the nodes of G in O(D + log n) rounds, as described in [7]".
We implement exactly that substrate: the root draws a seed of
``O(log^2 n)`` bits, splits it into ``O(log n)``-bit chunks, and
pipelines the chunks down the BFS tree — ``depth(T) + #chunks`` rounds.

Once every node holds the global seed, part-level coins are derived
deterministically with :func:`mix` / :func:`part_coin`, so all members
of a part agree without further communication.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import RunResult, Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.graphs.spanning_trees import SpanningTree

CHUNK_TOKEN = "rnd"
DONE_TOKEN = "rnd-done"
_CHUNK_BITS = 16


def mix(*values: int) -> int:
    """Deterministic 64-bit hash of a tuple of integers.

    A splitmix64-style mixer; used to derive independent pseudo-random
    streams (part coins, activity flags) from one shared seed without
    relying on Python's salted ``hash``.
    """
    acc = 0x9E3779B97F4A7C15
    for value in values:
        x = (value & 0xFFFFFFFFFFFFFFFF) ^ acc
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        acc = (acc + x * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF
    return acc


def coin(seed: int, *stream: int) -> float:
    """A uniform [0, 1) value derived from ``seed`` and a stream id."""
    return mix(seed, *stream) / 2.0**64


def part_coin(seed: int, part_id: int, purpose: int, probability: float) -> bool:
    """Shared Bernoulli coin for a part: same answer at every node."""
    return coin(seed, part_id, purpose) < probability


class SeedBroadcastAlgorithm(NodeAlgorithm):
    """Pipelines the shared seed down the tree, chunk by chunk.

    Inputs (per node): ``tree_parent``, ``tree_children``.
    Outputs: ``seed`` — the reassembled shared seed at every node.
    """

    name = "seed-broadcast"

    def __init__(self, inputs, root: int, chunks: Tuple[int, ...]):
        super().__init__(inputs)
        self.root = root
        self.n_chunks = len(chunks)
        self._chunks = chunks

    def on_start(self, node) -> None:
        node.state.received = []
        node.state.seed = None
        if node.id == self.root:
            node.state.received = list(self._chunks)
            self._emit(node)

    def on_round(self, node, messages) -> None:
        for _sender, payload in messages:
            if payload[0] == CHUNK_TOKEN:
                node.state.received.append(payload[1])
        self._emit(node)

    def _emit(self, node) -> None:
        sent = getattr(node.state, "sent", 0)
        if sent < len(node.state.received):
            chunk = node.state.received[sent]
            for child in node.state.tree_children:
                node.send(child, (CHUNK_TOKEN, chunk))
            node.state.sent = sent + 1
            if node.state.sent < len(node.state.received):
                node.wake_after(1)
        if len(node.state.received) == self.n_chunks:
            node.state.seed = _assemble(node.state.received)


def seed_chunk_count(n: int) -> int:
    """Number of ``O(log n)``-bit chunks the shared seed is split into."""
    return max(1, n.bit_length())


def draw_shared_seed(n: int, seed: int) -> int:
    """The shared seed the root draws before broadcasting it.

    Factored out so the direct construction kernels
    (:mod:`repro.core.construct_fast`) can obtain the *same* seed a
    simulated :func:`share_randomness` would have distributed, without
    running the broadcast.
    """
    rng = random.Random(seed)
    return rng.getrandbits(_CHUNK_BITS * seed_chunk_count(n))


def _split(seed: int, n_chunks: int) -> Tuple[int, ...]:
    mask = (1 << _CHUNK_BITS) - 1
    return tuple((seed >> (_CHUNK_BITS * i)) & mask for i in range(n_chunks))


def _assemble(chunks) -> int:
    value = 0
    for i, chunk in enumerate(chunks):
        value |= chunk << (_CHUNK_BITS * i)
    return value


def share_randomness(
    topology: Topology,
    tree: SpanningTree,
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    engine: EngineLike = None,
) -> Tuple[int, RunResult]:
    """Distribute an O(log^2 n)-bit shared seed to every node.

    Returns the seed (as one integer) and the simulation result.  The
    number of chunks is ``ceil(log2 n)`` so the total entropy is
    Theta(log^2 n) bits, matching the paper's requirement.
    """
    n_chunks = seed_chunk_count(topology.n)
    shared = draw_shared_seed(topology.n, seed)
    chunks = _split(shared, n_chunks)
    inputs = {
        v: {
            "tree_parent": tree.parent(v),
            "tree_children": tree.children(v),
        }
        for v in topology.nodes
    }
    algorithm = SeedBroadcastAlgorithm(inputs, tree.root, chunks)
    result = Simulator(topology, algorithm, seed=seed, engine=engine).run()
    for v in topology.nodes:
        assert result.states[v].seed == shared, "seed broadcast diverged"
    if ledger is not None:
        ledger.charge_phase("share-randomness", result.rounds, result.messages)
    return shared, result
