"""Message payloads and the O(log n)-bit bandwidth audit.

The CONGEST model allows each node to send one B-bit message per edge
per direction per round, with ``B = O(log n)``.  Payloads in this
library are plain Python values built from a small vocabulary — string
tags (opcodes), integers, booleans, ``None`` — optionally grouped in a
flat tuple.  :func:`message_bits` estimates the wire size of a payload
and :func:`bandwidth_limit` gives the per-message budget for a network
of ``n`` nodes.

A string tag is charged a constant opcode cost (an implementation
would enumerate the finitely many message types of the protocol), an
integer is charged its two's-complement width, and tuple framing is
charged a small constant.  Constant factors are irrelevant in the
CONGEST model; the audit exists to catch *asymptotic* violations such
as shipping a whole vertex list in one message.
"""

from __future__ import annotations

from typing import Any

from repro.errors import BandwidthExceededError

TAG_BITS = 6
FRAME_BITS = 4


def message_bits(payload: Any) -> int:
    """Estimated wire size of ``payload`` in bits.

    Raises
    ------
    BandwidthExceededError
        If the payload contains a type outside the allowed vocabulary
        (for example a list, set, or dict — containers whose size could
        silently smuggle more than O(log n) bits).
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, str):
        return TAG_BITS
    if isinstance(payload, tuple):
        total = FRAME_BITS
        for item in payload:
            if isinstance(item, tuple):
                raise BandwidthExceededError(
                    "nested tuples are not a valid message payload"
                )
            total += message_bits(item)
        return total
    raise BandwidthExceededError(
        f"payload of type {type(payload).__name__} is not a valid "
        f"CONGEST message; use tags, ints, bools, None, or a flat tuple"
    )


def bandwidth_limit(n: int, beta: int = 8, floor: int = 32) -> int:
    """Per-message bit budget ``B = max(floor, beta * ceil(log2(n + 1)))``.

    ``beta`` absorbs the constant factor hidden by ``O(log n)``; the
    floor keeps tiny test graphs from tripping the audit on framing
    overhead alone.
    """
    bits = (n).bit_length()
    return max(floor, beta * bits + 16)


def check_message(payload: Any, limit: int) -> int:
    """Validate ``payload`` against ``limit`` bits; return its size."""
    size = message_bits(payload)
    if size > limit:
        raise BandwidthExceededError(
            f"message of {size} bits exceeds the CONGEST budget of "
            f"{limit} bits: {payload!r}"
        )
    return size
