"""Base class for CONGEST node programs.

A distributed algorithm is written once, from the perspective of a
single node, by subclassing :class:`NodeAlgorithm`:

* :meth:`NodeAlgorithm.on_start` runs for every node in round 0.
* :meth:`NodeAlgorithm.on_round` runs in every later round for each
  node that either received messages or scheduled a wake-up.

All per-node data lives in ``node.state``; the algorithm object itself
must stay stateless across nodes (one instance serves the whole
network), except for read-only configuration passed to ``__init__``.
Per-node *inputs* (for example "my part identifier" or "my tree
parent") are supplied through the ``inputs`` mapping and appear on
``node.state`` before ``on_start``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

Inbox = List[Tuple[int, Any]]


class NodeAlgorithm:
    """A synchronous message-passing node program.

    Parameters
    ----------
    inputs:
        Optional mapping ``node_id -> {attribute: value}``.  Each entry
        is copied onto ``node.state`` before the algorithm starts,
        modelling local knowledge (inputs of the distributed problem or
        outputs of a previous phase).
    """

    name: str = "algorithm"

    def __init__(self, inputs: Optional[Mapping[int, Dict[str, Any]]] = None):
        self._inputs = dict(inputs) if inputs else {}

    def setup(self, node) -> None:
        """Install per-node inputs.  Called by the simulator."""
        for key, value in self._inputs.get(node.id, {}).items():
            setattr(node.state, key, value)

    def on_start(self, node) -> None:
        """Round-0 hook: initialise state and send first messages."""

    def on_round(self, node, messages: Inbox) -> None:
        """Per-round hook for active nodes.

        ``messages`` holds ``(sender, payload)`` pairs delivered this
        round, in ascending sender order (the simulator sorts them so
        node programs are deterministic).
        """
