"""Reliable-delivery sublayer over unreliable CONGEST execution.

:class:`ReliableAlgorithm` wraps any :class:`~repro.congest.algorithm.
NodeAlgorithm` so it survives the transport faults injected by
:mod:`repro.congest.faults` — message drop, duplication, delay, and
inbox reordering — and *detects* the ones it cannot mask (crash-stop
nodes, exhausted retransmission budgets), surfacing a declared
:class:`~repro.errors.DetectedFailure` instead of a silently wrong
answer.

The protocol: lockstep with repair
----------------------------------

Every node runs the inner algorithm's rounds ``0..horizon`` locally
("inner rounds").  For each inner round ``j`` it emits one *frame* per
neighbor — the inner message for ``j`` if any, else a heartbeat — and
it may execute inner round ``j + 1`` only once it holds a ``j``-frame
from **every** neighbor, so its inner inbox is provably complete.
Because a node advances only on full frame sets, neighboring nodes
drift by at most one inner round, which bounds the retransmit buffer
at two frames per edge.

Recovery is two-sided:

* **proactive** — a node stuck waiting re-sends its own latest frame as
  a *prod*, with per-message timeouts and capped exponential backoff
  (``timeout * 2^attempt``, capped, up to ``max_retries`` attempts);
* **reactive** — receiving a stale or duplicate frame means the sender
  is stuck, so the matching buffered frame is re-sent to it.

Duplicates are idempotent (frames are keyed by round), reordering is
absorbed by the per-round keying, and delays only stretch the wait.
A crash-stop neighbor answers no prod, so the retry budget runs out
and the node declares itself *stalled* — the run ends with a detected,
never a silent, failure.

Cost model
----------

Fault-free, the sublayer costs **one physical round per inner round**
(plus one start-up round): overhead ``~1x`` in rounds.  Messages are
amplified to ``2m`` frames per inner round (every edge, both
directions, every round — heartbeats included), the price of knowing
an inbox is complete without acks.  Each drop on the critical path
adds one backoff window.  :func:`run_reliably` charges the *physical*
rounds and frames to the :class:`~repro.congest.trace.RoundLedger`,
so composed experiments account the true cost.  Frames add a constant
header (tag + round number) to inner payloads, preserving ``O(log n)``
messages; the wrapper widens the audit budget by that constant.

Determinism: the wrapper flips no coins — backoff is a pure function
of the attempt count, and the inner algorithm consumes the node's own
RNG exactly as it would on a clean engine — so the recovered inner
states are **bit-identical** to the fault-free reference run.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.faults import FaultPlan, FaultsLike, resolve_faults
from repro.congest.message import bandwidth_limit
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.errors import (
    DetectedFailure,
    RoundLimitExceededError,
    SimulationError,
)

FRAME_TAG = "rf"
_TUPLE, _SCALAR, _HEARTBEAT = "t", "v", "h"
_ORIGINAL, _PROD, _ANSWER = "o", "p", "a"
_NO_DATA = object()

DEFAULT_TIMEOUT = 1
DEFAULT_BACKOFF_CAP = 16
DEFAULT_MAX_RETRIES = 12
# Header slack for the frame envelope: tag + round + kind on top of the
# inner payload.  A constant, so O(log n) messages stay O(log n).
FRAME_HEADER_BITS = 64


class _InnerNode:
    """The NodeHandle facade the wrapped inner algorithm sees.

    Mirrors :class:`~repro.congest.node.NodeHandle` exactly — same
    validation errors, same RNG object — but sends collect into a
    per-round outbox and wake-ups land in an inner-round alarm set.
    """

    __slots__ = ("id", "neighbors", "state", "random", "_rel")

    def __init__(self, node, rel) -> None:
        self.id = node.id
        self.neighbors = node.neighbors
        self.state = rel.inner
        self.random = node.random
        self._rel = rel

    @property
    def round(self) -> int:
        return self._rel.executing

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        return self._rel.inner_halted

    def send(self, to: int, payload: Any) -> None:
        rel = self._rel
        if rel.inner_halted:
            raise SimulationError(f"halted node {self.id} tried to send")
        if to not in rel.neighbor_set:
            raise SimulationError(
                f"node {self.id} tried to send to non-neighbor {to}"
            )
        if to in rel.outbox:
            raise SimulationError(
                f"node {self.id} sent two messages to {to} in round "
                f"{rel.executing}"
            )
        rel.outbox[to] = payload

    def broadcast(self, payload: Any) -> None:
        for to in self.neighbors:
            self.send(to, payload)

    def wake_at(self, round_number: int) -> None:
        rel = self._rel
        if round_number <= rel.executing:
            raise SimulationError(
                f"wake-up for node {self.id} at round {round_number} is not "
                f"in the future (current round {rel.executing})"
            )
        rel.inner_alarms.add(round_number)

    def wake_after(self, delay: int) -> None:
        if delay <= 0:
            raise SimulationError("wake_after requires a positive delay")
        self._rel.inner_alarms.add(self._rel.executing + delay)

    def halt(self) -> None:
        self._rel.inner_halted = True

    def __repr__(self) -> str:
        return f"_InnerNode(id={self.id}, degree={self.degree})"


def _encode(j: int, mode: str, data) -> Tuple:
    """One frame: the inner round's message (or heartbeat) for an edge.

    ``mode`` is the retransmission role: ``"o"`` original, ``"p"`` prod
    (the sender is stuck and requests this round's frame back), ``"a"``
    answer to a prod.  Only prods ever trigger a response — answers and
    originals never do, so duplicated frames cannot ping-pong.
    """
    if data is _NO_DATA:
        return (FRAME_TAG, j, mode, _HEARTBEAT)
    if isinstance(data, tuple):
        return (FRAME_TAG, j, mode, _TUPLE) + data
    return (FRAME_TAG, j, mode, _SCALAR, data)


def _decode(payload: Tuple):
    """Inverse of :func:`_encode` -> ``(round, mode, data_or_sentinel)``."""
    j, mode, kind = payload[1], payload[2], payload[3]
    if kind == _HEARTBEAT:
        return j, mode, _NO_DATA
    if kind == _TUPLE:
        return j, mode, tuple(payload[4:])
    return j, mode, payload[4]


class ReliableAlgorithm(NodeAlgorithm):
    """Ack-free lockstep-with-repair wrapper (see module docstring).

    Parameters
    ----------
    inner:
        The wrapped node program.  Inner state lives in
        ``node.state.inner``; the final inner namespaces are
        bit-identical to a fault-free run of ``inner`` when every node
        completes.
    horizon:
        Number of inner rounds to execute (``0..horizon`` inclusive) —
        normally the fault-free reference run's round count.
    timeout / backoff_cap / max_retries:
        Retransmission discipline: prod attempt ``i`` waits
        ``min(backoff_cap, timeout * 2**i)`` physical rounds; after
        ``max_retries`` unanswered prods for one inner round the node
        declares itself stalled (``node.state.rel_failed``).
    """

    name = "reliable"

    def __init__(
        self,
        inner: NodeAlgorithm,
        *,
        horizon: int,
        timeout: int = DEFAULT_TIMEOUT,
        backoff_cap: int = DEFAULT_BACKOFF_CAP,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        super().__init__()
        if horizon < 0:
            raise SimulationError("reliable horizon must be >= 0")
        if timeout < 1 or backoff_cap < timeout or max_retries < 1:
            raise SimulationError("invalid reliable retransmission settings")
        self.inner_algorithm = inner
        self.horizon = horizon
        self.timeout = timeout
        self.backoff_cap = backoff_cap
        self.max_retries = max_retries
        self.name = f"reliable:{getattr(inner, 'name', 'algorithm')}"

    # -- lifecycle -----------------------------------------------------

    def setup(self, node) -> None:
        rel = SimpleNamespace(
            k=0,                    # next inner round to execute
            executing=0,            # inner round currently executing
            inner=SimpleNamespace(),
            inner_halted=False,
            inner_alarms=set(),
            neighbor_set=frozenset(node.neighbors),
            outbox={},              # inner sends of the executing round
            frames={},              # j -> {sender: data_or_sentinel}
            sent={},                # j -> {neighbor: data_or_sentinel}
            outq={},                # neighbor -> [j, j, ...] send queue
            attempts=0,
            next_prod=0,
            prods=0,                # retransmit prods sent (stats)
            rel_done=False,
            rel_failed=False,
            inner_dropped_to_halted=0,
        )
        node.state.rel = rel
        # The inner algorithm's per-node inputs land on the inner
        # namespace, exactly as its own setup would install them.
        self.inner_algorithm.setup(_InnerNode(node, rel))

    def on_start(self, node) -> None:
        rel = node.state.rel
        self._execute_inner(node, rel)          # inner round 0
        self._flush(node, rel)
        self._arm_prod_timer(node, rel)

    def on_round(self, node, messages) -> None:
        rel = node.state.rel
        self._receive(node, rel, messages)
        if not rel.rel_failed and not rel.rel_done and self._ready(node, rel):
            self._execute_inner(node, rel)
        elif (
            not rel.rel_failed
            and not rel.rel_done
            and node.round >= rel.next_prod
        ):
            self._prod(node, rel)
        self._flush(node, rel)
        if not rel.rel_done and not rel.rel_failed:
            self._arm_prod_timer(node, rel)
            # A backlog of already-received frames can make the next
            # inner round ready now; the one-frame-per-edge budget
            # forces the advance into the next physical round.
            if self._ready(node, rel):
                node.wake_after(1)

    # -- the state machine ---------------------------------------------

    def _ready(self, node, rel) -> bool:
        """Can inner round ``k`` execute? (full frame set for ``k-1``)"""
        if rel.k > self.horizon:
            return False
        if rel.k == 0:
            return True
        held = rel.frames.get(rel.k - 1)
        if not node.neighbors:
            return True
        return held is not None and len(held) == len(node.neighbors)

    def _execute_inner(self, node, rel) -> None:
        """Run inner round ``k`` and emit its frames."""
        j = rel.k
        rel.executing = j
        rel.outbox = {}
        inner_node = _InnerNode(node, rel)
        if j == 0:
            if not rel.inner_halted:
                self.inner_algorithm.on_start(inner_node)
        else:
            held = rel.frames.pop(j - 1, {})
            inbox = sorted(
                (sender, data)
                for sender, data in held.items()
                if data is not _NO_DATA
            )
            if rel.inner_halted:
                rel.inner_dropped_to_halted += len(inbox)
            else:
                due = {r for r in rel.inner_alarms if r <= j}
                rel.inner_alarms -= due
                if inbox or due:
                    self.inner_algorithm.on_round(inner_node, inbox)
        # Emit this round's frames (data or heartbeat) to every edge.
        emitted = {
            to: rel.outbox.get(to, _NO_DATA) for to in node.neighbors
        }
        rel.sent[j] = emitted
        rel.sent.pop(j - 2, None)
        for to in node.neighbors:
            self._queue_frame(rel, to, j, _ORIGINAL)
        rel.outbox = {}
        rel.k = j + 1
        rel.attempts = 0
        rel.next_prod = node.round + self.timeout
        stale = [r for r in rel.frames if r < rel.k - 1]
        for r in stale:
            del rel.frames[r]
        if rel.k > self.horizon:
            rel.rel_done = True

    def _receive(self, node, rel, messages) -> None:
        for sender, payload in messages:
            if type(payload) is not tuple or not payload or payload[0] != FRAME_TAG:
                raise SimulationError(
                    f"node {node.id} received a non-frame payload {payload!r} "
                    f"under the reliable sublayer"
                )
            j, mode, data = _decode(payload)
            bucket = rel.frames.get(j)
            fresh = (bucket is None or sender not in bucket) and j >= rel.k - 1
            if fresh:
                rel.frames.setdefault(j, {})[sender] = data
                # Progress: the network is demonstrably alive, so the
                # stall ladder restarts.  A real crash quiets the whole
                # neighborhood (drift <= 1 stalls every neighbor), so
                # detection still trips once fresh traffic stops.
                rel.attempts = 0
            if mode == _PROD and j in rel.sent and sender in rel.sent[j]:
                # The sender is stuck at round j and asks for my j-frame
                # back.  Answer frames never trigger answers, so
                # duplicated retransmissions cannot ping-pong.
                self._queue_frame(rel, sender, j, _ANSWER)

    def _prod(self, node, rel) -> None:
        """Retransmit my latest frame to every neighbor I'm missing."""
        rel.attempts += 1
        if rel.attempts > self.max_retries:
            rel.rel_failed = True
            return
        j = rel.k - 1
        held = rel.frames.get(j, {})
        for to in node.neighbors:
            if to not in held and j in rel.sent and to in rel.sent[j]:
                self._queue_frame(rel, to, j, _PROD)
                rel.prods += 1
        backoff = min(self.backoff_cap, self.timeout * (2 ** (rel.attempts - 1)))
        rel.next_prod = node.round + backoff

    def _arm_prod_timer(self, node, rel) -> None:
        delay = max(1, rel.next_prod - node.round)
        node.wake_after(delay)

    def _queue_frame(self, rel, to: int, j: int, mode: str) -> None:
        # Encode at queue time: a backed-up queue entry must not depend
        # on the two-round ``sent`` buffer still holding round ``j``.
        # A prod upgrades a queued answer (prods demand a response; the
        # payload is identical either way).
        queue = rel.outq.setdefault(to, {})
        if j not in queue or (mode == _PROD and queue[j][2] != _PROD):
            queue[j] = _encode(j, mode, rel.sent[j][to])

    def _flush(self, node, rel) -> None:
        """Send at most one frame per neighbor (oldest round first)."""
        backlog = False
        for to, queue in rel.outq.items():
            if not queue:
                continue
            j = min(queue)
            node.send(to, queue.pop(j))
            if queue:
                backlog = True
        if backlog:
            node.wake_after(1)


# ----------------------------------------------------------------------
# The run harness
# ----------------------------------------------------------------------


@dataclass
class ReliableRunResult:
    """Outcome of one reliable execution over an unreliable network."""

    states: Dict[int, SimpleNamespace]
    inner_rounds: int
    rounds: int
    messages: int
    prods: int
    stalled: Tuple[int, ...]
    fault_stats: Optional[object]

    @property
    def overhead(self) -> float:
        """Physical rounds per inner round (~1.0 on a clean network)."""
        return self.rounds / max(1, self.inner_rounds)


def default_round_budget(horizon: int, max_retries: int, backoff_cap: int) -> int:
    """A physical-round watchdog that outlasts every retry ladder."""
    return 64 + (horizon + 2) * (4 + max_retries * backoff_cap)


def run_reliably(
    topology: Topology,
    algorithm: NodeAlgorithm,
    *,
    horizon: int,
    seed: int = 0,
    faults: FaultsLike = None,
    timeout: int = DEFAULT_TIMEOUT,
    backoff_cap: int = DEFAULT_BACKOFF_CAP,
    max_retries: int = DEFAULT_MAX_RETRIES,
    engine=None,
    ledger: Optional[RoundLedger] = None,
    max_rounds: Optional[int] = None,
    check_bandwidth: bool = True,
    bandwidth_bits: Optional[int] = None,
) -> ReliableRunResult:
    """Execute ``algorithm`` reliably under a fault plan.

    Runs the :class:`ReliableAlgorithm` wrapper for ``horizon`` inner
    rounds (normally the fault-free reference's round count), charges
    the physical cost to ``ledger``, and returns the recovered inner
    states — bit-identical to the fault-free run.

    Raises
    ------
    DetectedFailure
        If any node stalls (retry budget exhausted — e.g. against a
        crash-stop neighbor), fails to reach the horizon, or the
        physical-round watchdog fires.  The unreliable layer's promise
        is *detect, never silently corrupt*.
    """
    plan = resolve_faults(faults)
    if plan is not None and plan.reliable:
        # Strip the routing flag: this *is* the reliable sublayer, and
        # the run below must take the plain FaultyEngine path.
        plan = plan.with_reliable(False)
    wrapper = ReliableAlgorithm(
        algorithm,
        horizon=horizon,
        timeout=timeout,
        backoff_cap=backoff_cap,
        max_retries=max_retries,
    )
    budget = (
        max_rounds
        if max_rounds is not None
        else default_round_budget(horizon, max_retries, backoff_cap)
    )
    base_bits = (
        bandwidth_limit(topology.n) if bandwidth_bits is None else bandwidth_bits
    )
    sim = Simulator(
        topology,
        wrapper,
        seed=seed,
        faults=plan if plan is not None else "none",
        engine=engine,
        check_bandwidth=check_bandwidth,
        bandwidth_bits=base_bits + FRAME_HEADER_BITS,
        max_rounds=budget,
    )
    try:
        result = sim.run()
    except RoundLimitExceededError as error:
        raise DetectedFailure(
            f"reliable run exceeded its {budget}-round budget: {error}",
            reasons=(str(error),),
        ) from error

    stalled = tuple(
        v for v in topology.nodes if result.states[v].rel.rel_failed
    )
    unfinished = tuple(
        v
        for v in topology.nodes
        if not result.states[v].rel.rel_done and v not in stalled
    )
    prods = sum(result.states[v].rel.prods for v in topology.nodes)
    if ledger is not None:
        ledger.charge(wrapper.name, result.rounds, result.messages)
    if stalled or unfinished:
        raise DetectedFailure(
            f"reliable run detected a failure: stalled nodes {list(stalled)}, "
            f"unfinished nodes {list(unfinished)} "
            f"(faults: {plan.describe() if plan else 'none'})",
            reasons=tuple(
                [f"stalled:{v}" for v in stalled]
                + [f"unfinished:{v}" for v in unfinished]
            ),
        )
    return ReliableRunResult(
        states={v: result.states[v].rel.inner for v in topology.nodes},
        inner_rounds=horizon,
        rounds=result.rounds,
        messages=result.messages,
        prods=prods,
        stalled=stalled,
        fault_stats=sim.fault_stats,
    )


class ReliableSimulation:
    """Engine-like facade behind ``FaultPlan(reliable=True)``.

    When a fault plan carries the ``reliable`` flag,
    :class:`~repro.congest.simulator.Simulator` routes the run here
    instead of the bare :class:`~repro.congest.faults.FaultyEngine`:

    1. a *clean* run of the algorithm on the selected inner engine
       yields the round horizon — the simulation-harness stand-in for
       the analytic round bound a deployment would know a priori;
    2. the algorithm then runs under the plan wrapped in
       :class:`ReliableAlgorithm` for exactly that horizon.

    The returned :class:`~repro.congest.engine.RunResult` carries the
    recovered inner states (bit-identical to the clean run), the
    *physical* round and frame counts of the faulted execution, and —
    when tracing — the clean run's logical edge traffic (congestion
    analyses measure the algorithm, not the retransmission envelope).
    A crash-stop partition or exhausted retry ladder raises
    :class:`~repro.errors.DetectedFailure` out of :meth:`run`.
    """

    name = "reliable"

    def __init__(
        self,
        topology: Topology,
        algorithm: NodeAlgorithm,
        *,
        plan,
        inner=None,
        seed: int = 0,
        check_bandwidth: bool = True,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
        trace_edges: bool = False,
        audit_sample: int = 1,
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.plan = plan
        self.inner = inner
        self.seed = seed
        self.check_bandwidth = check_bandwidth
        self.max_rounds = max_rounds
        self.trace_edges = trace_edges
        self.audit_sample = audit_sample
        self._base_bits = bandwidth_bits  # the inner algorithm's budget
        self.bandwidth_bits = (
            bandwidth_limit(topology.n) if bandwidth_bits is None else bandwidth_bits
        ) + FRAME_HEADER_BITS
        self.current_round = 0
        self.fault_stats = None

    def run(self) -> "RunResult":
        from repro.congest.engine import RunResult, resolve_engine

        reference = resolve_engine(self.inner)(
            self.topology,
            self.algorithm,
            seed=self.seed,
            check_bandwidth=self.check_bandwidth,
            bandwidth_bits=self._base_bits,
            max_rounds=self.max_rounds,
            trace_edges=self.trace_edges,
            audit_sample=self.audit_sample,
        ).run()
        outcome = run_reliably(
            self.topology,
            self.algorithm,
            horizon=reference.rounds,
            seed=self.seed,
            faults=self.plan.with_reliable(False),
            engine=self.inner,
            check_bandwidth=self.check_bandwidth,
            bandwidth_bits=self._base_bits,
        )
        self.fault_stats = outcome.fault_stats
        self.current_round = outcome.rounds
        return RunResult(
            rounds=outcome.rounds,
            messages=outcome.messages,
            states=outcome.states,
            edge_traffic=dict(reference.edge_traffic),
            dropped_to_halted=reference.dropped_to_halted,
        )

    # Manual queue/wakeup driving predates the faults axis and has no
    # meaning for a two-stage reliable execution.
    def queue_message(self, sender: int, to: int, payload) -> None:
        raise SimulationError("reliable mode does not support manual queueing")

    def queue_broadcast(self, sender: int, payload) -> None:
        raise SimulationError("reliable mode does not support manual queueing")

    def schedule_wakeup(self, node_id: int, round_number: int) -> None:
        raise SimulationError("reliable mode does not support manual wake-ups")
