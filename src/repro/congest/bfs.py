"""Distributed BFS spanning-tree construction (O(D) rounds).

Computing a BFS tree is the standard first step of every construction
in the paper (Section 5.2: "Computing a BFS tree T in our distributed
CONGEST model is a standard subroutine and can be computed in O(D)
rounds").  The node program floods a ``bfs`` token outward from the
root; each node adopts the smallest-id neighbor among the first round
of arrivals as its parent and confirms with a ``child`` message, so
that on completion every node knows its parent, its children, and its
depth — exactly the local tree knowledge later phases assume.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import RunResult, Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.graphs.spanning_trees import SpanningTree

BFS_TOKEN = "bfs"
CHILD_TOKEN = "child"


class BFSTreeAlgorithm(NodeAlgorithm):
    """Flood-based BFS tree construction rooted at ``root``.

    Outputs (on ``node.state``): ``parent`` (``None`` at the root),
    ``children`` (set), and ``dist`` (BFS depth).
    """

    name = "bfs-tree"

    def __init__(self, root: int):
        super().__init__()
        self.root = root

    def on_start(self, node) -> None:
        node.state.parent = None
        node.state.children = set()
        node.state.dist = None
        if node.id == self.root:
            node.state.dist = 0
            node.broadcast((BFS_TOKEN, 0))

    def on_round(self, node, messages) -> None:
        token_senders = []
        for sender, payload in messages:
            tag = payload[0]
            if tag == BFS_TOKEN:
                token_senders.append(sender)
            elif tag == CHILD_TOKEN:
                node.state.children.add(sender)
        if token_senders and node.state.dist is None:
            parent = min(token_senders)
            node.state.parent = parent
            node.state.dist = node.round
            node.send(parent, (CHILD_TOKEN,))
            for neighbor in node.neighbors:
                if neighbor != parent:
                    node.send(neighbor, (BFS_TOKEN, node.state.dist))


def build_bfs_tree(
    topology: Topology,
    root: int = 0,
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    engine: EngineLike = None,
) -> Tuple[SpanningTree, RunResult]:
    """Run the distributed BFS and return the resulting spanning tree.

    When a ``ledger`` is given, the phase cost is recorded on it (and
    the ledger's barrier depth is set to the tree height, so later
    phases are charged realistic synchronisation barriers).
    """
    result = Simulator(topology, BFSTreeAlgorithm(root), seed=seed, engine=engine).run()
    parent = [result.states[v].parent for v in topology.nodes]
    tree = SpanningTree(root, parent)
    if ledger is not None:
        ledger.barrier_depth = tree.height
        ledger.charge_phase("bfs-tree", result.rounds, result.messages)
    return tree, result


def build_bfs_tree_direct(
    topology: Topology,
    root: int = 0,
    *,
    ledger: Optional[RoundLedger] = None,
) -> SpanningTree:
    """Simulation-free twin of :func:`build_bfs_tree`.

    The flood adopts, at every node, the minimum-id neighbor among the
    first round of token arrivals — i.e. the minimum-id neighbor in the
    previous BFS layer (which is *not* always the parent
    :meth:`~repro.graphs.spanning_trees.SpanningTree.bfs` picks, whose
    discovery order follows the queue).  The cost is closed-form: the
    deepest adopters send their child-claims at round ``height``, so
    the run ends at ``height + 1`` rounds, and every node's token
    fan-out plus one claim totals exactly ``2m`` messages.
    """
    from collections import deque

    n = topology.n
    dist = [-1] * n
    dist[root] = 0
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in topology.neighbors(u):
            if dist[w] < 0:
                dist[w] = dist[u] + 1
                queue.append(w)
    if min(dist) < 0:
        from repro.errors import TopologyError

        raise TopologyError("BFS tree of a disconnected topology")
    parent: list = [None] * n
    for v in topology.nodes:
        if v == root:
            continue
        parent[v] = min(
            w for w in topology.neighbors(v) if dist[w] == dist[v] - 1
        )
    tree = SpanningTree(root, parent)
    if ledger is not None:
        ledger.barrier_depth = tree.height
        rounds = tree.height + 1 if n > 1 else 0
        ledger.charge_phase("bfs-tree", rounds, 2 * topology.m if n > 1 else 0)
    return tree
