"""Immutable network topology used by the CONGEST simulator.

A :class:`Topology` is an undirected, connected graph on nodes
``0 .. n-1`` with optional integer edge weights.  It is the single
graph representation shared by the simulator, the shortcut machinery,
and the applications.  Edges are always stored in canonical
``(min(u, v), max(u, v))`` form; :func:`canonical_edge` converts.

The class is deliberately small and read-only: generators build a
topology once, and everything downstream treats it as a value.

Two construction paths exist, mirroring the ``engine=`` / ``kernel=``
split of the compute layers:

* the **reference** constructor (``Topology(n, edges, ...)``)
  canonicalises, deduplicates, and sorts arbitrary edge iterables —
  the validating front door for untrusted input;
* the **fast path** (:meth:`Topology.from_arrays` /
  :meth:`Topology.from_csr`) accepts pre-canonical sorted edge arrays
  from trusted generators and skips the sort/dedup work entirely.

Either way, the hash-based derived structures (the edge
``frozenset`` behind :meth:`has_edge` and the tuple-of-tuples
adjacency behind :meth:`neighbors`) are built lazily on first use, so
consumers that only ever touch the flat CSR arrays
(:mod:`repro.graphs.csr`) never pay for them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TopologyError

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of the edge ``{u, v}``."""
    if u == v:
        raise TopologyError(f"self-loop at node {u} is not a valid edge")
    return (u, v) if u < v else (v, u)


def _connected_union_find(n: int, edges: Sequence[Edge]) -> bool:
    """Whether the edge set spans one component (no adjacency needed)."""
    if n <= 1:
        return True
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    components = n
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            components -= 1
    return components == 1


class Topology:
    """An undirected, connected graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of node pairs.  Duplicates and orientation are
        normalised away; self-loops are rejected.
    weights:
        Optional mapping from canonical edges to integer weights.
        Missing edges default to weight ``1``.
    require_connected:
        When true (the default), reject disconnected graphs.  The
        CONGEST model in the paper assumes a connected network.
    """

    __slots__ = ("_n", "_edges", "_adj", "_weights", "_edge_set", "_kernels")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Dict[Edge, int]] = None,
        require_connected: bool = True,
    ) -> None:
        if n <= 0:
            raise TopologyError("a topology needs at least one node")
        canon = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"edge ({u}, {v}) out of range for n={n}")
            canon.add(canonical_edge(u, v))
        self._n = n
        # Lazy cache for derived flat-array structures (repro.graphs.csr).
        # The topology itself is immutable, so entries never invalidate.
        self._kernels: Dict[str, object] = {}
        self._edges: Tuple[Edge, ...] = tuple(sorted(canon))
        # Hash-based derived structures are built on demand only.
        self._edge_set: Optional[frozenset] = None
        self._adj: Optional[Tuple[Tuple[int, ...], ...]] = None
        if weights is not None:
            normalised = {}
            for (u, v), w in weights.items():
                e = canonical_edge(u, v)
                if e not in canon:
                    raise TopologyError(f"weight given for non-edge {e}")
                normalised[e] = int(w)
            self._weights: Optional[Dict[Edge, int]] = normalised
        else:
            self._weights = None
        if require_connected and not self._check_connected():
            raise TopologyError("topology is not connected")

    # ------------------------------------------------------------------
    # Fast-path constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        n: int,
        edges: Sequence[Edge],
        weights: Optional[Dict[Edge, int]] = None,
        require_connected: bool = True,
    ) -> "Topology":
        """Build from a **pre-canonical** edge array in one O(m) pass.

        ``edges`` must already be what the reference constructor would
        have produced: canonical ``(u, v)`` pairs with ``u < v``, in
        strictly increasing lexicographic order (hence deduplicated).
        A single linear validation scan enforces exactly that and
        raises :class:`TopologyError` otherwise, so a fast-path
        topology can never silently diverge from a reference one — but
        the sort, the dedup set, and the eager adjacency/frozenset
        builds are all skipped.

        ``weights`` keys are trusted to be canonical edges of the graph
        (generators derive them from the edge array itself); use the
        reference constructor or :meth:`with_weights` for unvalidated
        weight dicts.
        """
        if n <= 0:
            raise TopologyError("a topology needs at least one node")
        edge_tuple: Tuple[Edge, ...] = tuple(edges)
        prev_u, prev_v = -1, -1
        for u, v in edge_tuple:
            if not 0 <= u < v < n:
                raise TopologyError(
                    f"edge ({u}, {v}) is not canonical / in range for n={n}"
                )
            if (u, v) <= (prev_u, prev_v):
                raise TopologyError(
                    f"edge array not strictly sorted at ({u}, {v})"
                )
            prev_u, prev_v = u, v
        self = cls.__new__(cls)
        self._n = n
        self._kernels = {}
        self._edges = edge_tuple
        self._edge_set = None
        self._adj = None
        self._weights = (
            {e: int(w) for e, w in weights.items()} if weights is not None else None
        )
        if require_connected and not _connected_union_find(n, edge_tuple):
            raise TopologyError("topology is not connected")
        return self

    @classmethod
    def from_csr(
        cls,
        csr,
        weights: Optional[Dict[Edge, int]] = None,
        require_connected: bool = True,
    ) -> "Topology":
        """Build from an :class:`~repro.graphs.csr.AdjacencyCSR`.

        The canonical edge array is reconstructed from the ``u < v``
        adjacency slots (positions given by ``csr.edge_ids``), run
        through the :meth:`from_arrays` validation, and the CSR itself
        is seeded into the kernel cache so downstream consumers reuse
        it as-is.
        """
        recovered: List[Optional[Edge]] = [None] * csr.m
        indptr, indices, ids = csr.indptr, csr.indices, csr.edge_ids
        for v in range(csr.n):
            for k in range(indptr[v], indptr[v + 1]):
                w = indices[k]
                if v < w:
                    eid = ids[k]
                    if not 0 <= eid < csr.m:
                        raise TopologyError(
                            f"CSR edge id {eid} out of range for m={csr.m}"
                        )
                    recovered[eid] = (v, w)
        if any(edge is None for edge in recovered):
            raise TopologyError("CSR does not describe a canonical edge set")
        topology = cls.from_arrays(
            csr.n, recovered, weights=weights, require_connected=require_connected
        )
        topology._kernels["csr"] = csr
        return topology

    # ------------------------------------------------------------------
    # Lazy derived structures
    # ------------------------------------------------------------------

    def _edge_lookup(self) -> frozenset:
        """The edge frozenset, built on first membership query."""
        edge_set = self._edge_set
        if edge_set is None:
            edge_set = frozenset(self._edges)
            self._edge_set = edge_set
        return edge_set

    def _adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        """The tuple-of-tuples adjacency, built on first neighbor query.

        One append pass over the sorted canonical edge array yields
        each node's neighbors already in ascending order: a node's
        smaller neighbors arrive first (edges where it is the ``max``
        endpoint, ascending by the other end), then its larger
        neighbors (edges where it is the ``min`` endpoint, ascending).
        """
        adj = self._adj
        if adj is None:
            lists: List[List[int]] = [[] for _ in range(self._n)]
            for u, v in self._edges:
                lists[u].append(v)
                lists[v].append(u)
            adj = tuple(tuple(neighbors) for neighbors in lists)
            self._adj = adj
        return adj

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges in canonical, sorted order."""
        return self._edges

    @property
    def nodes(self) -> range:
        """The node identifiers ``0 .. n-1``."""
        return range(self._n)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of node ``v``."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return adj[v]

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        adj = self._adj
        if adj is None:
            adj = self._adjacency()
        return len(adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edge_lookup()

    @property
    def is_weighted(self) -> bool:
        """Whether explicit edge weights were provided."""
        return self._weights is not None

    def weight(self, u: int, v: int) -> int:
        """Weight of the edge ``{u, v}`` (default 1)."""
        e = canonical_edge(u, v)
        if e not in self._edge_lookup():
            raise TopologyError(f"no edge {e}")
        if self._weights is None:
            return 1
        return self._weights.get(e, 1)

    def with_weights(self, weights: Dict[Edge, int]) -> "Topology":
        """Return a copy of this topology carrying the given weights.

        The twin shares this topology's canonical edge array *and* its
        kernel cache (CSR structures depend only on the edge array), so
        attaching weights costs one pass over the weight dict instead
        of a full re-canonicalisation.
        """
        edge_set = self._edge_lookup()
        normalised: Dict[Edge, int] = {}
        for (u, v), w in weights.items():
            e = canonical_edge(u, v)
            if e not in edge_set:
                raise TopologyError(f"weight given for non-edge {e}")
            normalised[e] = int(w)
        twin = Topology.__new__(Topology)
        twin._n = self._n
        twin._edges = self._edges
        twin._edge_set = self._edge_set
        twin._adj = self._adj
        twin._weights = normalised
        # Shared on purpose: every cached kernel is a function of
        # (n, edges) only, so the weighted twin may reuse them all.
        twin._kernels = self._kernels
        return twin

    def delete_edges(
        self,
        failed: Iterable[Tuple[int, int]],
        *,
        require_connected: bool = False,
    ) -> "Topology":
        """Derive the surviving topology after an edge-failure set.

        The failure layer's fast path: one filter pass over the sorted
        canonical edge array (which therefore *stays* canonical and
        sorted — no re-validation scan, no re-sort), weights restricted
        to the survivors, and a **fresh** kernel cache.  Unlike
        :meth:`with_weights`, the survivor must not share this
        topology's ``_kernels`` / ``_edge_set`` / ``_adj``: every one of
        those is a function of the edge array, and the edge array just
        changed.

        Deleting an edge that is not in the graph raises
        :class:`TopologyError` (a failure scenario naming a non-edge is
        a bug in the scenario, not a no-op).

        ``require_connected`` defaults to **False** — failure scenarios
        that disconnect the graph are first-class; inspect the result
        via :meth:`components` / :attr:`is_connected` instead of
        catching an error.
        """
        edge_set = self._edge_lookup()
        doomed = set()
        for u, v in failed:
            e = canonical_edge(u, v)
            if e not in edge_set:
                raise TopologyError(f"cannot delete non-edge {e}")
            doomed.add(e)
        survivors: Tuple[Edge, ...] = tuple(
            e for e in self._edges if e not in doomed
        )
        twin = Topology.__new__(Topology)
        twin._n = self._n
        twin._edges = survivors
        # NOT shared (unlike with_weights): the edge array differs, so
        # every derived structure must be rebuilt on demand.
        twin._edge_set = None
        twin._adj = None
        twin._kernels = {}
        if self._weights is None:
            twin._weights = None
        else:
            twin._weights = {
                e: w for e, w in self._weights.items() if e not in doomed
            }
        if require_connected and not twin._check_connected():
            raise TopologyError(
                f"deleting {len(doomed)} edges disconnects the topology"
            )
        return twin

    def delete_edge_ids(self, doomed_ids: Iterable[int]) -> "Topology":
        """Survivor after deleting edges by *index* into :attr:`edges`.

        The id-native twin of :meth:`delete_edges`, for callers that
        have already resolved a failure set to edge ids — e.g. the
        batched scenario sweep (:func:`repro.failures.scenarios.survivors_batch`),
        which validates a whole scenario grid against the sorted edge-key
        array in one ``searchsorted``.  The survivor is field-identical
        to the :meth:`delete_edges` twin: the same order-preserving
        canonical edge tuple, weights restricted in the same insertion
        order, and a fresh kernel cache.
        """
        doomed = set()
        for raw in doomed_ids:
            index = int(raw)
            if not 0 <= index < len(self._edges):
                raise TopologyError(
                    f"cannot delete edge id {index} of {len(self._edges)}"
                )
            doomed.add(index)
        survivors: Tuple[Edge, ...] = tuple(
            e for i, e in enumerate(self._edges) if i not in doomed
        )
        twin = Topology.__new__(Topology)
        twin._n = self._n
        twin._edges = survivors
        twin._edge_set = None
        twin._adj = None
        twin._kernels = {}
        if self._weights is None:
            twin._weights = None
        else:
            doomed_edges = {self._edges[i] for i in doomed}
            twin._weights = {
                e: w
                for e, w in self._weights.items()
                if e not in doomed_edges
            }
        return twin

    # ------------------------------------------------------------------
    # Connectivity structure
    # ------------------------------------------------------------------

    def components(self) -> Tuple[Tuple[int, ...], ...]:
        """The connected components as sorted node tuples (cached).

        Components are ordered by their minimum node id; a connected
        topology has exactly one.  This is the explicit,
        non-exceptional way to observe disconnection (e.g. after
        :meth:`delete_edges`): layers that need a connected graph check
        :attr:`is_connected` and report the components instead of
        failing deep inside a BFS.
        """
        cached = self._kernels.get("components")
        if cached is None:
            n = self._n
            parent = list(range(n))

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            for u, v in self._edges:
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[ru] = rv
            groups: Dict[int, List[int]] = {}
            for v in range(n):
                groups.setdefault(find(v), []).append(v)
            cached = tuple(
                tuple(members)
                for members in sorted(groups.values(), key=lambda ms: ms[0])
            )
            self._kernels["components"] = cached
        return cached

    @property
    def is_connected(self) -> bool:
        """Whether the graph is connected (component count is one)."""
        return len(self.components()) == 1

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def bfs_distances(self, source: int) -> List[int]:
        """Unweighted distances from ``source``; ``-1`` for unreachable."""
        adj = self._adjacency()
        dist = [-1] * self._n
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            du = dist[u]
            for w in adj[u]:
                if dist[w] < 0:
                    dist[w] = du + 1
                    queue.append(w)
        return dist

    def eccentricity(self, source: int) -> int:
        """Largest distance from ``source`` to any node."""
        dist = self.bfs_distances(source)
        if min(dist) < 0:
            raise TopologyError("eccentricity undefined on disconnected graph")
        return max(dist)

    def diameter(self, exact: Optional[bool] = None) -> int:
        """Diameter of the graph.

        With ``exact=True`` (or ``None`` and ``n <= 2048``), runs a BFS
        from every node.  Otherwise uses a double-sweep: the result is
        a lower bound that is exact on trees and very tight on the
        mesh-like topologies used in this repository.
        """
        if exact is None:
            exact = self._n <= 2048
        if exact:
            return max(self.eccentricity(v) for v in range(self._n))
        far = max(range(self._n), key=lambda v: self.bfs_distances(0)[v])
        return self.eccentricity(far)

    def _check_connected(self) -> bool:
        return _connected_union_find(self._n, self._edges)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    @classmethod
    def from_networkx(cls, graph, weight_attr: str = "weight") -> "Topology":
        """Build a topology from a ``networkx`` graph.

        Node labels are relabelled to ``0 .. n-1`` in sorted order (or
        insertion order when labels are not sortable).  Edge weights
        are taken from ``weight_attr`` when present on every edge.
        """
        nodes = list(graph.nodes())
        try:
            nodes.sort()
        except TypeError:
            pass
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        weights = None
        if all(weight_attr in data for _, _, data in graph.edges(data=True)):
            if graph.number_of_edges() > 0:
                weights = {
                    canonical_edge(index[u], index[v]): int(data[weight_attr])
                    for u, v, data in graph.edges(data=True)
                }
        return cls(len(nodes), edges, weights=weights)

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with ``weight`` attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for u, v in self._edges:
            graph.add_edge(u, v, weight=self.weight(u, v))
        return graph

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        tag = "weighted" if self.is_weighted else "unweighted"
        return f"Topology(n={self._n}, m={self.m}, {tag})"


def component_subtopologies(
    topology: Topology,
) -> List[Tuple[Topology, Tuple[int, ...]]]:
    """Split a (possibly disconnected) topology into standalone pieces.

    Returns one ``(subtopology, nodes)`` pair per connected component,
    in :meth:`Topology.components` order; ``nodes[local]`` is the global
    id of the component's local node ``local``.  Each piece is built
    array-natively: the global canonical edge array is dispatched in a
    single pass, and because the per-component node tuples are ascending
    the relabelling is monotone — each piece's edge list comes out
    already canonical and sorted, so :meth:`Topology.from_arrays` gets a
    trusted input (connectivity of each piece holds by construction and
    is not re-checked).  Weights are carried over per surviving edge.

    This is the shared substrate of the components-aware application
    results (MST forest, per-component connectivity): run the connected
    algorithm on each piece, then map node ids back through ``nodes``.
    """
    components = topology.components()
    if len(components) == 1:
        return [(topology, tuple(range(topology.n)))]
    local = [-1] * topology.n
    comp_of = [-1] * topology.n
    for index, members in enumerate(components):
        for i, v in enumerate(members):
            local[v] = i
            comp_of[v] = index
    edge_lists: List[List[Edge]] = [[] for _ in components]
    weight_dicts: List[Optional[Dict[Edge, int]]] = [
        {} if topology.is_weighted else None for _ in components
    ]
    for u, v in topology.edges:
        index = comp_of[u]
        e = (local[u], local[v])
        edge_lists[index].append(e)
        weights = weight_dicts[index]
        if weights is not None:
            weights[e] = topology.weight(u, v)
    return [
        (
            Topology.from_arrays(
                len(members),
                edge_lists[index],
                weights=weight_dicts[index],
                require_connected=False,
            ),
            members,
        )
        for index, members in enumerate(components)
    ]
