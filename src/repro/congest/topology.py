"""Immutable network topology used by the CONGEST simulator.

A :class:`Topology` is an undirected, connected graph on nodes
``0 .. n-1`` with optional integer edge weights.  It is the single
graph representation shared by the simulator, the shortcut machinery,
and the applications.  Edges are always stored in canonical
``(min(u, v), max(u, v))`` form; :func:`canonical_edge` converts.

The class is deliberately small and read-only: generators build a
topology once, and everything downstream treats it as a value.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TopologyError

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of the edge ``{u, v}``."""
    if u == v:
        raise TopologyError(f"self-loop at node {u} is not a valid edge")
    return (u, v) if u < v else (v, u)


class Topology:
    """An undirected, connected graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of node pairs.  Duplicates and orientation are
        normalised away; self-loops are rejected.
    weights:
        Optional mapping from canonical edges to integer weights.
        Missing edges default to weight ``1``.
    require_connected:
        When true (the default), reject disconnected graphs.  The
        CONGEST model in the paper assumes a connected network.
    """

    __slots__ = ("_n", "_edges", "_adj", "_weights", "_edge_set", "_kernels")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Dict[Edge, int]] = None,
        require_connected: bool = True,
    ) -> None:
        if n <= 0:
            raise TopologyError("a topology needs at least one node")
        canon = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"edge ({u}, {v}) out of range for n={n}")
            canon.add(canonical_edge(u, v))
        self._n = n
        # Lazy cache for derived flat-array structures (repro.graphs.csr).
        # The topology itself is immutable, so entries never invalidate.
        self._kernels: Dict[str, object] = {}
        self._edges: Tuple[Edge, ...] = tuple(sorted(canon))
        self._edge_set = frozenset(self._edges)
        adj: List[List[int]] = [[] for _ in range(n)]
        for u, v in self._edges:
            adj[u].append(v)
            adj[v].append(u)
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in adj
        )
        if weights is not None:
            normalised = {}
            for (u, v), w in weights.items():
                e = canonical_edge(u, v)
                if e not in self._edge_set:
                    raise TopologyError(f"weight given for non-edge {e}")
                normalised[e] = int(w)
            self._weights: Optional[Dict[Edge, int]] = normalised
        else:
            self._weights = None
        if require_connected and not self._check_connected():
            raise TopologyError("topology is not connected")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges in canonical, sorted order."""
        return self._edges

    @property
    def nodes(self) -> range:
        """The node identifiers ``0 .. n-1``."""
        return range(self._n)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of node ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edge_set

    @property
    def is_weighted(self) -> bool:
        """Whether explicit edge weights were provided."""
        return self._weights is not None

    def weight(self, u: int, v: int) -> int:
        """Weight of the edge ``{u, v}`` (default 1)."""
        e = canonical_edge(u, v)
        if e not in self._edge_set:
            raise TopologyError(f"no edge {e}")
        if self._weights is None:
            return 1
        return self._weights.get(e, 1)

    def with_weights(self, weights: Dict[Edge, int]) -> "Topology":
        """Return a copy of this topology carrying the given weights."""
        return Topology(self._n, self._edges, weights=weights)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def bfs_distances(self, source: int) -> List[int]:
        """Unweighted distances from ``source``; ``-1`` for unreachable."""
        dist = [-1] * self._n
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            du = dist[u]
            for w in self._adj[u]:
                if dist[w] < 0:
                    dist[w] = du + 1
                    queue.append(w)
        return dist

    def eccentricity(self, source: int) -> int:
        """Largest distance from ``source`` to any node."""
        dist = self.bfs_distances(source)
        if min(dist) < 0:
            raise TopologyError("eccentricity undefined on disconnected graph")
        return max(dist)

    def diameter(self, exact: Optional[bool] = None) -> int:
        """Diameter of the graph.

        With ``exact=True`` (or ``None`` and ``n <= 2048``), runs a BFS
        from every node.  Otherwise uses a double-sweep: the result is
        a lower bound that is exact on trees and very tight on the
        mesh-like topologies used in this repository.
        """
        if exact is None:
            exact = self._n <= 2048
        if exact:
            return max(self.eccentricity(v) for v in range(self._n))
        far = max(range(self._n), key=lambda v: self.bfs_distances(0)[v])
        return self.eccentricity(far)

    def _check_connected(self) -> bool:
        return min(self.bfs_distances(0)) >= 0 if self._n > 1 else True

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    @classmethod
    def from_networkx(cls, graph, weight_attr: str = "weight") -> "Topology":
        """Build a topology from a ``networkx`` graph.

        Node labels are relabelled to ``0 .. n-1`` in sorted order (or
        insertion order when labels are not sortable).  Edge weights
        are taken from ``weight_attr`` when present on every edge.
        """
        nodes = list(graph.nodes())
        try:
            nodes.sort()
        except TypeError:
            pass
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        weights = None
        if all(weight_attr in data for _, _, data in graph.edges(data=True)):
            if graph.number_of_edges() > 0:
                weights = {
                    canonical_edge(index[u], index[v]): int(data[weight_attr])
                    for u, v, data in graph.edges(data=True)
                }
        return cls(len(nodes), edges, weights=weights)

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with ``weight`` attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for u, v in self._edges:
            graph.add_edge(u, v, weight=self.weight(u, v))
        return graph

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        tag = "weighted" if self.is_weighted else "unweighted"
        return f"Topology(n={self._n}, m={self.m}, {tag})"
