"""Synthetic CONGEST workloads for engine benchmarking and testing.

These node programs generate traffic patterns that stress specific
engine paths rather than computing anything paper-related:

* :class:`FloodAlgorithm` — every node broadcasts every round
  (broadcast fan-out, inbox batching: the message-throughput ceiling).
* :class:`NeighborScanAlgorithm` — per-neighbor distinct payloads
  (the individual ``send`` validation path; cannot use broadcast).
* :class:`AlarmStormAlgorithm` — sparse periodic wake-ups with long
  idle gaps (the alarm heap and idle-round skipping).
* :class:`TokenWalkAlgorithm` — a seeded pseudo-random token walk
  (per-node RNG determinism across engines).

``benchmarks/bench_e14_engine.py`` times them on both engines, and the
differential suites replay them to assert engine equivalence.
"""

from __future__ import annotations

from repro.congest.algorithm import NodeAlgorithm


class FloodAlgorithm(NodeAlgorithm):
    """Every node broadcasts a small payload each round until ``rounds``."""

    name = "flood"

    def __init__(self, rounds: int):
        super().__init__()
        self.rounds = rounds

    def on_start(self, node) -> None:
        node.state.seen = 0
        node.broadcast(("f", node.id & 63))

    def on_round(self, node, messages) -> None:
        node.state.seen += len(messages)
        if node.round < self.rounds:
            node.broadcast(("f", node.id & 63))


class NeighborScanAlgorithm(NodeAlgorithm):
    """Per-neighbor distinct payloads: stresses the single-send path."""

    name = "neighbor-scan"

    def __init__(self, rounds: int):
        super().__init__()
        self.rounds = rounds

    def on_start(self, node) -> None:
        node.state.acc = 0
        for index, neighbor in enumerate(node.neighbors):
            node.send(neighbor, ("s", index))

    def on_round(self, node, messages) -> None:
        for _sender, payload in messages:
            node.state.acc += payload[1]
        if node.round < self.rounds:
            for index, neighbor in enumerate(node.neighbors):
                node.send(neighbor, ("s", index))


class AlarmStormAlgorithm(NodeAlgorithm):
    """Sparse periodic wake-ups: stresses alarms and idle-gap skipping.

    Node ``v`` wakes every ``period + (v % jitter)`` rounds, ``ticks``
    times, pinging one neighbor on each wake-up.
    """

    name = "alarm-storm"

    def __init__(self, period: int, ticks: int, jitter: int = 7):
        super().__init__()
        self.period = period
        self.ticks = ticks
        self.jitter = jitter

    def _period(self, node) -> int:
        return self.period + (node.id % self.jitter)

    def on_start(self, node) -> None:
        node.state.ticks = 0
        node.state.pings = 0
        node.wake_after(self._period(node))

    def on_round(self, node, messages) -> None:
        node.state.pings += len(messages)
        fired = node.state.ticks < self.ticks and node.round % self._period(node) == 0
        if fired:
            node.state.ticks += 1
            target = node.neighbors[node.state.ticks % node.degree]
            node.send(target, ("p", node.state.ticks))
            if node.state.ticks < self.ticks:
                node.wake_after(self._period(node))


class TokenWalkAlgorithm(NodeAlgorithm):
    """A token walks ``steps`` hops following each node's private RNG."""

    name = "token-walk"

    def __init__(self, steps: int, start: int = 0):
        super().__init__()
        self.steps = steps
        self.start = start

    def on_start(self, node) -> None:
        node.state.visits = 0
        if node.id == self.start and self.steps > 0:
            self._forward(node, self.steps)

    def on_round(self, node, messages) -> None:
        for _sender, payload in messages:
            node.state.visits += 1
            if payload[1] > 0:
                self._forward(node, payload[1])

    def _forward(self, node, remaining: int) -> None:
        target = node.neighbors[node.random.randrange(node.degree)]
        node.send(target, ("t", remaining - 1))
