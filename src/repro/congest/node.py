"""Per-node API exposed to CONGEST node programs.

A :class:`NodeHandle` is the only object a :class:`~repro.congest.algorithm.
NodeAlgorithm` touches.  It exposes exactly the local knowledge the
CONGEST model grants a node — its identifier, its incident edges — plus
the actions available in a synchronous round: sending one message per
incident edge, scheduling a wake-up, and halting.
"""

from __future__ import annotations

import random
from types import SimpleNamespace
from typing import Any, Tuple

from repro.errors import SimulationError


class NodeHandle:
    """Local view and action interface of a single network node."""

    __slots__ = ("id", "neighbors", "state", "random", "_sim", "_halted")

    def __init__(self, node_id: int, neighbors: Tuple[int, ...], sim, rng_seed: int):
        self.id = node_id
        self.neighbors = neighbors
        self.state = SimpleNamespace()
        self.random = random.Random(rng_seed)
        self._sim = sim
        self._halted = False

    # ------------------------------------------------------------------
    # Round context
    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        """The current round number (0 is the start-up round)."""
        return self._sim.current_round

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        """Whether this node has halted."""
        return self._halted

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def send(self, to: int, payload: Any) -> None:
        """Send one message over the edge to neighbor ``to``.

        The message is delivered at the start of the next round.  At
        most one message per neighbor per round is allowed, and the
        payload must fit in O(log n) bits.
        """
        if self._halted:
            raise SimulationError(f"halted node {self.id} tried to send")
        self._sim.queue_message(self.id, to, payload)

    def broadcast(self, payload: Any) -> None:
        """Send the same message to every neighbor."""
        if self._halted:
            raise SimulationError(f"halted node {self.id} tried to send")
        self._sim.queue_broadcast(self.id, payload)

    def wake_at(self, round_number: int) -> None:
        """Schedule this node to be activated in the given future round."""
        self._sim.schedule_wakeup(self.id, round_number)

    def wake_after(self, delay: int) -> None:
        """Schedule this node to be activated ``delay`` rounds from now."""
        if delay <= 0:
            raise SimulationError("wake_after requires a positive delay")
        self._sim.schedule_wakeup(self.id, self._sim.current_round + delay)

    def halt(self) -> None:
        """Stop participating.  A halted node never runs again."""
        self._halted = True

    def __repr__(self) -> str:
        return f"NodeHandle(id={self.id}, degree={self.degree})"
