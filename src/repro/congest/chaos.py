"""Chaos-differential harness for the unreliable CONGEST stack.

The contract under test — the whole point of
:mod:`repro.congest.faults` + :mod:`repro.congest.reliable` — is:

    **every** seeded fault schedule yields a reliable run whose inner
    states are bit-identical to the fault-free reference, **or** a
    declared :class:`~repro.errors.DetectedFailure`.  Silent wrongness
    is a :class:`ChaosViolation`.

:func:`run_congest_chaos` sweeps a grid of graph families × drop rates
× seeds (plus crash-stop cells), runs the fault-free reference and the
reliable faulted run for each cell, and compares final states
field-for-field.  The module doubles as the CI smoke matrix::

    python -m repro.congest.chaos --seeds 3 --rates 0.02,0.05,0.1

exits non-zero on any violation, so a regression in the fault layer,
the delivery seam, or the retransmission protocol fails the build.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.congest.faults import FaultPlan
from repro.congest.randomness import mix
from repro.congest.reliable import run_reliably
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology
from repro.congest.workloads import (
    AlarmStormAlgorithm,
    FloodAlgorithm,
    TokenWalkAlgorithm,
)
from repro.errors import DetectedFailure
from repro.graphs import generators

CHAOS_SALT = 0xC6A5


class ChaosViolation(AssertionError):
    """A reliable run silently diverged from the fault-free reference."""


def _delaunay(n: int) -> Topology:
    return generators.delaunay(n, seed=11)


CHAOS_FAMILIES: Dict[str, Callable[[], Topology]] = {
    "grid": lambda: generators.grid(6, 6),
    "torus": lambda: generators.torus(6, 6),
    "hub": lambda: generators.cycle_with_hub(24, 3),
    "delaunay": lambda: _delaunay(32),
}

CHAOS_WORKLOADS: Dict[str, Callable[[], object]] = {
    "flood": lambda: FloodAlgorithm(rounds=5),
    "token": lambda: TokenWalkAlgorithm(steps=10),
    "alarm": lambda: AlarmStormAlgorithm(period=3, ticks=3),
}

DEFAULT_RATES: Tuple[float, ...] = (0.02, 0.05, 0.1)


@dataclass(frozen=True)
class ChaosCell:
    """One (family, workload, plan, seed) execution of the contract."""

    family: str
    workload: str
    plan: str
    seed: int
    outcome: str  # "identical" | "detected"
    reference_rounds: int
    physical_rounds: int
    overhead: float
    prods: int
    detail: str = ""


@dataclass
class ChaosReport:
    """Aggregated sweep outcome (violations raise, they never land here)."""

    cells: List[ChaosCell] = field(default_factory=list)

    @property
    def identical(self) -> int:
        return sum(1 for c in self.cells if c.outcome == "identical")

    @property
    def detected(self) -> int:
        return sum(1 for c in self.cells if c.outcome == "detected")

    def summary(self) -> str:
        lines = [
            f"{len(self.cells)} cells: {self.identical} bit-identical, "
            f"{self.detected} declared detections, 0 silent divergences"
        ]
        worst = sorted(
            (c for c in self.cells if c.outcome == "identical"),
            key=lambda c: -c.overhead,
        )[:3]
        for cell in worst:
            lines.append(
                f"  worst overhead {cell.overhead:.2f}x: {cell.family}/"
                f"{cell.workload} seed={cell.seed} [{cell.plan}]"
            )
        return "\n".join(lines)


def _diff_states(reference, recovered, nodes: Iterable[int]) -> Optional[str]:
    for v in nodes:
        ref_vars = vars(reference.states[v])
        got_vars = vars(recovered.states[v])
        if ref_vars != got_vars:
            keys = {
                k
                for k in set(ref_vars) | set(got_vars)
                if ref_vars.get(k, "<missing>") != got_vars.get(k, "<missing>")
            }
            return f"node {v} fields {sorted(keys)}: {ref_vars} != {got_vars}"
    return None


def run_cell(
    family: str,
    workload: str,
    plan: FaultPlan,
    *,
    seed: int,
    max_retries: int = 12,
) -> ChaosCell:
    """Run one chaos cell and enforce the identical-or-detected contract."""
    topology = CHAOS_FAMILIES[family]()
    make = CHAOS_WORKLOADS[workload]
    reference = Simulator(topology, make(), seed=seed).run()
    try:
        recovered = run_reliably(
            topology,
            make(),
            horizon=reference.rounds,
            seed=seed,
            faults=plan,
            max_retries=max_retries,
        )
    except DetectedFailure as error:
        return ChaosCell(
            family=family,
            workload=workload,
            plan=plan.describe(),
            seed=seed,
            outcome="detected",
            reference_rounds=reference.rounds,
            physical_rounds=0,
            overhead=0.0,
            prods=0,
            detail=str(error)[:160],
        )
    divergence = _diff_states(reference, recovered, topology.nodes)
    if divergence is not None:
        raise ChaosViolation(
            f"silent divergence in {family}/{workload} seed={seed} under "
            f"[{plan.describe()}]: {divergence}"
        )
    return ChaosCell(
        family=family,
        workload=workload,
        plan=plan.describe(),
        seed=seed,
        outcome="identical",
        reference_rounds=reference.rounds,
        physical_rounds=recovered.rounds,
        overhead=recovered.overhead,
        prods=recovered.prods,
    )


def _transport_plan(seed: int, rate: float) -> FaultPlan:
    """The standard chaos mix at a given base drop rate."""
    return FaultPlan(
        seed=seed,
        p_drop=rate,
        p_duplicate=rate / 2,
        p_delay=rate / 2,
        max_delay=3,
        p_reorder=0.2,
    )


def _crash_plan(seed: int, topology_size: int, rate: float) -> FaultPlan:
    """A transport plan plus one seeded crash-stop node."""
    node = mix(seed, CHAOS_SALT, 1) % topology_size
    crash_round = 1 + mix(seed, CHAOS_SALT, 2) % 4
    return FaultPlan(
        seed=seed,
        p_drop=rate,
        crashes=((node, crash_round),),
    )


def run_congest_chaos(
    *,
    seeds: Sequence[int] = tuple(range(5)),
    rates: Sequence[float] = DEFAULT_RATES,
    families: Sequence[str] = ("grid", "torus", "hub"),
    workloads: Sequence[str] = ("flood", "token"),
    include_crashes: bool = True,
    max_retries: int = 12,
) -> ChaosReport:
    """Sweep the chaos grid; raise :class:`ChaosViolation` on divergence.

    Every cell must end bit-identical or with a declared detection.
    Crash cells additionally assert the *detection* side actually
    fires: a crash-stop schedule must never produce an "identical"
    run that quietly ignored the dead node.
    """
    report = ChaosReport()
    for family in families:
        if family not in CHAOS_FAMILIES:
            raise ValueError(f"unknown chaos family {family!r}")
        for workload in workloads:
            if workload not in CHAOS_WORKLOADS:
                raise ValueError(f"unknown chaos workload {workload!r}")
            for rate in rates:
                for seed in seeds:
                    cell_seed = mix(seed, CHAOS_SALT) & 0xFFFF
                    plan = _transport_plan(cell_seed, rate)
                    report.cells.append(
                        run_cell(
                            family,
                            workload,
                            plan,
                            seed=seed,
                            max_retries=max_retries,
                        )
                    )
            if include_crashes:
                for seed in seeds:
                    topology = CHAOS_FAMILIES[family]()
                    plan = _crash_plan(
                        mix(seed, CHAOS_SALT) & 0xFFFF, topology.n, rates[0]
                    )
                    cell = run_cell(
                        family, workload, plan, seed=seed, max_retries=6
                    )
                    if cell.outcome != "detected":
                        raise ChaosViolation(
                            f"crash-stop plan [{plan.describe()}] on "
                            f"{family}/{workload} seed={seed} was not "
                            f"detected (outcome: {cell.outcome})"
                        )
                    report.cells.append(cell)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos-differential smoke matrix for the fault stack"
    )
    parser.add_argument("--seeds", type=int, default=5, metavar="N",
                        help="number of seeds per cell (default 5)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (CI shards the matrix by base)")
    parser.add_argument("--rates", type=str, default="0.02,0.05,0.1",
                        help="comma-separated drop rates")
    parser.add_argument("--families", type=str, default="grid,torus,hub",
                        help=f"comma-separated families from "
                             f"{sorted(CHAOS_FAMILIES)}")
    parser.add_argument("--workloads", type=str, default="flood,token",
                        help=f"comma-separated workloads from "
                             f"{sorted(CHAOS_WORKLOADS)}")
    parser.add_argument("--no-crashes", action="store_true",
                        help="skip the crash-stop detection cells")
    args = parser.parse_args(argv)

    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    rates = tuple(float(r) for r in args.rates.split(",") if r)
    families = tuple(f for f in args.families.split(",") if f)
    workloads = tuple(w for w in args.workloads.split(",") if w)
    try:
        report = run_congest_chaos(
            seeds=seeds,
            rates=rates,
            families=families,
            workloads=workloads,
            include_crashes=not args.no_crashes,
        )
    except ChaosViolation as violation:
        print(f"CHAOS VIOLATION: {violation}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
