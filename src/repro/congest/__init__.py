"""CONGEST-model substrate: topology, simulator, and standard subroutines.

This package is the distributed-computing substrate the paper assumes:
a synchronous message-passing network where each node sends at most one
O(log n)-bit message per incident edge per round.  Algorithms are
written as :class:`~repro.congest.algorithm.NodeAlgorithm` subclasses
and executed by :class:`~repro.congest.simulator.Simulator`, whose
round counts are the quantity every experiment in this repository
measures.
"""

from repro.congest.topology import Edge, Topology, canonical_edge
from repro.congest.message import bandwidth_limit, check_message, message_bits
from repro.congest.node import NodeHandle
from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import (
    ENGINES,
    BatchedEngine,
    EngineBase,
    ReferenceEngine,
    engine_parameter,
    get_default_engine,
    resolve_engine,
    set_default_engine,
    using_engine,
)
from repro.congest.simulator import RunResult, Simulator, run_algorithm
from repro.congest.faults import (
    FaultPlan,
    FaultStats,
    FaultyEngine,
    faults_parameter,
    get_default_faults,
    set_default_faults,
    using_faults,
)
from repro.congest.reliable import ReliableRunResult, run_reliably
from repro.congest.trace import PhaseRecord, RoundLedger
from repro.congest.bfs import BFSTreeAlgorithm, build_bfs_tree
from repro.congest.randomness import (
    SeedBroadcastAlgorithm,
    coin,
    mix,
    part_coin,
    share_randomness,
)

__all__ = [
    "Edge",
    "Topology",
    "canonical_edge",
    "bandwidth_limit",
    "check_message",
    "message_bits",
    "NodeHandle",
    "NodeAlgorithm",
    "ENGINES",
    "EngineBase",
    "engine_parameter",
    "ReferenceEngine",
    "BatchedEngine",
    "get_default_engine",
    "set_default_engine",
    "using_engine",
    "resolve_engine",
    "RunResult",
    "Simulator",
    "run_algorithm",
    "FaultPlan",
    "FaultStats",
    "FaultyEngine",
    "faults_parameter",
    "get_default_faults",
    "set_default_faults",
    "using_faults",
    "ReliableRunResult",
    "run_reliably",
    "PhaseRecord",
    "RoundLedger",
    "BFSTreeAlgorithm",
    "build_bfs_tree",
    "SeedBroadcastAlgorithm",
    "coin",
    "mix",
    "part_coin",
    "share_randomness",
]
