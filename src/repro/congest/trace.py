"""Round accounting across multi-phase algorithms.

The constructions in the paper are compositions of node programs (BFS
tree, then CoreFast, then Verification, repeated …).  Standard CONGEST
accounting composes phases sequentially and charges a synchronisation
barrier between them: termination is detected by a convergecast up the
global BFS tree followed by a broadcast of the go-signal, costing
``2 * depth(T) + 1`` rounds.  :class:`RoundLedger` records each phase's
simulated rounds and message counts together with these barrier
charges, so every experiment can report both the raw simulated rounds
and the barrier-inclusive total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class PhaseRecord:
    """Rounds and messages consumed by one named phase."""

    name: str
    rounds: int
    messages: int
    barrier_rounds: int = 0


@dataclass
class RoundLedger:
    """Accumulates per-phase costs of a composed distributed algorithm."""

    barrier_depth: int = 0
    records: List[PhaseRecord] = field(default_factory=list)

    def charge(self, name: str, rounds: int, messages: int = 0) -> None:
        """Record a phase with an explicit round count (no barrier)."""
        self.records.append(PhaseRecord(name, rounds, messages, 0))

    def charge_phase(self, name: str, rounds: int, messages: int = 0) -> None:
        """Record a phase followed by a synchronisation barrier."""
        barrier = 2 * self.barrier_depth + 1
        self.records.append(PhaseRecord(name, rounds, messages, barrier))

    def merge(self, other: "RoundLedger", prefix: str = "") -> None:
        """Absorb another ledger's records (optionally name-prefixed)."""
        for record in other.records:
            self.records.append(
                PhaseRecord(
                    prefix + record.name,
                    record.rounds,
                    record.messages,
                    record.barrier_rounds,
                )
            )

    @property
    def total_rounds(self) -> int:
        """Sum of phase rounds including barrier charges."""
        return sum(r.rounds + r.barrier_rounds for r in self.records)

    @property
    def simulated_rounds(self) -> int:
        """Sum of phase rounds excluding barrier charges."""
        return sum(r.rounds for r in self.records)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.records)

    def summary(self) -> str:
        """Human-readable multi-line cost breakdown."""
        lines = [f"{'phase':<40} {'rounds':>8} {'barrier':>8} {'messages':>10}"]
        for record in self.records:
            lines.append(
                f"{record.name:<40} {record.rounds:>8} "
                f"{record.barrier_rounds:>8} {record.messages:>10}"
            )
        lines.append(
            f"{'TOTAL':<40} {self.simulated_rounds:>8} "
            f"{self.total_rounds - self.simulated_rounds:>8} "
            f"{self.total_messages:>10}"
        )
        return "\n".join(lines)
