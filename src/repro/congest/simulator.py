"""Synchronous CONGEST round simulator.

The simulator executes a :class:`~repro.congest.algorithm.NodeAlgorithm`
on a :class:`~repro.congest.topology.Topology` under the CONGEST rules:

* time advances in synchronous rounds;
* per round, each node may send at most one message per incident edge
  per direction;
* each message must fit in ``O(log n)`` bits (audited by
  :mod:`repro.congest.message`);
* messages sent in round ``r`` are delivered at the start of round
  ``r + 1``.

Scheduling is event-driven: a node runs in a round only if it received
messages or scheduled a wake-up, and stretches of rounds in which no
node acts are skipped in O(1) time — but still *counted*, because round
complexity is the quantity this whole repository measures.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.message import bandwidth_limit, check_message
from repro.congest.node import NodeHandle
from repro.congest.topology import Topology, canonical_edge
from repro.errors import RoundLimitExceededError, SimulationError


class RunResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    rounds:
        Number of communication rounds consumed (the index of the last
        round in which any node acted or any message was delivered).
    messages:
        Total number of messages delivered.
    states:
        Mapping ``node_id -> SimpleNamespace`` with each node's final
        state (the algorithm's outputs).
    edge_traffic:
        When tracing is enabled, mapping ``edge -> message count``.
    dropped_to_halted:
        Messages that arrived at an already-halted node (a well-formed
        protocol keeps this at zero; tests assert on it).
    """

    __slots__ = ("rounds", "messages", "states", "edge_traffic", "dropped_to_halted")

    def __init__(self, rounds, messages, states, edge_traffic, dropped_to_halted):
        self.rounds = rounds
        self.messages = messages
        self.states = states
        self.edge_traffic = edge_traffic
        self.dropped_to_halted = dropped_to_halted

    def __repr__(self) -> str:
        return f"RunResult(rounds={self.rounds}, messages={self.messages})"


class Simulator:
    """Executes one node program over a topology.

    Parameters
    ----------
    topology:
        The network.
    algorithm:
        The node program (one instance drives every node).
    seed:
        Seed for the per-node pseudo-random generators.  Two runs with
        the same seed are bit-for-bit identical.
    check_bandwidth:
        Audit every payload against the O(log n)-bit budget.
    bandwidth_bits:
        Override the default budget from :func:`bandwidth_limit`.
    max_rounds:
        Watchdog; exceeded means the protocol failed to terminate.
    trace_edges:
        Record per-edge message counts (used by congestion analyses).
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: NodeAlgorithm,
        *,
        seed: int = 0,
        check_bandwidth: bool = True,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
        trace_edges: bool = False,
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.seed = seed
        self.check_bandwidth = check_bandwidth
        self.bandwidth_bits = (
            bandwidth_bits if bandwidth_bits is not None else bandwidth_limit(topology.n)
        )
        self.max_rounds = max_rounds
        self.trace_edges = trace_edges

        self.current_round = 0
        self._nodes: List[NodeHandle] = [
            NodeHandle(v, topology.neighbors(v), self, (seed << 20) ^ (v * 2654435761))
            for v in topology.nodes
        ]
        # Messages queued during the current round, delivered next round.
        self._outgoing: List[Tuple[int, int, Any]] = []
        self._sent_pairs: Set[Tuple[int, int]] = set()
        self._neighbor_sets = [set(topology.neighbors(v)) for v in topology.nodes]
        self._alarm_heap: List[int] = []
        self._alarms: Dict[int, Set[int]] = {}
        self._messages_delivered = 0
        self._dropped_to_halted = 0
        self._edge_traffic: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Callbacks used by NodeHandle
    # ------------------------------------------------------------------

    def queue_message(self, sender: int, to: int, payload: Any) -> None:
        """Queue a message for next-round delivery, enforcing the model."""
        if to not in self._neighbor_sets[sender]:
            raise SimulationError(
                f"node {sender} tried to send to non-neighbor {to}"
            )
        pair = (sender, to)
        if pair in self._sent_pairs:
            raise SimulationError(
                f"node {sender} sent two messages to {to} in round "
                f"{self.current_round}"
            )
        if self.check_bandwidth:
            check_message(payload, self.bandwidth_bits)
        self._sent_pairs.add(pair)
        self._outgoing.append((sender, to, payload))

    def schedule_wakeup(self, node_id: int, round_number: int) -> None:
        """Register a future wake-up for a node."""
        if round_number <= self.current_round:
            raise SimulationError(
                f"wake-up for node {node_id} at round {round_number} is not "
                f"in the future (current round {self.current_round})"
            )
        bucket = self._alarms.get(round_number)
        if bucket is None:
            bucket = set()
            self._alarms[round_number] = bucket
            heapq.heappush(self._alarm_heap, round_number)
        bucket.add(node_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the algorithm until quiescence and return the result."""
        algorithm = self.algorithm
        nodes = self._nodes

        for node in nodes:
            algorithm.setup(node)

        # Round 0: every node starts.
        self.current_round = 0
        for node in nodes:
            if not node._halted:
                algorithm.on_start(node)
        inbox = self._collect_outgoing()
        last_active_round = 0

        while inbox or self._alarm_heap:
            next_round = self.current_round + 1
            if not inbox:
                # Idle gap: jump straight to the earliest alarm.
                next_round = max(next_round, self._peek_alarm())
            if next_round > self.max_rounds:
                raise RoundLimitExceededError(
                    f"'{getattr(algorithm, 'name', algorithm)}' still running "
                    f"after {self.max_rounds} rounds"
                )
            self.current_round = next_round

            woken = self._pop_alarms(next_round)
            active = set(inbox)
            active.update(woken)
            acted = False
            for node_id in sorted(active):
                node = nodes[node_id]
                if node._halted:
                    if node_id in inbox:
                        self._dropped_to_halted += len(inbox[node_id])
                    continue
                messages = inbox.get(node_id, [])
                messages.sort(key=lambda pair: pair[0])
                algorithm.on_round(node, messages)
                acted = True
            if acted or inbox:
                last_active_round = next_round
            inbox = self._collect_outgoing()

        states = {node.id: node.state for node in nodes}
        return RunResult(
            rounds=last_active_round,
            messages=self._messages_delivered,
            states=states,
            edge_traffic=dict(self._edge_traffic) if self.trace_edges else {},
            dropped_to_halted=self._dropped_to_halted,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _collect_outgoing(self) -> Dict[int, List[Tuple[int, Any]]]:
        """Move queued messages into next round's inboxes."""
        inbox: Dict[int, List[Tuple[int, Any]]] = {}
        for sender, to, payload in self._outgoing:
            inbox.setdefault(to, []).append((sender, payload))
            self._messages_delivered += 1
            if self.trace_edges:
                edge = canonical_edge(sender, to)
                self._edge_traffic[edge] = self._edge_traffic.get(edge, 0) + 1
        self._outgoing.clear()
        self._sent_pairs.clear()
        return inbox

    def _peek_alarm(self) -> int:
        while self._alarm_heap and self._alarm_heap[0] not in self._alarms:
            heapq.heappop(self._alarm_heap)
        if not self._alarm_heap:
            raise SimulationError("no pending alarms")  # pragma: no cover
        return self._alarm_heap[0]

    def _pop_alarms(self, round_number: int) -> Set[int]:
        due: Set[int] = set()
        while self._alarm_heap and self._alarm_heap[0] <= round_number:
            when = heapq.heappop(self._alarm_heap)
            due.update(self._alarms.pop(when, ()))
        return due


def run_algorithm(topology: Topology, algorithm: NodeAlgorithm, **kwargs) -> RunResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(topology, algorithm, **kwargs).run()
