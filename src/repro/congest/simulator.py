"""Synchronous CONGEST round simulator.

The simulator executes a :class:`~repro.congest.algorithm.NodeAlgorithm`
on a :class:`~repro.congest.topology.Topology` under the CONGEST rules:

* time advances in synchronous rounds;
* per round, each node may send at most one message per incident edge
  per direction;
* each message must fit in ``O(log n)`` bits (audited by
  :mod:`repro.congest.message`);
* messages sent in round ``r`` are delivered at the start of round
  ``r + 1``.

Scheduling is event-driven: a node runs in a round only if it received
messages or scheduled a wake-up, and stretches of rounds in which no
node acts are skipped in O(1) time — but still *counted*, because round
complexity is the quantity this whole repository measures.

The execution semantics live in :mod:`repro.congest.engine`, which
ships two interchangeable engines: the transparent ``"reference"``
implementation (the executable specification) and the ``"batched"``
default (flat adjacency slots, round-stamped duplicate detection,
send-time delivery — several times faster, differentially tested to be
bit-for-bit identical).  :class:`Simulator` is the stable facade that
selects and drives one.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike, RunResult, resolve_engine
from repro.congest.topology import Topology

if False:  # typing-only; the runtime import is deferred (see __init__)
    from repro.congest.faults import FaultsLike

__all__ = ["RunResult", "Simulator", "run_algorithm"]


class Simulator:
    """Executes one node program over a topology.

    Parameters
    ----------
    topology:
        The network.
    algorithm:
        The node program (one instance drives every node).
    seed:
        Seed for the per-node pseudo-random generators.  Two runs with
        the same seed are bit-for-bit identical, regardless of engine.
    check_bandwidth:
        Audit payloads against the O(log n)-bit budget.
    bandwidth_bits:
        Override the default budget from
        :func:`~repro.congest.message.bandwidth_limit`.
    max_rounds:
        Watchdog; exceeded means the protocol failed to terminate.
    trace_edges:
        Record per-edge message counts (used by congestion analyses).
    engine:
        Which execution engine to use: ``"batched"`` (default),
        ``"reference"``, an :class:`~repro.congest.engine.EngineBase`
        subclass, or ``None`` for the process-wide default (see
        :func:`~repro.congest.engine.set_default_engine`).
    audit_sample:
        Audit every ``audit_sample``-th message instead of every one
        (``1`` = full audit).  Sampling keeps the asymptotic-violation
        check on hot paths at a fraction of the cost.
    faults:
        Dynamic-fault plan: a
        :class:`~repro.congest.faults.FaultPlan`, ``"none"`` for an
        expressly clean run, or ``None`` for the process-wide default
        (see :func:`~repro.congest.faults.set_default_faults`).  A
        non-``None`` plan wraps the selected engine in
        :class:`~repro.congest.faults.FaultyEngine`.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: NodeAlgorithm,
        *,
        seed: int = 0,
        check_bandwidth: bool = True,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
        trace_edges: bool = False,
        engine: EngineLike = None,
        audit_sample: int = 1,
        faults: "FaultsLike" = None,
    ) -> None:
        # Deferred import: faults -> randomness -> simulator would
        # otherwise be a circular module-load chain.
        from repro.congest.faults import FaultyEngine, resolve_faults

        self.topology = topology
        self.algorithm = algorithm
        self.seed = seed
        self.check_bandwidth = check_bandwidth
        self.max_rounds = max_rounds
        self.trace_edges = trace_edges
        plan = resolve_faults(faults)
        if plan is not None and plan.reliable:
            from repro.congest.reliable import ReliableSimulation

            self._engine = ReliableSimulation(
                topology,
                algorithm,
                plan=plan,
                inner=engine,
                seed=seed,
                check_bandwidth=check_bandwidth,
                bandwidth_bits=bandwidth_bits,
                max_rounds=max_rounds,
                trace_edges=trace_edges,
                audit_sample=audit_sample,
            )
        elif plan is not None:
            self._engine = FaultyEngine(
                topology,
                algorithm,
                plan=plan,
                inner=engine,
                seed=seed,
                check_bandwidth=check_bandwidth,
                bandwidth_bits=bandwidth_bits,
                max_rounds=max_rounds,
                trace_edges=trace_edges,
                audit_sample=audit_sample,
            )
        else:
            self._engine = resolve_engine(engine)(
                topology,
                algorithm,
                seed=seed,
                check_bandwidth=check_bandwidth,
                bandwidth_bits=bandwidth_bits,
                max_rounds=max_rounds,
                trace_edges=trace_edges,
                audit_sample=audit_sample,
            )
        self.bandwidth_bits = self._engine.bandwidth_bits

    @property
    def engine_name(self) -> str:
        """Name of the engine executing this simulation."""
        return self._engine.name

    @property
    def fault_stats(self):
        """Injection counters when running under a fault plan, else None."""
        return getattr(self._engine, "fault_stats", None)

    @property
    def current_round(self) -> int:
        """The engine's current round (0 before the run starts)."""
        return self._engine.current_round

    # Compatibility pass-throughs: older code (and tests) drove these
    # callbacks directly on the Simulator.
    def queue_message(self, sender: int, to: int, payload: Any) -> None:
        self._engine.queue_message(sender, to, payload)

    def queue_broadcast(self, sender: int, payload: Any) -> None:
        self._engine.queue_broadcast(sender, payload)

    def schedule_wakeup(self, node_id: int, round_number: int) -> None:
        self._engine.schedule_wakeup(node_id, round_number)

    def run(self) -> RunResult:
        """Execute the algorithm until quiescence and return the result."""
        return self._engine.run()


def run_algorithm(topology: Topology, algorithm: NodeAlgorithm, **kwargs) -> RunResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(topology, algorithm, **kwargs).run()
