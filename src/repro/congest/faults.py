"""Seeded dynamic-fault injection for CONGEST executions.

Every layer above the engine assumes the CONGEST model's perfectly
reliable synchronous delivery.  This module drops that assumption in a
controlled way: a :class:`FaultPlan` is a *seeded, fully deterministic*
schedule of transport faults — per-round message drop, duplication,
delay, inbox reordering, plus crash-stop node schedules — and
:class:`FaultyEngine` applies it to any underlying engine through the
``collect_inbox`` delivery seam.

Determinism is the load-bearing property.  Every fault decision is a
pure function of ``(plan.seed, round, sender, receiver, copy)`` through
:func:`repro.congest.randomness.mix` — never of arrival order, engine
internals, or wall clock — so a faulty run is bit-for-bit reproducible
and *identical regardless of the wrapped engine*: the differential
suite asserts ``FaultyEngine(inner="reference")`` ==
``FaultyEngine(inner="batched")`` on the same plan.

The ``faults=`` axis
--------------------

Like ``engine=`` / ``kernel=`` / ``mode=`` / ``backend=`` / ``batch=``,
fault injection is a process-wide axis: :func:`set_default_faults`,
:func:`using_faults`, and :func:`faults_parameter` mirror the engine
registry idiom, and :class:`~repro.congest.simulator.Simulator` accepts
``faults=`` directly.  A plan spec is ``None`` (current default, itself
``None`` = fault-free out of the box), the string ``"none"`` (expressly
fault-free), or a :class:`FaultPlan`.

Crash schedules derive from the failure layer: pass any
:class:`repro.failures.scenarios.FailureScenario` to
:meth:`FaultPlan.from_scenario` and the nodes incident to the failed
edges crash-stop at seeded rounds — static topology damage promoted to
a mid-protocol dynamic fault.
"""

from __future__ import annotations

import dataclasses
import functools
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.congest.engine import EngineBase, EngineLike, RunResult, resolve_engine
from repro.congest.randomness import coin, mix
from repro.congest.topology import canonical_edge
from repro.errors import RoundLimitExceededError, SimulationError

FAULT_SALT = 0xFA17
CRASH_SALT = 0xC2A5
_DROP_SALT = 0xD209
_DUP_SALT = 0xD0B1
_DELAY_SALT = 0xDE1A
_REORDER_SALT = 0x5807


@dataclass
class FaultStats:
    """Injection counters of one faulty run (all post-validation)."""

    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered_inboxes: int = 0
    crashed_nodes: int = 0
    dropped_to_crashed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of transport faults and crash-stop failures.

    Probabilities are per *message copy* (drop, duplicate, delay) or
    per *inbox* (reorder); ``crashes`` is a tuple of ``(node, round)``
    pairs — the node acts in no round ``>= round``.  All decisions are
    pure functions of the seed and the coordinates of the event, so two
    runs of the same plan are identical on any engine.
    """

    seed: int = 0
    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    max_delay: int = 3
    p_reorder: float = 0.0
    crashes: Tuple[Tuple[int, int], ...] = ()
    # When set, Simulator routes runs under this plan through the
    # reliable-delivery sublayer (repro.congest.reliable): transport
    # faults are masked, crash-stop partitions surface as declared
    # DetectedFailures, and recovered states stay bit-identical to the
    # fault-free run.
    reliable: bool = False

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_duplicate", "p_delay", "p_reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name}={value} is not a probability")
        if self.max_delay < 0:
            raise SimulationError("max_delay must be >= 0")
        canon = tuple(sorted((int(v), int(r)) for v, r in self.crashes))
        object.__setattr__(self, "crashes", canon)
        object.__setattr__(self, "_crash_of", dict(canon))

    # -- seeded per-event decisions ------------------------------------

    def drops(self, round_: int, sender: int, to: int) -> bool:
        """Whether the wire eats this message entirely."""
        return self.p_drop > 0.0 and (
            coin(self.seed, round_, sender, to, _DROP_SALT) < self.p_drop
        )

    def duplicates(self, round_: int, sender: int, to: int) -> int:
        """Extra copies the wire delivers (0 or 1)."""
        if self.p_duplicate > 0.0 and (
            coin(self.seed, round_, sender, to, _DUP_SALT) < self.p_duplicate
        ):
            return 1
        return 0

    def delay(self, round_: int, sender: int, to: int, copy: int = 0) -> int:
        """Extra rounds this copy spends in flight (0 = on time)."""
        if self.p_delay <= 0.0 or self.max_delay <= 0:
            return 0
        if coin(self.seed, round_, sender, to, copy, _DELAY_SALT) >= self.p_delay:
            return 0
        draw = coin(self.seed, round_, sender, to, copy, _DELAY_SALT + 1)
        return 1 + min(self.max_delay - 1, int(draw * self.max_delay))

    def reorders(self, round_: int, to: int) -> bool:
        """Whether this recipient's inbox arrives permuted this round."""
        return self.p_reorder > 0.0 and (
            coin(self.seed, round_, to, _REORDER_SALT) < self.p_reorder
        )

    def crash_round(self, node: int) -> Optional[int]:
        """The round at which ``node`` crash-stops, or ``None``."""
        return self._crash_of.get(node)

    # -- derivation helpers --------------------------------------------

    def reseed(self, seed: int) -> "FaultPlan":
        """The same fault mix under a fresh seed (for retry attempts)."""
        return dataclasses.replace(self, seed=seed)

    @classmethod
    def from_scenario(
        cls,
        scenario,
        *,
        seed: int = 0,
        horizon: int = 8,
        p_crash: float = 0.5,
        **kwargs,
    ) -> "FaultPlan":
        """Crash-stop plan derived from an edge-failure scenario.

        Nodes incident to the scenario's failed edges crash with
        probability ``p_crash`` each, at a seeded round in
        ``[1, horizon]`` — always at least one crash, so a non-empty
        scenario always yields a dynamic fault.  Transport-fault
        probabilities pass through ``**kwargs``.
        """
        rng = random.Random(mix(seed, CRASH_SALT))
        nodes = sorted({v for edge in scenario.edges for v in edge})
        top = max(2, horizon + 1)
        crashes = [
            (v, rng.randrange(1, top)) for v in nodes if rng.random() < p_crash
        ]
        if not crashes and nodes:
            crashes = [(nodes[0], rng.randrange(1, top))]
        return cls(seed=seed, crashes=tuple(crashes), **kwargs)

    def describe(self) -> str:
        """One-line tag for tables and logs."""
        parts = [f"seed={self.seed}"]
        for name in ("p_drop", "p_duplicate", "p_delay", "p_reorder"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name[2:]}={value}")
        if self.crashes:
            parts.append(f"crashes={len(self.crashes)}")
        if self.reliable:
            parts.append("reliable")
        return " ".join(parts)

    def with_reliable(self, reliable: bool = True) -> "FaultPlan":
        """This plan with the reliable-sublayer routing toggled."""
        return dataclasses.replace(self, reliable=reliable)


FAULT_FREE: Optional[FaultPlan] = None


class FaultyEngine(EngineBase):
    """Applies a :class:`FaultPlan` to any underlying engine.

    The wrapped engine instance is the *validating transport*: every
    send goes through its ``queue_message`` / ``queue_broadcast`` (so
    neighbor checks, per-edge duplicate stamps, and the bandwidth audit
    are exactly the inner engine's), and the queued round is pulled
    back out through its ``collect_inbox`` seam.  The wrapper then
    plays wire: each message copy is dropped, duplicated, or delayed by
    the plan's seeded coins, inboxes are delivered in ascending-sender
    order (then optionally permuted by the plan), and crash-stop nodes
    are force-halted at their scheduled round.

    ``RunResult.messages`` counts post-fault deliveries (duplicates
    count, drops do not); injection counters live in ``fault_stats``.
    """

    name = "faulty"

    def __init__(
        self,
        topology,
        algorithm,
        *,
        plan: FaultPlan,
        inner: EngineLike = None,
        **kwargs,
    ) -> None:
        super().__init__(topology, algorithm, **kwargs)
        if not isinstance(plan, FaultPlan):
            raise SimulationError(f"not a fault plan: {plan!r}")
        self.plan = plan
        self.fault_stats = FaultStats()
        self._inner = resolve_engine(inner)(
            topology,
            algorithm,
            seed=self.seed,
            check_bandwidth=self.check_bandwidth,
            bandwidth_bits=self.bandwidth_bits,
            max_rounds=self.max_rounds,
            trace_edges=False,
            audit_sample=self.audit_sample,
        )
        self.inner_name = self._inner.name
        self._crashed: Set[int] = set()

    # -- NodeHandle callbacks (validation delegated to the inner) ------

    def queue_message(self, sender: int, to: int, payload: Any) -> None:
        self._inner.queue_message(sender, to, payload)

    def queue_broadcast(self, sender: int, payload: Any) -> None:
        self._inner.queue_broadcast(sender, payload)

    # -- the faulted round loop ----------------------------------------

    def run(self) -> RunResult:
        algorithm = self.algorithm
        nodes = self._nodes
        plan = self.plan
        # round -> recipient -> [(sender, payload), ...]
        pending: Dict[int, Dict[int, List[Tuple[int, Any]]]] = {}

        for node in nodes:
            algorithm.setup(node)

        self.current_round = 0
        self._inner.current_round = 0
        self._apply_crashes(0)
        for node in nodes:
            if not node._halted:
                algorithm.on_start(node)
        self._route(pending)
        last_active_round = 0

        while pending or self._alarm_heap:
            candidates = []
            if pending:
                candidates.append(min(pending))
            if self._alarm_heap:
                candidates.append(self._peek_alarm())
            next_round = max(self.current_round + 1, min(candidates))
            if next_round > self.max_rounds:
                raise RoundLimitExceededError(
                    f"'{getattr(algorithm, 'name', algorithm)}' still running "
                    f"after {self.max_rounds} rounds (faults: {plan.describe()})"
                )
            self.current_round = next_round
            self._inner.current_round = next_round
            self._apply_crashes(next_round)

            inbox = pending.pop(next_round, {})
            woken = self._pop_alarms(next_round)
            active = set(inbox)
            active.update(woken)
            acted = False
            for node_id in sorted(active):
                node = nodes[node_id]
                messages = inbox.get(node_id, [])
                # Deterministic delivery order regardless of the inner
                # engine: ascending sender (stable for duplicates),
                # then the plan's optional seeded permutation.
                messages.sort(key=lambda pair: pair[0])
                if len(messages) > 1 and plan.reorders(next_round, node_id):
                    rng = random.Random(
                        mix(plan.seed, next_round, node_id, _REORDER_SALT)
                    )
                    rng.shuffle(messages)
                    self.fault_stats.reordered_inboxes += 1
                if node._halted:
                    self._dropped_to_halted += len(messages)
                    if node_id in self._crashed:
                        self.fault_stats.dropped_to_crashed += len(messages)
                    continue
                algorithm.on_round(node, messages)
                acted = True
            if acted or inbox:
                last_active_round = next_round
            self._route(pending)

        return self._result(last_active_round)

    def _apply_crashes(self, round_: int) -> None:
        """Force-halt every node whose crash round has arrived."""
        for node_id, crash_round in self.plan.crashes:
            if crash_round <= round_ and node_id not in self._crashed:
                self._crashed.add(node_id)
                self.fault_stats.crashed_nodes += 1
                self._nodes[node_id]._halted = True

    def _route(self, pending: Dict[int, Dict[int, List[Tuple[int, Any]]]]) -> None:
        """Pull this round's sends from the inner engine and fault them."""
        box = self._inner.collect_inbox()
        if not box:
            return
        round_ = self.current_round
        plan = self.plan
        stats = self.fault_stats
        for to, messages in box.items():
            for sender, payload in messages:
                if plan.drops(round_, sender, to):
                    stats.dropped += 1
                    continue
                extra = plan.duplicates(round_, sender, to)
                if extra:
                    stats.duplicated += extra
                for copy in range(1 + extra):
                    lag = plan.delay(round_, sender, to, copy)
                    if lag:
                        stats.delayed += 1
                    deliver = round_ + 1 + lag
                    pending.setdefault(deliver, {}).setdefault(to, []).append(
                        (sender, payload)
                    )
                    stats.delivered += 1
                    self._messages_delivered += 1
                    if self.trace_edges:
                        edge = canonical_edge(sender, to)
                        self._edge_traffic[edge] = (
                            self._edge_traffic.get(edge, 0) + 1
                        )


# ----------------------------------------------------------------------
# The faults= axis (registry idiom shared with engine=/kernel=/...)
# ----------------------------------------------------------------------

FaultsLike = Union[None, str, FaultPlan]

_default_faults: Optional[FaultPlan] = None


def get_default_faults() -> Optional[FaultPlan]:
    """The plan applied when no ``faults=`` is specified (None = clean)."""
    return _default_faults


def set_default_faults(faults: FaultsLike) -> Optional[FaultPlan]:
    """Set the process-wide default plan; returns the previous one.

    Accepts a :class:`FaultPlan` or the string ``"none"`` (expressly
    fault-free).  Unlike the per-call spec, ``None`` here also means
    fault-free, so the default can be cleared.
    """
    global _default_faults
    previous = _default_faults
    _default_faults = None if faults is None else _resolve_spec(faults)
    return previous


@contextmanager
def using_faults(faults: FaultsLike) -> Iterator[Optional[FaultPlan]]:
    """Temporarily override the default plan (``None`` is a no-op)."""
    if faults is None:
        yield _default_faults
        return
    previous = set_default_faults(faults)
    try:
        yield _default_faults
    finally:
        set_default_faults(previous)


def faults_parameter(func):
    """Give an entry point a ``faults=`` keyword selecting the plan.

    Mirrors :func:`repro.congest.engine.engine_parameter`: for the
    duration of the call the plan becomes the process default, so every
    simulation the function runs — however deeply nested — executes
    under it.  Direct (simulation-free) kernels are unaffected; faults
    are a property of the simulated execution.
    """

    @functools.wraps(func)
    def wrapper(*args, faults: FaultsLike = None, **kwargs):
        with using_faults(faults):
            return func(*args, **kwargs)

    return wrapper


def _resolve_spec(faults: FaultsLike) -> Optional[FaultPlan]:
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, str):
        if faults == "none":
            return None
        raise SimulationError(
            f"unknown fault spec {faults!r}; use a FaultPlan or 'none'"
        )
    raise SimulationError(f"not a fault spec: {faults!r}")


def resolve_faults(faults: FaultsLike) -> Optional[FaultPlan]:
    """Map a fault spec to a plan (or ``None`` for fault-free).

    ``None`` selects the process default; ``"none"`` is expressly
    fault-free regardless of the default; a :class:`FaultPlan` is
    itself.
    """
    if faults is None:
        return _default_faults
    return _resolve_spec(faults)
