"""Analysis harness: metrics, tables, and per-claim experiment runners."""

from repro.analysis.metrics import bound_ratio, fraction, geometric_mean, loglog_slope
from repro.analysis.tables import Table
from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_all,
    standard_instances,
)

__all__ = [
    "bound_ratio",
    "fraction",
    "geometric_mean",
    "loglog_slope",
    "Table",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "run_all",
    "standard_instances",
]
