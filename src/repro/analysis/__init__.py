"""Analysis harness: metrics, tables, parallel fan-out, and per-claim
experiment runners."""

from repro.analysis.metrics import bound_ratio, fraction, geometric_mean, loglog_slope
from repro.analysis.parallel import parallel_map, resolve_jobs, task_seed
from repro.analysis.tables import Table
from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    quality_families,
    run_all,
    standard_instances,
)

__all__ = [
    "bound_ratio",
    "fraction",
    "geometric_mean",
    "loglog_slope",
    "parallel_map",
    "resolve_jobs",
    "task_seed",
    "Table",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "quality_families",
    "run_all",
    "standard_instances",
]
