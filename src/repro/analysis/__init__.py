"""Analysis harness: metrics, tables, parallel fan-out, and per-claim
experiment runners."""

from repro.analysis.instances import (
    Instance,
    InstanceSpec,
    clear_instance_cache,
    hydrate,
    instance_cache_info,
    reference_instance,
)
from repro.analysis.metrics import bound_ratio, fraction, geometric_mean, loglog_slope
from repro.analysis.parallel import parallel_map, resolve_jobs, task_seed
from repro.analysis.tables import Table
from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    instance_families,
    quality_families,
    run_all,
    standard_instance_specs,
    standard_instances,
)

__all__ = [
    "bound_ratio",
    "fraction",
    "geometric_mean",
    "loglog_slope",
    "parallel_map",
    "resolve_jobs",
    "task_seed",
    "Table",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "Instance",
    "InstanceSpec",
    "clear_instance_cache",
    "hydrate",
    "instance_cache_info",
    "instance_families",
    "reference_instance",
    "quality_families",
    "run_all",
    "standard_instance_specs",
    "standard_instances",
]
