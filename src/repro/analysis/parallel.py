"""Process-parallel experiment harness.

The ``run_eXX`` runners walk instance grids (families × seeds) whose
cells are completely independent; this module fans those cells out to
worker processes while keeping the results **deterministic**:

* every task carries its own seed (derive one with :func:`task_seed`
  from a base seed and the task index — never from worker identity);
* results are merged back in task-submission order, so tables and
  ``data`` payloads are identical at any worker count;
* the worker count comes from the ``REPRO_JOBS`` environment knob
  (default ``1`` = serial, ``0``/``auto`` = all cores) or an explicit
  ``jobs=`` argument.

Workers are separate processes, so task functions must be module-level
(picklable) and must not rely on the parent's process-wide defaults:
pass the engine name in the task payload and re-enter
``using_engine(...)`` inside the worker (see the ``_eXX_task`` workers
in :mod:`repro.analysis.experiments`).

Task payloads should stay **compact**: ship an
:class:`~repro.analysis.instances.InstanceSpec` and hydrate it inside
the worker instead of pickling whole ``Topology`` objects — the
per-process instance cache makes every task after the first a
dictionary hit.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from repro.congest.randomness import mix

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit ``jobs``, else ``REPRO_JOBS``.

    ``0`` or ``"auto"`` selects ``os.cpu_count()``; unset defaults to
    serial execution (the deterministic, fork-free baseline).
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "1").strip().lower()
        if raw in ("", "auto"):
            jobs = 0
        else:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV}={raw!r} is not an integer or 'auto'"
                ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def task_seed(base: int, index: int) -> int:
    """Deterministic per-task seed, independent of the worker count."""
    return mix(base, index)


def chunk_seeds(base: int, start: int, count: int) -> List[int]:
    """Per-item seeds for a chunk of ``count`` tasks starting at ``start``.

    Chunked submission must derive every item's seed from its *global*
    task index — ``task_seed(base, start + offset)`` — never from the
    chunk index or a per-chunk stream, so a batch worker that processes
    ``tasks[start:start + count]`` in one call draws exactly the
    randomness the per-task loop would have drawn for the same items.
    This is the equivalence prerequisite for the ``batch="vector"``
    kernels: grids fanned out as spec chunks must be bit-identical to
    the serial per-spec run.
    """
    return [task_seed(base, start + offset) for offset in range(count)]


def chunk_tasks(tasks: Iterable[T], chunk_size: int) -> List[tuple]:
    """Split tasks into ``(start_index, items)`` chunks of ``chunk_size``.

    The start index is the chunk's first *global* task index; workers
    combine it with :func:`chunk_seeds` to reproduce per-task seeding.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    task_list = list(tasks)
    return [
        (start, task_list[start : start + chunk_size])
        for start in range(0, len(task_list), chunk_size)
    ]


def parallel_map_chunked(
    fn: Callable[[int, List[T]], List[R]],
    tasks: Iterable[T],
    *,
    chunk_size: int,
    jobs: Optional[int] = None,
) -> List[R]:
    """Fan out tasks in chunks; workers see ``(start_index, items)``.

    The chunked twin of :func:`parallel_map` for batch processing:
    ``fn`` receives a whole chunk (plus its global start index, for
    :func:`chunk_seeds`) and returns one result per item, in item
    order.  Results are flattened back to global task order, so any
    ``chunk_size`` × ``jobs`` combination returns exactly what
    ``parallel_map`` over single tasks would — provided ``fn`` honors
    the global-index seeding contract.
    """
    chunks = chunk_tasks(tasks, chunk_size)
    per_chunk = parallel_map(
        _ChunkCall(fn), chunks, jobs=jobs
    )
    results: List[R] = []
    for (start, items), chunk_results in zip(chunks, per_chunk):
        if len(chunk_results) != len(items):
            raise ValueError(
                f"chunk at {start} returned {len(chunk_results)} results "
                f"for {len(items)} tasks"
            )
        results.extend(chunk_results)
    return results


class _ChunkCall:
    """Picklable adapter unpacking ``(start, items)`` into ``fn`` calls."""

    def __init__(self, fn: Callable[[int, List[T]], List[R]]):
        self.fn = fn

    def __call__(self, chunk: tuple) -> List[R]:
        start, items = chunk
        return list(self.fn(start, items))


def _pool_attempt(
    fn: Callable[[T], R], indexed_tasks: List, workers: int
) -> tuple:
    """Run ``(index, task)`` pairs through one pool.

    Returns ``(results, failed)``: per-index results plus the sorted
    indices whose futures died with the pool (a crashed worker fails
    every task in flight and poisons the executor).  Exceptions raised
    *by the task itself* propagate unchanged.
    """
    results: Dict[int, R] = {}
    failed: List[int] = []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(indexed_tasks))
    ) as pool:
        futures = [
            (index, pool.submit(fn, task)) for index, task in indexed_tasks
        ]
        for index, future in futures:
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                failed.append(index)
    return results, sorted(failed)


def parallel_map(
    fn: Callable[[T], R], tasks: Iterable[T], *, jobs: Optional[int] = None
) -> List[R]:
    """Apply ``fn`` to every task, fanning out over processes.

    Results come back in task order regardless of completion order, so
    a ``jobs=8`` run is indistinguishable from a serial one.

    The fan-out survives worker crashes: a task whose worker process
    dies (OOM kill, segfault, ``os._exit``) poisons the whole pool, so
    the affected tasks are retried once in a fresh pool, and — if that
    pool breaks too — finished serially in the parent, each step with a
    warning.  Falls back to serial execution entirely where worker
    processes cannot be spawned at all.  Exceptions *raised by a task*
    are not retried; they propagate as in a serial run.
    """
    task_list = list(tasks)
    workers = min(resolve_jobs(jobs), len(task_list))
    if workers <= 1:
        return [fn(task) for task in task_list]
    try:
        results, failed = _pool_attempt(fn, list(enumerate(task_list)), workers)
        if failed:
            warnings.warn(
                f"parallel_map: a worker process died; retrying "
                f"{len(failed)} affected task(s) in a fresh pool",
                RuntimeWarning,
                stacklevel=2,
            )
            retried, failed = _pool_attempt(
                fn, [(index, task_list[index]) for index in failed], workers
            )
            results.update(retried)
        if failed:
            warnings.warn(
                f"parallel_map: worker processes keep dying; running "
                f"{len(failed)} task(s) serially in the parent",
                RuntimeWarning,
                stacklevel=2,
            )
            for index in failed:
                results[index] = fn(task_list[index])
        return [results[index] for index in range(len(task_list))]
    except (OSError, PermissionError) as error:
        warnings.warn(
            f"parallel_map: cannot spawn worker processes ({error}); "
            f"falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(task) for task in task_list]
