"""Content-addressed instance cache for the experiment grids.

The ``run_eXX`` runners walk grids whose cells repeat the same handful
of (topology, spanning tree, partition) triples — and, with
process-parallel fan-out, used to pickle whole ``Topology`` objects to
every worker.  This module replaces both costs with *specs*:

* an :class:`InstanceSpec` is a small frozen value naming a registered
  builder family plus its parameters (weights, partition, BFS root) —
  cheap to hash, compare, and pickle;
* :func:`hydrate` turns a spec into a fully-built :class:`Instance`
  through a **per-process content-addressed cache**: equal specs return
  the *same* hydrated object, and the underlying topology / tree are
  themselves cached one level down, so two specs sharing a topology
  (e.g. ``grid/voronoi`` and ``grid/rows``) build it once.

Workers therefore receive a compact spec in their task payload and
hydrate it locally — the first task on each worker process builds the
instance through the array-native fast paths
(:meth:`Topology.from_arrays` generators,
:func:`repro.graphs.csr.bfs_spanning_tree`,
:meth:`Partition.from_dense_labels`), and every later task on that
worker is a dictionary hit.  The differential suite
(``tests/graphs/test_fastpath_equivalence.py``,
``tests/analysis/test_instances.py``) pins hydrated instances exactly
equal to reference-constructed ones.

Builders are registered by name so specs stay picklable and
content-addressable; register new families with
:func:`register_topology`, :func:`register_partition`, and
:func:`register_weights`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.congest.topology import Topology
from repro.errors import ReproError
from repro.graphs import generators, partitions, weights as weight_mod
from repro.graphs.csr import bfs_spanning_tree
from repro.graphs.hard_instances import peleg_rubinovich
from repro.graphs.spanning_trees import SpanningTree

Params = Tuple[object, ...]


@dataclass(frozen=True)
class InstanceSpec:
    """A content-addressed description of one experiment instance.

    Attributes
    ----------
    family:
        Registered topology builder name (``"grid"``, ``"torus"``,
        ``"hub"``, ``"genus_chain"``, ``"k_tree"``,
        ``"peleg_rubinovich"``, ``"delaunay"``, ...).
    params:
        Positional arguments of the topology builder.
    weights:
        Optional ``(name, *args)`` of a registered weight assignment
        applied to the topology (``("unique", seed)``,
        ``("hub_adversarial", n_cycle, seed)``).
    partition:
        Optional ``(name, *args)`` of a registered partition builder
        run against the (weighted) topology.
    tree_root:
        Root of the BFS spanning tree built for the instance.
    """

    family: str
    params: Params
    weights: Optional[Params] = None
    partition: Optional[Params] = None
    tree_root: int = 0


@dataclass(frozen=True)
class Instance:
    """A hydrated spec: the structures every runner consumes."""

    spec: InstanceSpec
    topology: Topology
    tree: SpanningTree
    partition: Optional[partitions.Partition]


# ----------------------------------------------------------------------
# Builder registries (names keep specs picklable and content-addressed)
# ----------------------------------------------------------------------

TOPOLOGY_BUILDERS: Dict[str, Callable[..., Topology]] = {}
PARTITION_BUILDERS: Dict[str, Callable[..., partitions.Partition]] = {}
WEIGHT_BUILDERS: Dict[str, Callable[..., Topology]] = {}


def register_topology(name: str, builder: Callable[..., Topology]) -> None:
    """Register a topology builder usable as a spec ``family``."""
    TOPOLOGY_BUILDERS[name] = builder


def register_partition(
    name: str, builder: Callable[..., partitions.Partition]
) -> None:
    """Register a partition builder; it receives ``(topology, *args)``."""
    PARTITION_BUILDERS[name] = builder


def register_weights(name: str, builder: Callable[..., Topology]) -> None:
    """Register a weight assignment; it receives ``(topology, *args)``
    and returns the weighted twin."""
    WEIGHT_BUILDERS[name] = builder


register_topology("grid", generators.grid)
register_topology("torus", generators.torus)
register_topology("genus_chain", generators.genus_chain)
register_topology("hub", generators.cycle_with_hub)
register_topology("k_tree", generators.k_tree)
register_topology("delaunay", generators.delaunay)
register_topology(
    "peleg_rubinovich",
    lambda *params: peleg_rubinovich(*params).topology,
)

register_partition("voronoi", partitions.voronoi)
register_partition("rows", lambda topology, rows, cols: partitions.grid_rows(rows, cols))
register_partition(
    "bands",
    lambda topology, rows, cols, height: partitions.grid_bands(rows, cols, height),
)
register_partition(
    "arcs",
    lambda topology, n, n_parts, extra: partitions.cycle_arcs(
        n, n_parts, extra_nodes=extra
    ),
)
register_partition("singletons", lambda topology: partitions.singletons(topology))

register_weights("unique", weight_mod.weighted)
register_weights("hub_adversarial", weight_mod.hub_adversarial_weights)


# ----------------------------------------------------------------------
# Reference twins (differential baseline for E18 and the test suite)
# ----------------------------------------------------------------------

_REFERENCE_TOPOLOGIES: Dict[str, Callable[..., Topology]] = {
    "grid": lambda *p: generators.grid(*p, fast=False),
    "torus": lambda *p: generators.torus(*p, fast=False),
    "genus_chain": lambda *p: generators.genus_chain(*p, fast=False),
    "hub": lambda *p: generators.cycle_with_hub(*p, fast=False),
    "k_tree": lambda *p: generators.k_tree(*p, fast=False),
    "peleg_rubinovich": lambda *p: peleg_rubinovich(*p, fast=False).topology,
}

_REFERENCE_PARTITIONS: Dict[str, Callable[..., partitions.Partition]] = {
    "voronoi": lambda topology, *a: partitions.voronoi(topology, *a, fast=False),
    "rows": lambda topology, rows, cols: partitions.grid_rows(rows, cols, fast=False),
    "bands": lambda topology, rows, cols, height: partitions.grid_bands(
        rows, cols, height, fast=False
    ),
    "arcs": lambda topology, n, n_parts, extra: partitions.cycle_arcs(
        n, n_parts, extra_nodes=extra, fast=False
    ),
    "singletons": lambda topology: partitions.Partition(
        topology.n, [[v] for v in topology.nodes]
    ),
}

_REFERENCE_WEIGHTS: Dict[str, Callable[..., Dict]] = {
    "unique": weight_mod.unique_random_weights,
}


def reference_instance(spec: InstanceSpec) -> Instance:
    """Build a spec through the **reference** constructors, uncached.

    The differential twin of :func:`hydrate`: the validating
    ``Topology`` constructor (full canonicalise/sort/dedup, eager
    weight validation), ``SpanningTree.bfs``, and the list-of-parts
    ``Partition`` path.  E18 times this pipeline against the fast one
    and audits that both produce ``==``-identical structures; specs
    whose family or partition has no reference twin raise
    :class:`ReproError`.
    """
    try:
        topology = _REFERENCE_TOPOLOGIES[spec.family](*spec.params)
    except KeyError:
        raise ReproError(
            f"no reference twin for instance family {spec.family!r}"
        ) from None
    if spec.weights is not None:
        name, *args = spec.weights
        try:
            weight_dict = _REFERENCE_WEIGHTS[name](topology, *args)
        except KeyError:
            raise ReproError(
                f"no reference twin for weight assignment {name!r}"
            ) from None
        topology = Topology(topology.n, topology.edges, weights=weight_dict)
    tree = SpanningTree.bfs(topology, spec.tree_root)
    partition = None
    if spec.partition is not None:
        name, *args = spec.partition
        try:
            partition = _REFERENCE_PARTITIONS[name](topology, *args)
        except KeyError:
            raise ReproError(
                f"no reference twin for partition builder {name!r}"
            ) from None
    return Instance(spec=spec, topology=topology, tree=tree, partition=partition)


# ----------------------------------------------------------------------
# The per-process cache
# ----------------------------------------------------------------------

# The experiment grids revisit a handful of specs, but a long-lived
# process (the shortcut service) sees an open-ended stream of them, so
# each cache is LRU-bounded: a hit refreshes recency, an insert past
# the bound evicts the least recently used entry and counts it.
CACHE_MAX_ENTRIES = 128


class _BoundedLRU:
    """Per-process LRU mapping with an eviction counter."""

    def __init__(self, max_entries: int = CACHE_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self.evictions = 0


# Two levels: topologies (with weights applied) keyed by their builder
# coordinates so specs differing only in partition/root share them, and
# full instances keyed by the spec.  Per-process module globals — worker
# processes each hydrate once, the parent never re-ships objects.
_TOPOLOGY_CACHE: _BoundedLRU = _BoundedLRU()
_TREE_CACHE: _BoundedLRU = _BoundedLRU()
_INSTANCE_CACHE: _BoundedLRU = _BoundedLRU()


def clear_instance_cache() -> None:
    """Drop every cached topology, tree, and instance (test isolation).

    Also resets the eviction counters.
    """
    _TOPOLOGY_CACHE.clear()
    _TREE_CACHE.clear()
    _INSTANCE_CACHE.clear()


def instance_cache_info() -> Dict[str, int]:
    """Current cache sizes and eviction counts, for benchmarks and tests."""
    return {
        "topologies": len(_TOPOLOGY_CACHE),
        "trees": len(_TREE_CACHE),
        "instances": len(_INSTANCE_CACHE),
        "topology_evictions": _TOPOLOGY_CACHE.evictions,
        "tree_evictions": _TREE_CACHE.evictions,
        "instance_evictions": _INSTANCE_CACHE.evictions,
        "max_entries": _TOPOLOGY_CACHE.max_entries,
    }


def build_topology(spec: InstanceSpec) -> Topology:
    """Build (or fetch) the spec's weighted topology."""
    key = (spec.family, spec.params, spec.weights)
    topology = _TOPOLOGY_CACHE.get(key)
    if topology is None:
        try:
            builder = TOPOLOGY_BUILDERS[spec.family]
        except KeyError:
            raise ReproError(
                f"unknown instance family {spec.family!r}; registered: "
                f"{sorted(TOPOLOGY_BUILDERS)}"
            ) from None
        topology = builder(*spec.params)
        if spec.weights is not None:
            name, *args = spec.weights
            try:
                weight_builder = WEIGHT_BUILDERS[name]
            except KeyError:
                raise ReproError(
                    f"unknown weight assignment {name!r}; registered: "
                    f"{sorted(WEIGHT_BUILDERS)}"
                ) from None
            topology = weight_builder(topology, *args)
        _TOPOLOGY_CACHE[key] = topology
    return topology


def hydrate(spec: InstanceSpec) -> Instance:
    """The hydrated instance of a spec (per-process, content-addressed).

    Equal specs return the identical :class:`Instance` object; the
    topology and BFS tree are shared across specs that agree on the
    relevant coordinates.
    """
    instance = _INSTANCE_CACHE.get(spec)
    if instance is not None:
        return instance
    topology = build_topology(spec)
    tree_key = (spec.family, spec.params, spec.weights, spec.tree_root)
    tree = _TREE_CACHE.get(tree_key)
    if tree is None:
        tree = bfs_spanning_tree(topology, spec.tree_root)
        _TREE_CACHE[tree_key] = tree
    partition = None
    if spec.partition is not None:
        name, *args = spec.partition
        try:
            partition_builder = PARTITION_BUILDERS[name]
        except KeyError:
            raise ReproError(
                f"unknown partition builder {name!r}; registered: "
                f"{sorted(PARTITION_BUILDERS)}"
            ) from None
        partition = partition_builder(topology, *args)
    instance = Instance(
        spec=spec, topology=topology, tree=tree, partition=partition
    )
    _INSTANCE_CACHE[spec] = instance
    return instance
