"""Measurement helpers for the experiment harness.

The paper's claims are asymptotic bounds, so the experiments report:

* **bound ratios** — measured quantity / claimed bound (must stay
  bounded, typically ≤ 1 after normalising constants);
* **log-log slopes** — the growth exponent of measured rounds against
  the driving parameter, compared with the bound's exponent.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple


def bound_ratio(measured: float, bound: float) -> float:
    """measured / bound; infinity when the bound is zero but measured isn't."""
    if bound == 0:
        return math.inf if measured else 0.0
    return measured / bound


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    The empirical growth exponent: ~1.0 for linear scaling, ~0.5 for
    square-root scaling, ~0 for constant.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    if den == 0:
        raise ValueError("x values are all equal")
    return num / den


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (0 if any value is 0)."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def fraction(hits: int, total: int) -> float:
    """Safe ratio for success-rate style statistics."""
    return hits / total if total else 0.0
