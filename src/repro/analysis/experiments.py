"""Experiment runners: one per quantitative claim of the paper.

The paper is a theory paper — its "evaluation" is the set of theorems
and lemmas indexed in ``EXPERIMENTS.md``.  Each ``run_eXX`` function
below regenerates the corresponding table: it builds the workload, runs
the relevant distributed algorithms on the CONGEST simulator, and
reports *measured vs claimed* quantities.  Benchmarks in
``benchmarks/`` wrap these runners; ``EXPERIMENTS.md`` records their
output.

Scale: ``"small"`` keeps every runner in seconds (CI-sized), ``"paper"``
uses larger instances for the record in EXPERIMENTS.md.

Runners whose instance grids are embarrassingly parallel (E1, E4–E7)
fan their cells out through
:func:`repro.analysis.parallel.parallel_map`: set ``REPRO_JOBS=auto``
(or an explicit worker count) to use multiple processes.  Every task
carries its own seed and the current engine name, and results merge in
task order, so the tables are identical at any worker count.  The
module-level ``_eXX_task`` functions exist because worker payloads
must be picklable.
"""

from __future__ import annotations

import math
import random
import tempfile
import time
from pathlib import Path
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.instances import (
    InstanceSpec,
    clear_instance_cache,
    hydrate,
    instance_cache_info,
    reference_instance,
)
from repro.analysis.metrics import bound_ratio, fraction, loglog_slope
from repro.analysis.parallel import parallel_map, resolve_jobs
from repro.analysis.tables import Table
from repro.apps.aggregation import min_outgoing_edges
from repro.apps.fragment_comm import fragment_aggregate
from repro.apps.mst import kruskal_reference, minimum_spanning_tree
from repro.apps.mst_baselines import (
    mst_collect_at_root,
    mst_kutten_peleg,
    mst_no_shortcut,
)
from repro.congest.engine import (
    ENGINES,
    engine_parameter,
    get_default_engine,
    using_engine,
)
from repro.congest.randomness import mix
from repro.congest.simulator import Simulator
from repro.core.construct_fast import (
    MODES as CONSTRUCT_MODES,
    construct_mode_parameter,
    get_default_mode,
    using_mode,
)
from repro.core.partwise_fast import (
    BACKENDS,
    backend_parameter,
    get_default_backend,
    using_backend,
)
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.congest.workloads import (
    AlarmStormAlgorithm,
    FloodAlgorithm,
    NeighborScanAlgorithm,
)
from repro.core import quality, quality_fast
from repro.core.batch import (
    BATCHES as BATCH_STRATEGIES,
    find_shortcut_doubling_batch,
    measure_batch,
    run_pipeline,
)
from repro.graphs.batch_csr import numpy_available as batch_numpy_available
from repro.core.core_fast import core_fast, sampling_parameters
from repro.core.core_slow import core_slow
from repro.core.doubling import find_shortcut_doubling
from repro.core.existence import best_certified, genus_bound, greedy_capped_shortcut
from repro.core.find_shortcut import find_shortcut
from repro.core.partwise import PartwiseEngine
from repro.core.tree_routing import (
    convergecast,
    make_task,
    task_edge_congestion,
)
from repro.core.verification import verification
from repro.failures.batch_sweep import scenarios_batch
from repro.failures.degradation import Baseline, measure_degradation
from repro.failures.repair import (
    assert_valid,
    rebuild_shortcut,
    repair_shortcut,
)
from repro.failures.scenarios import (
    enumerate_kwise,
    sample_bernoulli,
    sample_srlg,
    srlg_groups,
)
from repro.graphs import generators, partitions
from repro.graphs.hard_instances import square_instance
from repro.graphs.spanning_trees import SpanningTree
from repro.graphs.weights import hub_adversarial_weights, weighted
from repro.service.chaos import run_chaos_suite
from repro.service.client import spec_to_json
from repro.service.server import PARAM_DEFAULTS, ShortcutService
from repro.service.store import PersistentStore, spec_key


@dataclass
class ExperimentResult:
    """One regenerated table plus machine-checkable data."""

    experiment: str
    claim: str
    table: Table
    data: Dict = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        lines = [f"## {self.experiment}: {self.claim}", "", str(self.table)]
        if self.notes:
            lines += ["", self.notes]
        return "\n".join(lines)


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def standard_instance_specs(scale: str) -> List[Tuple[str, InstanceSpec]]:
    """Content-addressed specs of the shared instance pool.

    The pool itself (planar, genus-1, hub worst case, Delaunay) is
    unchanged; specs are what parallel task payloads ship to workers —
    see :mod:`repro.analysis.instances`.
    """
    big = scale == "paper"
    side = 14 if big else 9
    hub_n = 16 * side
    return [
        (
            "grid/voronoi",
            InstanceSpec("grid", (side, side), partition=("voronoi", side, 1)),
        ),
        (
            "grid/rows",
            InstanceSpec("grid", (side, side), partition=("rows", side, side)),
        ),
        (
            "torus/voronoi",
            InstanceSpec("torus", (side, side), partition=("voronoi", side, 2)),
        ),
        (
            "hub/arcs",
            InstanceSpec("hub", (hub_n, 8), partition=("arcs", hub_n, 8, 1)),
        ),
        (
            "delaunay/voronoi",
            InstanceSpec(
                "delaunay", (side * side, 3), partition=("voronoi", side, 3)
            ),
        ),
    ]


def standard_instances(scale: str) -> List[Tuple[str, Topology, "partitions.Partition"]]:
    """The shared instance pool: planar, genus-1, and hub worst case.

    Hydrated through the per-process instance cache, so repeated
    callers (and every experiment in a ``run_all``) share one set of
    built structures.
    """
    return [
        (name, instance.topology, instance.partition)
        for name, instance in (
            (name, hydrate(spec)) for name, spec in standard_instance_specs(scale)
        )
    ]


# ----------------------------------------------------------------------
# E1 — Lemma 1: dilation <= b (2 depth(T) + 1)
# ----------------------------------------------------------------------


def _e01_task(task):
    name, spec, engine = task
    instance = hydrate(spec)
    topology, tree, partition = instance.topology, instance.tree, instance.partition
    with using_engine(engine):
        point = best_certified(tree, partition)
        result = find_shortcut(
            topology, tree, partition, point.congestion, point.block, seed=11
        )
        report = quality.measure(result.shortcut, topology, with_dilation=True)
    bound = quality.lemma1_bound(report.block_parameter, tree.height)
    ratio = bound_ratio(report.dilation, bound)
    return (name, tree.height, report.block_parameter, report.dilation, bound, ratio)


@engine_parameter
def run_e01(scale: str = "small") -> ExperimentResult:
    table = Table(
        "E1 (Lemma 1): dilation of constructed shortcuts vs b(2D+1)",
        ["instance", "D", "b", "dilation", "bound", "ratio"],
    )
    engine = get_default_engine()
    rows = parallel_map(
        _e01_task,
        [
            (name, spec, engine)
            for name, spec in standard_instance_specs(scale)
        ],
    )
    ratios = []
    for row in rows:
        ratios.append(row[-1])
        table.add_row(*row)
    return ExperimentResult(
        "E1",
        "dilation <= b(2D+1) for every constructed shortcut",
        table,
        data={"ratios": ratios},
        notes="All ratios must be <= 1: Lemma 1 is a worst-case bound.",
    )


# ----------------------------------------------------------------------
# E2 — Lemma 2: subtree convergecast in <= D + c rounds
# ----------------------------------------------------------------------


@engine_parameter
def run_e02(scale: str = "small") -> ExperimentResult:
    table = Table(
        "E2 (Lemma 2): pipelined convergecast rounds vs D + c",
        ["instance", "tasks", "D", "c", "rounds", "D+c", "ratio"],
    )
    side = 16 if scale == "paper" else 10
    topology = generators.grid(side, side)
    tree = SpanningTree.bfs(topology, 0)
    rng = random.Random(7)
    ratios = []
    for n_tasks in (4, 16, 48, 96):
        tasks = []
        for tid in range(n_tasks):
            v = rng.randrange(topology.n)
            nodes = {v} | set(tree.ancestors(v))
            tasks.append(make_task(tree, tid, nodes))
        c = task_edge_congestion(tree, tasks)
        values = {t.key: {v: v for v in t.nodes} for t in tasks}
        combined, run = convergecast(topology, tree, tasks, values, "min", seed=3)
        for t in tasks:
            assert combined[t.key] == min(t.nodes)
        bound = tree.height + c
        ratio = bound_ratio(run.rounds, bound)
        ratios.append(ratio)
        table.add_row(
            f"grid{side}x{side}", n_tasks, tree.height, c, run.rounds, bound, ratio
        )
    return ExperimentResult(
        "E2",
        "subtree-family convergecast completes within D + c rounds",
        table,
        data={"ratios": ratios},
        notes="Root-path task families; the deterministic priority rule "
        "of Lemma 2 keeps every ratio <= 1 (up to the +O(1) start-up).",
    )


# ----------------------------------------------------------------------
# E3 — Theorem 2: part-parallel routing in O(b (D + c))
# ----------------------------------------------------------------------


@engine_parameter
def run_e03(scale: str = "small") -> ExperimentResult:
    table = Table(
        "E3 (Theorem 2): leader election rounds vs b(D + c)",
        ["instance", "D", "c", "b", "rounds", "4b(D+c)", "ratio", "correct"],
    )
    ratios = []
    for name, topology, partition in standard_instances(scale):
        tree = SpanningTree.bfs(topology, 0)
        point = best_certified(tree, partition)
        built = find_shortcut(
            topology, tree, partition, point.congestion, point.block, seed=13
        )
        report = quality.measure(built.shortcut, topology, with_dilation=False)
        ledger = RoundLedger()
        engine = PartwiseEngine(topology, built.shortcut, seed=5, ledger=ledger)
        b_bound = max(1, report.block_parameter)
        leaders, knowledge = engine.elect_leaders(b_bound)
        correct = all(
            leaders[i] == min(partition.members(i))
            for i in range(partition.size)
        )
        c = report.shortcut_congestion
        bound = 4 * b_bound * (tree.height + max(1, c))
        ratio = bound_ratio(ledger.total_rounds, bound)
        ratios.append(ratio)
        table.add_row(
            name, tree.height, c, b_bound,
            ledger.total_rounds, bound, ratio, correct,
        )
    return ExperimentResult(
        "E3",
        "leader election for all parts in parallel in O(b(D+c)) rounds",
        table,
        data={"ratios": ratios},
        notes="One superstep costs <= 2(D+c)+1; election runs b+1 "
        "supersteps, so 4b(D+c) normalises the constant.",
    )


# ----------------------------------------------------------------------
# E4 — Lemmas 3/6: Verification in O(b'(D + c)), exact answers
# ----------------------------------------------------------------------


def _e04_task(task):
    name, spec, engine = task
    instance = hydrate(spec)
    topology, tree, partition = instance.topology, instance.tree, instance.partition
    rows = []
    ratios = []
    all_exact = True
    with using_engine(engine):
        point = best_certified(tree, partition)
        outcome = core_slow(topology, tree, partition, point.congestion, seed=17)
        report = quality.measure(outcome.shortcut, topology, with_dilation=False)
        truth = quality_fast.block_counts(outcome.shortcut)
        for b_limit in {1, max(1, report.block_parameter)}:
            ledger = RoundLedger()
            verdict = verification(
                topology, outcome.shortcut, b_limit, seed=19, ledger=ledger
            )
            expected = frozenset(
                i for i, count in enumerate(truth) if count <= b_limit
            )
            exact = verdict.good_parts == expected
            all_exact = all_exact and exact
            c = max(1, report.shortcut_congestion)
            bound = 14 * b_limit * (tree.height + c)
            ratio = bound_ratio(ledger.total_rounds, bound)
            ratios.append(ratio)
            rows.append((name, b_limit, ledger.total_rounds, bound, ratio, exact))
    return rows, ratios, all_exact


@engine_parameter
def run_e04(scale: str = "small") -> ExperimentResult:
    table = Table(
        "E4 (Lemma 3/6): Verification rounds and exactness",
        ["instance", "b_limit", "rounds", "14 b'(D+c)", "ratio", "exact"],
    )
    engine = get_default_engine()
    outcomes = parallel_map(
        _e04_task,
        [
            (name, spec, engine)
            for name, spec in standard_instance_specs(scale)
        ],
    )
    ratios = []
    all_exact = True
    for rows, task_ratios, task_exact in outcomes:
        ratios.extend(task_ratios)
        all_exact = all_exact and task_exact
        for row in rows:
            table.add_row(*row)
    return ExperimentResult(
        "E4",
        "Verification finds exactly the parts with <= b' blocks, in O(b'(D+c))",
        table,
        data={"ratios": ratios, "all_exact": all_exact},
        notes="The protocol uses ~4 b' supersteps (flood, BFS, count, "
        "verdict) of <= 2(D+c)+1 rounds plus constant overhead.",
    )


# ----------------------------------------------------------------------
# E5 — Lemma 7: CoreSlow guarantees
# ----------------------------------------------------------------------


def _e05_task(task):
    name, spec, engine = task
    instance = hydrate(spec)
    topology, tree, partition = instance.topology, instance.tree, instance.partition
    with using_engine(engine):
        point = best_certified(tree, partition)
        c, b = point.congestion, point.block
        outcome = core_slow(topology, tree, partition, c, seed=23)
        report = quality.measure(outcome.shortcut, topology, with_dilation=False)
        counts = quality_fast.block_counts(outcome.shortcut)
    good = sum(1 for count in counts if count <= 3 * b)
    congestion_ok = report.shortcut_congestion <= 2 * c
    good_ok = good >= partition.size / 2
    bound = 3 * tree.height * (2 * c + 2)
    ratio = bound_ratio(outcome.rounds, bound)
    row = (
        name, c, report.shortcut_congestion, congestion_ok,
        good, partition.size, good_ok, outcome.rounds, bound, ratio,
    )
    return row, ratio, congestion_ok and good_ok


@engine_parameter
def run_e05(scale: str = "small") -> ExperimentResult:
    table = Table(
        "E5 (Lemma 7): CoreSlow congestion <= 2c, >= N/2 good parts, O(Dc) rounds",
        ["instance", "c", "congestion", "<=2c", "good", "N", ">=N/2", "rounds", "3D(2c+2)", "ratio"],
    )
    engine = get_default_engine()
    outcomes = parallel_map(
        _e05_task,
        [
            (name, spec, engine)
            for name, spec in standard_instance_specs(scale)
        ],
    )
    ratios = []
    all_ok = True
    for row, ratio, ok in outcomes:
        ratios.append(ratio)
        all_ok = all_ok and ok
        table.add_row(*row)
    return ExperimentResult(
        "E5",
        "CoreSlow: congestion <= 2c and >= N/2 good parts, O(D c) rounds",
        table,
        data={"ratios": ratios, "all_ok": all_ok},
    )


# ----------------------------------------------------------------------
# E6 — Lemma 5: CoreFast guarantees (w.h.p., over seeds)
# ----------------------------------------------------------------------


def _e06_task(task):
    """One instance × one seed chunk.

    The payload carries only the compact :class:`InstanceSpec`; each
    worker hydrates it through its per-process cache, so the instance
    is built (via the array fast paths) once per worker rather than
    pickled once per chunk."""
    spec, c, b, seed_chunk, engine = task
    instance = hydrate(spec)
    topology, tree, partition = instance.topology, instance.tree, instance.partition
    triples = []
    with using_engine(engine):
        for seed in seed_chunk:
            outcome = core_fast(
                topology, tree, partition, c, shared_seed=mix(97, seed), seed=seed
            )
            report = quality.measure(outcome.shortcut, topology, with_dilation=False)
            counts = quality_fast.block_counts(outcome.shortcut)
            good = sum(1 for count in counts if count <= 3 * b)
            triples.append((report.shortcut_congestion, good, outcome.rounds))
    return triples


@engine_parameter
def run_e06(scale: str = "small", seeds: Optional[Sequence[int]] = None) -> ExperimentResult:
    if seeds is None:
        seeds = range(10 if scale == "small" else 25)
    seeds = list(seeds)
    table = Table(
        "E6 (Lemma 5): CoreFast over seeds: congestion <= 8c, >= N/2 good",
        ["instance", "c", "tau", "max congestion", "<=8c rate", ">=N/2 rate", "max rounds"],
    )
    engine = get_default_engine()
    # Enough chunks per instance to saturate the workers, few enough
    # that each instance payload is pickled O(jobs) times, not once
    # per seed.  Chunk boundaries never affect the merged output.
    n_chunks = min(resolve_jobs(), len(seeds)) or 1
    chunk_size = math.ceil(len(seeds) / n_chunks)
    seed_chunks = [
        seeds[i : i + chunk_size] for i in range(0, len(seeds), chunk_size)
    ]
    instance_info = []
    tasks = []
    for name, spec in standard_instance_specs(scale):
        instance = hydrate(spec)
        point = best_certified(instance.tree, instance.partition)
        c, b = point.congestion, point.block
        _p, tau = sampling_parameters(instance.topology.n, c)
        instance_info.append((name, c, tau, instance.partition.size))
        tasks.extend((spec, c, b, chunk, engine) for chunk in seed_chunks)
    results = parallel_map(_e06_task, tasks)
    per_seed = [triple for task_triples in results for triple in task_triples]
    rates = []
    for index, (name, c, tau, n_parts) in enumerate(instance_info):
        chunk = per_seed[index * len(seeds) : (index + 1) * len(seeds)]
        congestion_hits = sum(1 for sc, _good, _r in chunk if sc <= 8 * c)
        good_hits = sum(1 for _sc, good, _r in chunk if good >= n_parts / 2)
        max_congestion = max(sc for sc, _good, _r in chunk)
        max_rounds = max(rounds for _sc, _good, rounds in chunk)
        c_rate = fraction(congestion_hits, len(seeds))
        g_rate = fraction(good_hits, len(seeds))
        rates.append((c_rate, g_rate))
        table.add_row(name, c, tau, max_congestion, c_rate, g_rate, max_rounds)
    return ExperimentResult(
        "E6",
        "CoreFast: congestion <= 8c w.h.p. and >= N/2 good parts",
        table,
        data={"rates": rates},
        notes="Rates are success fractions over independent shared seeds.",
    )


# ----------------------------------------------------------------------
# E7 — Theorem 3: FindShortcut quality and round scaling
# ----------------------------------------------------------------------


def _e07_task(task):
    side, engine, mode = task
    spec = InstanceSpec("grid", (side, side), partition=("voronoi", side, 4))
    instance = hydrate(spec)
    topology, tree, partition = instance.topology, instance.tree, instance.partition
    with using_engine(engine):
        point = best_certified(tree, partition)
        result = find_shortcut(
            topology, tree, partition, point.congestion, point.block,
            seed=29, mode=mode,
        )
        report = quality.measure(result.shortcut, topology, with_dilation=False)
    return (
        topology.n, partition.size, point.congestion, point.block,
        result.iterations, result.rounds,
        report.shortcut_congestion, report.block_parameter,
    )


@engine_parameter
@construct_mode_parameter
def run_e07(scale: str = "small") -> ExperimentResult:
    mode = get_default_mode()
    table = Table(
        f"E7 (Theorem 3): FindShortcut on grids of growing size (mode={mode})",
        ["n", "N", "c", "b", "iters", "ceil(log2 N)+1", "congestion", "c*8*iters", "block", "3b", "rounds"],
    )
    sides = (6, 9, 12, 16) if scale == "small" else (8, 12, 16, 22, 28)
    if mode == "direct":
        # Simulation-free construction reaches grid sizes the simulated
        # pipeline cannot touch; the differential suite licenses the
        # outputs as bit-for-bit identical.
        sides = sides + ((20,) if scale == "small" else (40, 56, 80))
    engine = get_default_engine()
    outcomes = parallel_map(_e07_task, [(side, engine, mode) for side in sides])
    iteration_ok = True
    quality_ok = True
    ns, rounds_list = [], []
    for n, n_parts, c, b, iterations, rounds, built_congestion, built_block in outcomes:
        iter_bound = math.ceil(_log2(n_parts)) + 1
        iteration_ok = iteration_ok and iterations <= iter_bound + 2
        quality_ok = quality_ok and built_block <= 3 * b
        ns.append(n)
        rounds_list.append(rounds)
        table.add_row(
            n, n_parts, c, b,
            iterations, iter_bound,
            built_congestion, 8 * c * iterations,
            built_block, 3 * b, rounds,
        )
    return ExperimentResult(
        "E7",
        "FindShortcut: O(log N) iterations, congestion O(c log N), block <= 3b",
        table,
        data={
            "iteration_ok": iteration_ok,
            "quality_ok": quality_ok,
            "ns": ns,
            "rounds": rounds_list,
            "construct_mode": mode,
        },
        notes=(
            "In direct mode the rounds column is the analytic ledger "
            "(exact core phases, Lemma 3 bound for verification); the "
            "combinatorial outputs are bit-for-bit the simulated ones."
            if mode == "direct"
            else ""
        ),
    )


# ----------------------------------------------------------------------
# E8 — Theorem 1 + Corollary 1: genus sweep
# ----------------------------------------------------------------------


@engine_parameter
def run_e08(scale: str = "small") -> ExperimentResult:
    table = Table(
        "E8 (Cor. 1): construction on genus-g chains with Theorem 1 parameters",
        ["g", "n", "D", "c=gDlogD", "b=logD", "iters", "congestion", "block", "rounds", "rounds/gDlog2DlogN"],
    )
    side = 5 if scale == "small" else 7
    ratios = []
    for g in (0, 1, 2, 3):
        topology = generators.genus_chain(g, side, side)
        partition = partitions.voronoi(topology, max(2, topology.n // 12), 5)
        tree = SpanningTree.bfs(topology, 0)
        c, b = genus_bound(g, tree.height)
        result = find_shortcut(topology, tree, partition, c, b, seed=31)
        report = quality.measure(result.shortcut, topology, with_dilation=False)
        denom = (
            max(1, g) * tree.height * _log2(tree.height) ** 2
            * _log2(partition.size)
        )
        ratio = result.rounds / denom
        ratios.append(ratio)
        table.add_row(
            g, topology.n, tree.height, c, b, result.iterations,
            report.shortcut_congestion, report.block_parameter,
            result.rounds, ratio,
        )
    return ExperimentResult(
        "E8",
        "genus-g graphs admit O(gD logD logN)-congestion shortcuts, built in O(gD log^2 D logN)",
        table,
        data={"ratios": ratios},
        notes="The rounds/bound column stays bounded as g grows — the "
        "construction never needed an embedding.",
    )


# ----------------------------------------------------------------------
# E9 — Lemma 4: MST rounds on bounded-genus graphs
# ----------------------------------------------------------------------

# Side of the simulated E9 grid per scale; E17's extension families are
# gated against >= 10x this instance (bench_e17_apps.py).
E9_GRID_SIDES = {"small": 7, "paper": 10}


@engine_parameter
@backend_parameter
@construct_mode_parameter
def run_e09(scale: str = "small") -> ExperimentResult:
    backend = get_default_backend()
    mode = get_default_mode()
    table = Table(
        f"E9 (Lemma 4): shortcut Boruvka MST (params=genus, backend={backend})",
        ["instance", "n", "D", "phases", "O(log n)?", "rounds", "constr r", "agg r", "exact"],
    )
    side = E9_GRID_SIDES["paper" if scale == "paper" else "small"]
    if scale == "paper":
        cases = [("grid", generators.grid(side, side), 0), ("torus", generators.torus(8, 8), 1)]
    else:
        cases = [("grid", generators.grid(side, side), 0), ("torus", generators.torus(6, 6), 1)]
    if backend == "direct" and mode == "direct":
        # The simulation-free stack reaches instances an order of
        # magnitude past the simulated grid; outputs stay bit-for-bit
        # licensed by tests/apps/test_app_equivalence.py.
        if scale == "paper":
            cases += [
                ("grid-large", generators.grid(32, 32), 0),
                ("torus-large", generators.torus(24, 24), 1),
            ]
        else:
            cases += [
                ("grid-large", generators.grid(14, 14), 0),
                ("torus-large", generators.torus(12, 12), 1),
            ]
    all_exact = True
    for name, base, g in cases:
        topology = weighted(base, seed=41)
        result = minimum_spanning_tree(topology, params="genus", genus=g, seed=43)
        _edges, ref_weight = kruskal_reference(topology)
        exact = result.weight == ref_weight
        all_exact = all_exact and exact
        phase_bound = 8 * math.ceil(_log2(topology.n)) + 8
        table.add_row(
            name, topology.n, topology.diameter(), result.phases,
            result.phases <= phase_bound, result.rounds,
            sum(r.construct_rounds for r in result.phase_records),
            sum(r.aggregate_rounds for r in result.phase_records),
            exact,
        )
    return ExperimentResult(
        "E9",
        "MST on genus-g graphs in O(gD log^2 D log^2 n) rounds, exact output",
        table,
        data={"all_exact": all_exact, "backend": backend, "construct_mode": mode},
        notes="The constr/agg columns split each run's ledger into "
        "shortcut-construction rounds vs Theorem 2 aggregation and "
        "broadcast rounds (summed over Borůvka phases).",
    )


# ----------------------------------------------------------------------
# E10 — baselines and the crossover
# ----------------------------------------------------------------------


@engine_parameter
@backend_parameter
@construct_mode_parameter
def run_e10(scale: str = "small") -> ExperimentResult:
    """Round growth of shortcut MST vs baselines as n grows at fixed D.

    On the planar hub family the diameter stays ~O(spoke distance)
    while n grows, so the asymptotics — and not the polylog constants —
    decide the ranking: no-shortcut Borůvka pays component diameters
    (slope ~1), Kutten–Peleg pays ~sqrt(n) (slope ~0.5), and the
    shortcut MST pays polylog (slope ~0).  The Peleg–Rubinovich row
    shows the regime where the Ω̃(√n) lower bound bites everyone.

    With the direct backend + construction kernels the grid extends an
    order of magnitude into the √n-lower-bound regime; the
    pipelined-upcast baselines (kutten-peleg, collect) have no direct
    twin, so the extended rows time only the fully-direct algorithms.
    """
    backend = get_default_backend()
    table = Table(
        f"E10: round growth on the hub family (fixed D) + the lower-bound graph (backend={backend})",
        ["instance", "n", "D", "shortcut", "constr r", "agg r", "kutten-peleg", "no-shortcut", "collect"],
    )
    sizes = (96, 192, 384) if scale == "small" else (128, 256, 512, 1024)
    extended = ()
    if backend == "direct" and get_default_mode() == "direct":
        extended = (768,) if scale == "small" else (2048, 4096)
    ns, shortcut_rounds, kp_rounds, plain_rounds = [], [], [], []
    for hub_n in sizes + extended:
        topology = hub_adversarial_weights(
            generators.cycle_with_hub(hub_n, 8), hub_n, seed=47
        )
        shortcut_result = minimum_spanning_tree(topology, params="doubling", seed=59)
        plain = mst_no_shortcut(topology, seed=59)
        _edges, ref = kruskal_reference(topology)
        baseline_rows: List[object] = []
        if hub_n in sizes:
            kp = mst_kutten_peleg(topology, seed=59)
            collect = mst_collect_at_root(topology, seed=59)
            for result in (shortcut_result, kp, plain, collect):
                assert result.weight == ref
            kp_rounds.append(kp.rounds)
            baseline_rows = [kp.rounds, plain.rounds, collect.rounds]
        else:
            for result in (shortcut_result, plain):
                assert result.weight == ref
            baseline_rows = ["—", plain.rounds, "—"]
        ns.append(topology.n)
        shortcut_rounds.append(shortcut_result.rounds)
        plain_rounds.append(plain.rounds)
        table.add_row(
            f"hub({hub_n})", topology.n, topology.diameter(),
            shortcut_result.rounds,
            sum(r.construct_rounds for r in shortcut_result.phase_records),
            sum(r.aggregate_rounds for r in shortcut_result.phase_records),
            *baseline_rows,
        )
    pr = weighted(square_instance(7 if scale == "small" else 10).topology, seed=53)
    pr_shortcut = minimum_spanning_tree(pr, params="doubling", seed=59)
    pr_kp = mst_kutten_peleg(pr, seed=59)
    pr_plain = mst_no_shortcut(pr, seed=59)
    pr_collect = mst_collect_at_root(pr, seed=59)
    _edges, pr_ref = kruskal_reference(pr)
    for result in (pr_shortcut, pr_kp, pr_plain, pr_collect):
        assert result.weight == pr_ref
    table.add_row(
        "peleg-rubinovich", pr.n, pr.diameter(),
        pr_shortcut.rounds,
        sum(r.construct_rounds for r in pr_shortcut.phase_records),
        sum(r.aggregate_rounds for r in pr_shortcut.phase_records),
        pr_kp.rounds, pr_plain.rounds, pr_collect.rounds,
    )
    slopes = {
        "shortcut": loglog_slope(ns, shortcut_rounds),
        "kutten_peleg": loglog_slope(ns[: len(kp_rounds)], kp_rounds),
        "no_shortcut": loglog_slope(ns, plain_rounds),
    }
    return ExperimentResult(
        "E10",
        "Shortcuts win asymptotically on low-diameter planar topologies; "
        "on the lower-bound family nobody beats ~sqrt(n)",
        table,
        data={
            "ns": ns,
            "shortcut": shortcut_rounds,
            "kutten_peleg": kp_rounds,
            "no_shortcut": plain_rounds,
            "slopes": slopes,
        },
        notes=(
            f"log-log growth slopes vs n at fixed D — shortcut: "
            f"{slopes['shortcut']:.2f}, kutten-peleg: "
            f"{slopes['kutten_peleg']:.2f}, no-shortcut: "
            f"{slopes['no_shortcut']:.2f}.  The ordering (shortcut "
            f"flattest, no-shortcut steepest) is the paper's claim; at "
            f"small n the polylog constants still favour the baselines."
        ),
    )


# ----------------------------------------------------------------------
# E11 — Appendix A: doubling without parameter knowledge
# ----------------------------------------------------------------------


@engine_parameter
@construct_mode_parameter
def run_e11(scale: str = "small") -> ExperimentResult:
    mode = get_default_mode()
    table = Table(
        f"E11 (Appendix A): doubling search vs known parameters (mode={mode})",
        ["instance", "trials", "iters", "final c", "final b", "congestion", "block", "rounds", "known-rounds"],
    )
    found_better = False
    # Direct mode runs the full instance pool; the simulated search is
    # kept to the three cheapest so the table regenerates in seconds.
    pool = standard_instances(scale)
    if mode != "direct":
        pool = pool[:3]
    for name, topology, partition in pool:
        tree = SpanningTree.bfs(topology, 0)
        outcome = find_shortcut_doubling(topology, tree, partition, seed=61)
        report = quality.measure(outcome.result.shortcut, topology, with_dilation=False)
        point = best_certified(tree, partition)
        known = find_shortcut(
            topology, tree, partition, point.congestion, point.block, seed=61
        )
        if report.shortcut_congestion < quality.shortcut_congestion(known.shortcut):
            found_better = True
        consumed = sum(trial.iterations for trial in outcome.trials)
        table.add_row(
            name, len(outcome.trials), consumed, outcome.c, outcome.b,
            report.shortcut_congestion, report.block_parameter,
            outcome.rounds, known.rounds,
        )
    return ExperimentResult(
        "E11",
        "doubling removes the (b, c) knowledge requirement at ~log(bc) extra cost",
        table,
        data={"found_better": found_better, "construct_mode": mode},
        notes="As Appendix A remarks, the search can return far better "
        "shortcuts than the worst-case parameters.  Failed trials "
        "warm-start their successor (frozen parts carry forward); the "
        "iters column counts the iterations consumed across all trials.",
    )


# ----------------------------------------------------------------------
# E12 — CoreSlow vs CoreFast trade-off
# ----------------------------------------------------------------------


@engine_parameter
@construct_mode_parameter
def run_e12(scale: str = "small") -> ExperimentResult:
    mode = get_default_mode()
    table = Table(
        f"E12 (Sec. 5.3 vs 5.4): rounds of CoreSlow (O(Dc)) vs CoreFast (O(Dlogn + c)) (mode={mode})",
        ["c", "slow rounds", "fast rounds", "fast/slow"],
    )
    # The direct kernels report the exact simulated round counts, so
    # the trade-off curve extends to grids and caps the simulator
    # cannot sweep in reasonable time.
    if mode == "direct":
        side = 16 if scale == "small" else 40
        c_grid = (1, 2, 4, 8, 16, 32, 64, 128)
    else:
        side = 12 if scale == "small" else 18
        c_grid = (1, 2, 4, 8, 16, 32)
    topology = generators.grid(side, side)
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.grid_rows(side, side)
    cs, slows, fasts = [], [], []
    for c in c_grid:
        slow = core_slow(topology, tree, partition, c, seed=67)
        fast = core_fast(topology, tree, partition, c, shared_seed=71, seed=67)
        cs.append(c)
        slows.append(slow.rounds)
        fasts.append(fast.rounds)
        table.add_row(c, slow.rounds, fast.rounds, fast.rounds / slow.rounds)
    # CoreSlow saturates once the cap stops binding (2c >= #parts):
    # rounds plateau at the unconstrained streaming cost, so the growth
    # exponent is measured over the linear regime only (minus the first
    # point, which carries the constant start-up overhead).
    linear = [(c, r) for c, r in zip(cs, slows) if 2 * c < partition.size]
    tail = linear[1:] if len(linear) > 2 else linear
    slope_slow = loglog_slope([c for c, _ in tail], [r for _, r in tail])
    return ExperimentResult(
        "E12",
        "CoreSlow grows linearly in c; CoreFast stays ~flat until c dominates",
        table,
        data={
            "cs": cs,
            "slow": slows,
            "fast": fasts,
            "slope_slow": slope_slow,
            "construct_mode": mode,
        },
        notes=f"log-log slope of CoreSlow rounds vs c (linear regime, "
        f"2c < N): {slope_slow:.2f} (~1 expected); past 2c >= N the cap "
        "never binds and the curve plateaus.",
    )


# ----------------------------------------------------------------------
# E13 — the motivation: part diameter >> D
# ----------------------------------------------------------------------


@engine_parameter
@backend_parameter
@construct_mode_parameter
def run_e13(scale: str = "small") -> ExperimentResult:
    backend = get_default_backend()
    table = Table(
        f"E13 (Sec. 1.2): aggregation rounds, intra-part vs shortcut (backend={backend})",
        ["n_cycle", "D", "max part diam", "no-shortcut rounds", "shortcut rounds", "speedup"],
    )
    sizes = (128, 256, 512) if scale == "small" else (256, 512, 1024)
    if backend == "direct" and get_default_mode() == "direct":
        sizes = sizes + ((1024, 2048) if scale == "small" else (2048, 4096, 8192))
    speedups = []
    diam_ratio = []
    for n_cycle in sizes:
        topology = generators.cycle_with_hub(n_cycle, 8)
        partition = partitions.cycle_arcs(n_cycle, 8, extra_nodes=1)
        labels = {
            v: partition.part_of(v) for v in topology.nodes
        }
        values = {v: v for v in topology.nodes if labels[v] is not None}
        ledger_plain = RoundLedger()
        plain = fragment_aggregate(
            topology, labels, values, "min", seed=73, ledger=ledger_plain
        )
        tree = SpanningTree.bfs(topology, n_cycle)  # root at the hub
        outcome = find_shortcut_doubling(topology, tree, partition, seed=73)
        ledger_fast = RoundLedger()
        engine = PartwiseEngine(
            topology, outcome.result.shortcut, seed=73, ledger=ledger_fast
        )
        fast = engine.minimum_per_part(values, 3 * outcome.result.b)
        for i in range(partition.size):
            expect = min(partition.members(i))
            for v in partition.members(i):
                assert plain[v] == expect and fast[v] == expect
        d = topology.diameter()
        max_diam = max(partition.part_diameters(topology))
        speedup = ledger_plain.total_rounds and (
            ledger_plain.total_rounds / max(1, ledger_fast.total_rounds)
        )
        speedups.append(speedup)
        diam_ratio.append(max_diam / d)
        table.add_row(
            n_cycle, d, max_diam,
            ledger_plain.total_rounds, ledger_fast.total_rounds, speedup,
        )
    return ExperimentResult(
        "E13",
        "intra-part aggregation pays part diameter >> D; shortcuts pay ~D",
        table,
        data={"speedups": speedups, "diam_ratio": diam_ratio},
        notes="The hub graph has D = O(1) while arcs have diameter "
        "Theta(n/8); the speedup grows linearly with n.",
    )


# ----------------------------------------------------------------------
# E14 — engine throughput: rounds/sec per graph family, per engine
# ----------------------------------------------------------------------


def engine_families(scale: str) -> List[Tuple[str, Topology, "NodeAlgorithm", int]]:
    """Benchmark families: (name, topology, workload, seed), small→large.

    Each workload is engine-bound (trivial per-node compute, heavy
    traffic) so the measured wall time is the simulator's own overhead,
    not the algorithm's.  The list is ordered by message volume; the
    last entry is the "largest scale" quoted in BENCH_simulator.json.
    """
    big = scale == "paper"
    side = 40 if big else 24
    rounds = 60 if big else 30
    grid = generators.grid(side, side)
    torus = generators.torus(side // 2, side // 2)
    hub = generators.cycle_with_hub(16 * side, 8)
    return [
        ("alarm-storm/grid", grid, AlarmStormAlgorithm(50, 6), 3),
        ("token+scan/hub", hub, NeighborScanAlgorithm(rounds), 5),
        ("scan/torus", torus, NeighborScanAlgorithm(2 * rounds), 7),
        ("flood/grid", grid, FloodAlgorithm(2 * rounds), 11),
    ]


def run_e14(scale: str = "small", repeats: int = 3) -> ExperimentResult:
    """Throughput of every registered engine on the workload families.

    Also cross-checks conformance on the fly: every engine must report
    identical ``rounds`` and ``messages`` on every family (the full
    differential suite lives in ``tests/congest/test_engine_equivalence.py``).
    The ``data`` dict carries the ``BENCH_simulator.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.
    """
    engine_names = sorted(ENGINES)
    table = Table(
        "E14: simulator engine throughput (best-of-%d wall time)" % repeats,
        ["family", "n", "m", "rounds", "messages"]
        + [f"{name} s" for name in engine_names]
        + [f"{name} r/s" for name in engine_names]
        + ["speedup"],
    )
    families = []
    speedups = []
    for name, topology, workload, seed in engine_families(scale):
        per_engine: Dict[str, Dict[str, float]] = {}
        baseline_result = None
        baseline_engine = None
        for engine_name in engine_names:
            best = math.inf
            result = None
            for _ in range(repeats):
                simulator = Simulator(
                    topology, workload, seed=seed, engine=engine_name
                )
                start = time.perf_counter()
                result = simulator.run()
                best = min(best, time.perf_counter() - start)
            if baseline_result is None:
                baseline_result = result
                baseline_engine = engine_name
            elif (result.rounds, result.messages) != (
                baseline_result.rounds,
                baseline_result.messages,
            ):
                raise AssertionError(
                    f"engines disagree on {name}: {engine_name} got "
                    f"{result!r} but {baseline_engine} got {baseline_result!r}"
                )
            per_engine[engine_name] = {
                "wall_s": best,
                "rounds_per_s": result.rounds / best if best > 0 else math.inf,
                "messages_per_s": result.messages / best if best > 0 else math.inf,
            }
        speedup = per_engine["reference"]["wall_s"] / per_engine["batched"]["wall_s"]
        speedups.append(speedup)
        families.append(
            {
                "family": name,
                "n": topology.n,
                "m": topology.m,
                "workload": workload.name,
                "rounds": baseline_result.rounds,
                "messages": baseline_result.messages,
                "engines": per_engine,
                "speedup": speedup,
            }
        )
        table.add_row(
            name, topology.n, topology.m,
            baseline_result.rounds, baseline_result.messages,
            *[round(per_engine[e]["wall_s"], 4) for e in engine_names],
            *[int(per_engine[e]["rounds_per_s"]) for e in engine_names],
            round(speedup, 2),
        )
    return ExperimentResult(
        "E14",
        "the batched engine outpaces the reference engine at identical semantics",
        table,
        data={
            "schema": "repro.bench_simulator.v1",
            "scale": scale,
            "engines": engine_names,
            "families": families,
            "speedups": speedups,
            "largest_scale_speedup": speedups[-1],
        },
        notes="Workloads are engine-bound (trivial node compute); the "
        "last family is the largest message volume and anchors the "
        "tracked speedup.",
    )


# ----------------------------------------------------------------------
# E15 — quality-kernel throughput: fast vs reference measures
# ----------------------------------------------------------------------


def quality_families(scale: str) -> List[Tuple[str, Topology, "partitions.Partition", int]]:
    """Benchmark families for the quality kernels, small→large.

    Each entry is ``(name, topology, partition, congestion_cap)``; the
    shortcut under measurement is built *centrally* with
    ``greedy_capped_shortcut`` so the timed work is measuring quality,
    not constructing shortcuts.  Ordered by ``measure()`` cost; the
    last entry (largest parts, heaviest all-pairs dilation) anchors the
    headline speedup in ``BENCH_quality.json``.
    """
    big = scale == "paper"
    side = 36 if big else 22
    half = side // 2
    grid_small = generators.grid(half, half)
    torus = generators.torus(half, half)
    hub_n = 16 * half
    hub = generators.cycle_with_hub(hub_n, 8)
    grid_large = generators.grid(side, side)
    return [
        ("hub/arcs", hub, partitions.cycle_arcs(hub_n, 8, extra_nodes=1), 2),
        ("grid/voronoi", grid_small, partitions.voronoi(grid_small, half, 1), 2),
        ("torus/voronoi", torus, partitions.voronoi(torus, 6, 2), 2),
        ("grid-large/voronoi", grid_large, partitions.voronoi(grid_large, 8, 3), 3),
    ]


def run_e15(scale: str = "small", repeats: int = 3) -> ExperimentResult:
    """Throughput of both quality kernels on the family pool.

    Also cross-checks equivalence on the fly: the fast and reference
    kernels must return an identical :class:`~repro.core.quality.QualityReport`
    on every family (the full differential suite lives in
    ``tests/core/test_quality_equivalence.py``).  The ``data`` dict
    carries the ``BENCH_quality.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.
    """
    kernel_names = list(quality.KERNELS)
    table = Table(
        "E15: quality-kernel throughput (best-of-%d wall time)" % repeats,
        ["family", "n", "m", "N", "congestion", "dilation"]
        + [f"{name} s" for name in kernel_names]
        + ["speedup"],
    )
    families = []
    speedups = []
    pool_shortcuts = []
    pool_topologies = []
    for name, topology, partition, cap in quality_families(scale):
        tree = SpanningTree.bfs(topology, 0)
        shortcut, _unusable = greedy_capped_shortcut(tree, partition, cap)
        pool_shortcuts.append(shortcut)
        pool_topologies.append(topology)
        per_kernel: Dict[str, Dict[str, float]] = {}
        reports: Dict[str, quality.QualityReport] = {}
        for kernel in kernel_names:
            best = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                report = quality.measure(
                    shortcut, topology, with_dilation=True, kernel=kernel
                )
                best = min(best, time.perf_counter() - start)
            reports[kernel] = report
            per_kernel[kernel] = {
                "wall_s": best,
                "measures_per_s": 1.0 / best if best > 0 else math.inf,
            }
        if reports["fast"] != reports["reference"]:
            raise AssertionError(
                f"quality kernels disagree on {name}: fast="
                f"{reports['fast']!r} but reference={reports['reference']!r}"
            )
        report = reports["reference"]
        speedup = per_kernel["reference"]["wall_s"] / per_kernel["fast"]["wall_s"]
        speedups.append(speedup)
        families.append(
            {
                "family": name,
                "n": topology.n,
                "m": topology.m,
                "parts": partition.size,
                "congestion": report.congestion,
                "dilation": report.dilation,
                "block_parameter": report.block_parameter,
                "kernels": per_kernel,
                "speedup": speedup,
            }
        )
        table.add_row(
            name, topology.n, topology.m, partition.size,
            report.congestion, report.dilation,
            *[round(per_kernel[k]["wall_s"], 5) for k in kernel_names],
            round(speedup, 2),
        )
    # Batch row: the whole pool measured through the batch axis, loop
    # vs vector (the vectorized kernels amortize across instances; E21
    # gates the grid-scale speedup, this row tracks the pool here).
    batch_data = None
    if batch_numpy_available():
        batch_walls: Dict[str, float] = {}
        batch_reports = {}
        for strategy in BATCH_STRATEGIES:
            best = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                reports = measure_batch(
                    pool_shortcuts, pool_topologies, batch=strategy
                )
                best = min(best, time.perf_counter() - start)
            batch_walls[strategy] = best
            batch_reports[strategy] = reports
        if batch_reports["vector"] != batch_reports["loop"]:
            raise AssertionError(
                "batch strategies disagree on the quality pool: "
                f"vector={batch_reports['vector']!r} but "
                f"loop={batch_reports['loop']!r}"
            )
        batch_speedup = batch_walls["loop"] / batch_walls["vector"]
        batch_data = {
            "strategies": {
                strategy: {"wall_s": batch_walls[strategy]}
                for strategy in BATCH_STRATEGIES
            },
            "instances": len(pool_shortcuts),
            "speedup": batch_speedup,
        }
        pool_reports = batch_reports["loop"]
        table.add_row(
            f"batch-pool[{len(pool_shortcuts)}]",
            sum(topology.n for topology in pool_topologies),
            sum(topology.m for topology in pool_topologies),
            sum(shortcut.size for shortcut in pool_shortcuts),
            max(report.congestion for report in pool_reports),
            max(report.dilation for report in pool_reports),
            round(batch_walls["loop"], 5),
            round(batch_walls["vector"], 5),
            round(batch_speedup, 2),
        )
    return ExperimentResult(
        "E15",
        "the flat-array quality kernels outpace the reference at identical reports",
        table,
        data={
            "schema": "repro.bench_quality.v1",
            "scale": scale,
            "kernels": kernel_names,
            "families": families,
            "speedups": speedups,
            "largest_scale_speedup": speedups[-1],
            "batch": batch_data,
        },
        notes="Shortcuts are built centrally so the timing isolates "
        "quality measurement; the last family has the largest parts "
        "(heaviest dilation scan) and anchors the tracked speedup.  "
        "The batch-pool row times the whole pool through "
        "measure_batch: its kernel columns hold the loop and vector "
        "strategies' wall seconds (absent without the fast-math "
        "extra); E21 tracks the grid-scale batch speedup.",
    )


# ----------------------------------------------------------------------
# E16 — construction throughput: direct kernels vs simulation
# ----------------------------------------------------------------------


def construct_families(scale: str) -> List[Tuple[str, Topology, "partitions.Partition", int]]:
    """Benchmark families for the construction stack, small→large.

    Each entry is ``(name, topology, partition, seed)``; E16 runs the
    full parameter-oblivious doubling search (share randomness →
    CoreFast ⟲ Verification → freeze, warm-started doubling) on every
    family in both modes.  Ordered by simulate-mode cost; the last
    entry anchors the headline speedup in ``BENCH_construct.json``.
    """
    big = scale == "paper"
    side_a = 12 if big else 10
    side_b = 10 if big else 8
    hub_n = 384 if big else 160
    side_c = 20 if big else 14
    grid_small = generators.grid(side_a, side_a)
    torus = generators.torus(side_b, side_b)
    hub = generators.cycle_with_hub(hub_n, 8)
    grid_large = generators.grid(side_c, side_c)
    return [
        ("grid/voronoi", grid_small, partitions.voronoi(grid_small, side_a, 1), 43),
        ("torus/voronoi", torus, partitions.voronoi(torus, side_b, 2), 47),
        ("hub/arcs", hub, partitions.cycle_arcs(hub_n, 8, extra_nodes=1), 53),
        ("grid-large/voronoi", grid_large, partitions.voronoi(grid_large, side_c, 3), 59),
    ]


def run_e16(scale: str = "small", repeats: int = 2) -> ExperimentResult:
    """Throughput of both construction modes on the family pool.

    Also cross-checks conformance on the fly: both modes must return
    identical doubling trials, shortcut edge maps, good histories, and
    iteration counts on every family (the full differential suite
    lives in ``tests/core/test_construct_equivalence.py``).  The
    ``data`` dict carries the ``BENCH_construct.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.
    """
    mode_names = list(CONSTRUCT_MODES)
    table = Table(
        "E16: construction throughput (best-of-%d wall time)" % repeats,
        ["family", "n", "N", "trials", "iters"]
        + [f"{name} s" for name in mode_names]
        + ["speedup"],
    )
    families = []
    speedups = []
    for name, topology, partition, seed in construct_families(scale):
        tree = SpanningTree.bfs(topology, 0)
        per_mode: Dict[str, Dict[str, float]] = {}
        outcomes = {}
        for mode in mode_names:
            best = math.inf
            outcome = None
            for _ in range(repeats):
                start = time.perf_counter()
                outcome = find_shortcut_doubling(
                    topology, tree, partition, seed=seed, mode=mode
                )
                best = min(best, time.perf_counter() - start)
            outcomes[mode] = outcome
            per_mode[mode] = {
                "wall_s": best,
                "constructions_per_s": 1.0 / best if best > 0 else math.inf,
                "rounds": outcome.rounds,
            }
        simulate, direct = outcomes["simulate"], outcomes["direct"]
        direct_wall = per_mode["direct"]["wall_s"]
        diverged = [
            label
            for label, match in (
                (
                    "trials",
                    [t.signature for t in direct.trials]
                    == [t.signature for t in simulate.trials],
                ),
                (
                    "edge_map",
                    direct.result.shortcut.edge_map
                    == simulate.result.shortcut.edge_map,
                ),
                (
                    "good_history",
                    direct.result.good_history == simulate.result.good_history,
                ),
            )
            if not match
        ]
        if diverged:
            raise AssertionError(
                f"construction modes disagree on {name} "
                f"({', '.join(diverged)} diverged): direct trials="
                f"{direct.trials!r} but simulate trials={simulate.trials!r}"
            )
        speedup = (
            per_mode["simulate"]["wall_s"] / direct_wall
            if direct_wall > 0
            else math.inf
        )
        speedups.append(speedup)
        families.append(
            {
                "family": name,
                "n": topology.n,
                "m": topology.m,
                "parts": partition.size,
                "trials": len(simulate.trials),
                "iterations": simulate.result.iterations,
                "modes": per_mode,
                "speedup": speedup,
            }
        )
        table.add_row(
            name, topology.n, partition.size,
            len(simulate.trials), simulate.result.iterations,
            *[round(per_mode[m]["wall_s"], 4) for m in mode_names],
            round(speedup, 2),
        )
    # Batch row: a same-family grid through the fused construct →
    # measure → verify pipeline, loop vs vector (E21 gates the
    # paper-scale grid; this row tracks a smaller sweep here).
    batch_data = None
    if batch_numpy_available():
        count, side = (16, 10) if scale == "paper" else (6, 8)
        grid_specs = [
            InstanceSpec(
                "grid", (side, side), partition=("voronoi", 8, 3 + index)
            )
            for index in range(count)
        ]
        grid_instances = [hydrate(spec) for spec in grid_specs]
        grid_topologies = [inst.topology for inst in grid_instances]
        grid_trees = [inst.tree for inst in grid_instances]
        grid_partitions = [inst.partition for inst in grid_instances]
        batch_walls: Dict[str, float] = {}
        batch_results = {}
        for strategy in BATCH_STRATEGIES:
            best = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                pipeline = run_pipeline(
                    grid_topologies, grid_trees, grid_partitions,
                    3, [3] * count, batch=strategy,
                )
                best = min(best, time.perf_counter() - start)
            batch_walls[strategy] = best
            batch_results[strategy] = pipeline
        if batch_results["vector"] != batch_results["loop"]:
            raise AssertionError(
                "batch strategies disagree on the pipeline grid: "
                f"vector={batch_results['vector']!r} but "
                f"loop={batch_results['loop']!r}"
            )
        batch_speedup = batch_walls["loop"] / batch_walls["vector"]
        batch_data = {
            "strategies": {
                strategy: {"wall_s": batch_walls[strategy]}
                for strategy in BATCH_STRATEGIES
            },
            "instances": count,
            "side": side,
            "speedup": batch_speedup,
        }
        table.add_row(
            f"grid-batch[{count}]",
            sum(topology.n for topology in grid_topologies),
            sum(partition.size for partition in grid_partitions),
            count,
            "-",
            round(batch_walls["loop"], 4),
            round(batch_walls["vector"], 4),
            round(batch_speedup, 2),
        )
    return ExperimentResult(
        "E16",
        "the direct construction kernels outpace the simulated pipeline at identical outputs",
        table,
        data={
            "schema": "repro.bench_construct.v1",
            "scale": scale,
            "modes": mode_names,
            "families": families,
            "speedups": speedups,
            "largest_scale_speedup": speedups[-1],
            "batch": batch_data,
        },
        notes="Each cell runs the full parameter-oblivious doubling "
        "search; the last family is the costliest simulated pipeline "
        "and anchors the tracked speedup.  Direct-mode round totals "
        "use the analytic ledger (exact cores, Lemma 3 bound for "
        "verification).  The grid-batch row runs a same-family sweep "
        "through the fused construct → measure → verify pipeline: its "
        "mode columns hold the loop and vector batch strategies' wall "
        "seconds (absent without the fast-math extra); E21 gates the "
        "paper-scale grid speedup.",
    )


# ----------------------------------------------------------------------
# E17 — application throughput: direct backend vs the simulated stack
# ----------------------------------------------------------------------


def app_families(scale: str) -> List[Tuple[str, Topology, int, bool]]:
    """Benchmark families for the application stack, small→large.

    Each entry is ``(name, weighted topology, seed, timed_in_both)``;
    E17 runs the full shortcut Borůvka MST (BFS tree → shared
    randomness → per-phase doubling search → Theorem 2 aggregation →
    star-merge broadcast) end to end.  Families with
    ``timed_in_both=True`` run on both the fully-simulated and the
    fully-direct stack (the last of them anchors the headline speedup
    in ``BENCH_apps.json``); the remaining *extension* families are
    direct-only — paper-scale instances ≥ 10x beyond the simulated E9
    grid, validated against Kruskal instead of the simulated twin.
    """
    big = scale == "paper"
    side_a = 10 if big else 8
    side_b = 8 if big else 6
    hub_n = 256 if big else 128
    anchor = 14 if big else 12
    # Extension instances must reach >= 10x the same-scale E9 grid
    # (10x10 at paper scale, 7x7 at small scale) — the bench gates it.
    extension = (24, 32) if big else (16, 24)
    families: List[Tuple[str, Topology, int, bool]] = [
        ("grid/boruvka", weighted(generators.grid(side_a, side_a), seed=41), 43, True),
        ("torus/boruvka", weighted(generators.torus(side_b, side_b), seed=41), 47, True),
        (
            "hub/boruvka",
            hub_adversarial_weights(generators.cycle_with_hub(hub_n, 8), hub_n, seed=47),
            53,
            True,
        ),
        (
            "grid-large/boruvka",
            weighted(generators.grid(anchor, anchor), seed=41),
            59,
            True,
        ),
    ]
    families += [
        (
            f"grid{side}x{side}/extension",
            weighted(generators.grid(side, side), seed=41),
            61,
            False,
        )
        for side in extension
    ]
    return families


def run_e17(scale: str = "small", repeats: int = 2) -> ExperimentResult:
    """Throughput of the application stack on both backends.

    ``backend="simulate"`` runs everything as CONGEST node programs
    (with simulated construction); ``backend="direct"`` runs the
    simulation-free partwise backend with the direct construction
    kernels.  Combinatorial outputs (MST edges, weight, phases, merges)
    must agree — the full bit-for-bit differential suite (including
    ledgers at fixed construction mode) lives in
    ``tests/apps/test_app_equivalence.py``.  The ``data`` dict carries
    the ``BENCH_apps.json`` payload; see ``benchmarks/conftest.py`` for
    the schema.
    """
    backend_names = list(BACKENDS)
    table = Table(
        "E17: application (MST) throughput (best-of-%d wall time)" % repeats,
        ["family", "n", "m", "phases", "simulate s", "direct s", "speedup"],
    )
    families = []
    speedups = []
    largest_scale_speedup = 0.0
    extension_max_n = 0
    for name, topology, seed, timed_in_both in app_families(scale):
        per_backend: Dict[str, Dict[str, float]] = {}
        results = {}
        modes_run = backend_names if timed_in_both else ["direct"]
        for backend in modes_run:
            best = math.inf
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = minimum_spanning_tree(
                    topology, params="doubling", seed=seed,
                    backend=backend, construct_mode=backend,
                )
                best = min(best, time.perf_counter() - start)
            results[backend] = result
            per_backend[backend] = {
                "wall_s": best,
                "msts_per_s": 1.0 / best if best > 0 else math.inf,
                "rounds": result.rounds,
            }
        _edges, ref_weight = kruskal_reference(topology)
        if results["direct"].weight != ref_weight:
            raise AssertionError(f"direct MST inexact on {name}")
        if timed_in_both:
            simulate, direct = results["simulate"], results["direct"]
            diverged = [
                label
                for label, match in (
                    ("edges", direct.edges == simulate.edges),
                    ("weight", direct.weight == simulate.weight),
                    ("phases", direct.phases == simulate.phases),
                    (
                        "merges",
                        [r.merges for r in direct.phase_records]
                        == [r.merges for r in simulate.phase_records],
                    ),
                )
                if not match
            ]
            if diverged:
                raise AssertionError(
                    f"backends disagree on {name}: {', '.join(diverged)}"
                )
            direct_wall = per_backend["direct"]["wall_s"]
            speedup = (
                per_backend["simulate"]["wall_s"] / direct_wall
                if direct_wall > 0
                else math.inf
            )
            speedups.append(speedup)
            largest_scale_speedup = speedup
        else:
            speedup = None
            extension_max_n = max(extension_max_n, topology.n)
        families.append(
            {
                "family": name,
                "n": topology.n,
                "m": topology.m,
                "phases": results["direct"].phases,
                "backends": per_backend,
                "speedup": speedup,
            }
        )
        table.add_row(
            name, topology.n, topology.m, results["direct"].phases,
            round(per_backend["simulate"]["wall_s"], 3) if timed_in_both else "—",
            round(per_backend["direct"]["wall_s"], 4),
            round(speedup, 2) if speedup is not None else "—",
        )
    return ExperimentResult(
        "E17",
        "the direct application backend outpaces the simulated stack at identical outputs",
        table,
        data={
            "schema": "repro.bench_apps.v1",
            "scale": scale,
            "backends": backend_names,
            "families": families,
            "speedups": speedups,
            "largest_scale_speedup": largest_scale_speedup,
            "extension_max_n": extension_max_n,
            # The same-scale E9 grid size the extension is measured against.
            "e9_grid_n": E9_GRID_SIDES["paper" if scale == "paper" else "small"] ** 2,
        },
        notes="Each cell runs the complete shortcut Borůvka MST; the "
        "last both-backend family anchors the tracked speedup, and the "
        "extension rows are direct-only paper-scale instances (≥ 10x "
        "the simulated E9 grid) validated against Kruskal.",
    )


# ----------------------------------------------------------------------
# E18 — instance throughput: array-native pipeline + cache vs reference
# ----------------------------------------------------------------------


def instance_families(scale: str) -> List[Tuple[str, InstanceSpec]]:
    """Benchmark families for the instance pipeline, small→large.

    Each entry is ``(name, spec)``; E18 builds the full (topology,
    BFS tree, partition) triple through both construction pipelines.
    Ordered by reference-pipeline cost; the last entry (largest grid,
    with unique weights attached) anchors the headline speedup in
    ``BENCH_instances.json``.  Every family has a reference twin
    (``fast=False`` generators), so the run doubles as a differential
    audit at benchmark scale.
    """
    big = scale == "paper"
    side_t = 32 if big else 14
    hub_n = 4096 if big else 1024
    genus = (6, 12, 12) if big else (3, 8, 8)
    kt_n = 4096 if big else 512
    pr_side = 64 if big else 24
    side_g = 96 if big else 40
    genus_n = genus[0] * genus[1] * genus[2]
    return [
        (
            "hub/arcs",
            InstanceSpec("hub", (hub_n, 8), partition=("arcs", hub_n, 8, 1)),
        ),
        (
            "torus/voronoi",
            InstanceSpec("torus", (side_t, side_t), partition=("voronoi", side_t, 2)),
        ),
        (
            "genus_chain/voronoi",
            InstanceSpec(
                "genus_chain", genus, partition=("voronoi", max(2, genus_n // 24), 5)
            ),
        ),
        (
            "k_tree/voronoi",
            InstanceSpec("k_tree", (kt_n, 3, 5), partition=("voronoi", kt_n // 64, 7)),
        ),
        (
            "peleg_rubinovich/voronoi",
            InstanceSpec(
                "peleg_rubinovich", (pr_side, pr_side), partition=("voronoi", pr_side, 11)
            ),
        ),
        (
            "grid-large/weighted-voronoi",
            InstanceSpec(
                "grid",
                (side_g, side_g),
                weights=("unique", 41),
                partition=("voronoi", side_g, 3),
            ),
        ),
    ]


# How often one instance is rebuilt across an experiment grid: the eXX
# runners hydrate each pool instance from several experiments (and every
# worker process re-ships it per task without the cache), so 3 rebuilds
# per process is a conservative lower bound.
E18_GRID_REPS = 3


def _audit_instance_equality(name, fast, reference) -> None:
    """Raise unless the two pipelines built ``==``-identical structures."""
    ft, rt = fast.topology, reference.topology
    diverged = []
    if ft.n != rt.n or ft.edges != rt.edges:
        diverged.append("edges")
    elif any(ft.neighbors(v) != rt.neighbors(v) for v in range(ft.n)):
        diverged.append("adjacency")
    if ft.is_weighted != rt.is_weighted or (
        ft.is_weighted
        and any(ft.weight(u, v) != rt.weight(u, v) for u, v in rt.edges)
    ):
        diverged.append("weights")
    if (
        fast.tree.root != reference.tree.root
        or [fast.tree.parent(v) for v in range(ft.n)]
        != [reference.tree.parent(v) for v in range(rt.n)]
    ):
        diverged.append("tree parents")
    if (fast.partition is None) != (reference.partition is None) or (
        fast.partition is not None
        and fast.partition.labels != reference.partition.labels
    ):
        diverged.append("partition labels")
    if diverged:
        raise AssertionError(
            f"instance pipelines disagree on {name}: {', '.join(diverged)}"
        )


def run_e18(scale: str = "small", repeats: int = 3) -> ExperimentResult:
    """Throughput of instance construction on both pipelines.

    The **reference** pipeline is what every grid cell paid before the
    array-native fast paths: the validating ``Topology`` constructor,
    ``SpanningTree.bfs`` plus ``tree_arrays``, ``adjacency_csr`` built
    from the finished topology, and the list-of-parts ``Partition``.
    The **fast** pipeline is one :func:`hydrate` call — array-emitting
    generators, pre-seeded CSR, CSR BFS tree with cached
    ``TreeArrays``, dense-label partitions — measured both cold (empty
    cache) and cached.  The end-to-end speedup models one experiment
    grid re-using each instance ``E18_GRID_REPS`` times, the pattern
    the per-process cache serves.  Structures from the two pipelines
    are audited ``==``-identical on every family (the full suite lives
    in ``tests/graphs/test_fastpath_equivalence.py``).  The ``data``
    dict carries the ``BENCH_instances.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.
    """
    from repro.graphs.csr import adjacency_csr, tree_arrays

    table = Table(
        "E18: instance-pipeline throughput (best-of-%d wall time)" % repeats,
        ["family", "n", "m", "N", "ref s", "cold s", "cached s", "cold x", "e2e x"],
    )
    families = []
    speedups = []
    for name, spec in instance_families(scale):
        reference = None
        ref_best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            reference = reference_instance(spec)
            adjacency_csr(reference.topology)
            tree_arrays(reference.tree)
            _labels = reference.partition.labels
            ref_best = min(ref_best, time.perf_counter() - start)
        cold_best = math.inf
        for _ in range(repeats):
            clear_instance_cache()
            start = time.perf_counter()
            hydrate(spec)
            cold_best = min(cold_best, time.perf_counter() - start)
        fast = hydrate(spec)  # warm (cache already holds the last build)
        cached_best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            hydrate(spec)
            cached_best = min(cached_best, time.perf_counter() - start)
        _audit_instance_equality(name, fast, reference)
        cold_speedup = ref_best / cold_best if cold_best > 0 else math.inf
        fast_total = cold_best + (E18_GRID_REPS - 1) * cached_best
        speedup = (
            E18_GRID_REPS * ref_best / fast_total if fast_total > 0 else math.inf
        )
        speedups.append(speedup)
        topology = fast.topology
        families.append(
            {
                "family": name,
                "n": topology.n,
                "m": topology.m,
                "parts": fast.partition.size,
                "reference": {"wall_s": ref_best},
                "fast": {
                    "cold_wall_s": cold_best,
                    "cached_wall_s": cached_best,
                },
                "cold_speedup": cold_speedup,
                "speedup": speedup,
            }
        )
        table.add_row(
            name, topology.n, topology.m, fast.partition.size,
            round(ref_best, 5), round(cold_best, 5), round(cached_best, 6),
            round(cold_speedup, 2), round(speedup, 2),
        )
    return ExperimentResult(
        "E18",
        "the array-native instance pipeline outpaces the reference constructors",
        table,
        data={
            "schema": "repro.bench_instances.v1",
            "scale": scale,
            "grid_reps": E18_GRID_REPS,
            "families": families,
            "speedups": speedups,
            "largest_scale_speedup": speedups[-1],
            "cache": instance_cache_info(),
        },
        notes="The e2e column models one experiment grid re-using each "
        "instance %d times per process (cold build + cache hits) "
        "against %d reference rebuilds; the cold column isolates the "
        "array-native constructors.  The last family (largest grid, "
        "unique weights) anchors the tracked speedup." % (E18_GRID_REPS, E18_GRID_REPS),
    )


# ----------------------------------------------------------------------
# E19 — failure injection: degradation and incremental repair
# ----------------------------------------------------------------------

E19_SEED = 19


def e19_families(scale: str) -> List[Tuple[str, InstanceSpec, Optional[str], Dict]]:
    """The failure-sweep families: grid/torus/hub/delaunay, weighted.

    Each entry is ``(name, spec, srlg_family, srlg_params)`` — the last
    two key the SRLG group builder on the generator structure (grid
    rows/columns as trench cuts, hub spokes as a site failure);
    Delaunay has no registered structure and falls back to
    node-incidence groups.
    """
    big = scale == "paper"
    side = 14 if big else 9
    hub_n = 16 * side
    return [
        (
            "grid/voronoi",
            InstanceSpec(
                "grid", (side, side), weights=("unique", 7),
                partition=("voronoi", side, 1),
            ),
            "grid",
            {"rows": side, "cols": side},
        ),
        (
            "torus/voronoi",
            InstanceSpec(
                "torus", (side, side), weights=("unique", 8),
                partition=("voronoi", side, 2),
            ),
            "torus",
            {"rows": side, "cols": side},
        ),
        (
            "hub/arcs",
            InstanceSpec(
                "hub", (hub_n, 8), weights=("unique", 9),
                partition=("arcs", hub_n, 8, 1),
            ),
            "hub",
            {"n_cycle": hub_n, "spoke_every": 8},
        ),
        (
            "delaunay/voronoi",
            InstanceSpec(
                "delaunay", (side * side, 3), weights=("unique", 10),
                partition=("voronoi", side, 3),
            ),
            None,
            {},
        ),
    ]


def _e19_scenarios(topology, srlg_family, srlg_params):
    """The per-family failure suite: k-wise, Bernoulli, and SRLG draws.

    Sized so an E19 run covers every generator kind on every family
    while staying CI-budgeted; deterministic under ``E19_SEED``.
    """
    m = topology.m
    scenarios = list(enumerate_kwise(topology, 1, limit=3, seed=E19_SEED))
    scenarios += enumerate_kwise(topology, 2, limit=3, seed=E19_SEED + 1)
    scenarios += sample_bernoulli(
        topology, 3, min(0.25, 1.5 / m), seed=E19_SEED + 2
    )
    groups = srlg_groups(topology, srlg_family, **srlg_params)
    scenarios += sample_srlg(
        topology, groups, 2, min(0.5, 1.0 / len(groups)), seed=E19_SEED + 3
    )
    return scenarios


def _e19_task(task):
    name, spec, srlg_family, srlg_params, scale = task
    instance = hydrate(spec)
    topology = instance.topology
    tree, partition = instance.tree, instance.partition

    # Intact baseline: one doubling construction + quality + MST.
    old = find_shortcut_doubling(
        topology, tree, partition, seed=E19_SEED, mode="direct"
    )
    report = quality.measure(old.result.shortcut, topology, with_dilation=False)
    mst = minimum_spanning_tree(
        topology, seed=E19_SEED, construct_mode="direct", backend="direct"
    )
    baseline = Baseline(
        congestion=report.congestion,
        block=report.block_parameter,
        dilation=None,
        construction_rounds=old.rounds,
        mst_weight=mst.weight,
        mst_rounds=mst.rounds,
    )

    scenarios = _e19_scenarios(topology, srlg_family, srlg_params)
    # One timed pass of the per-scenario loop produces the reference
    # records; with numpy available, the whole grid re-runs through the
    # batched sweep (survivors_batch + the batched doubling ladder +
    # measure_batch) and must reproduce them ==-identically.
    start = time.perf_counter()
    records = scenarios_batch(
        topology, partition, scenarios, baseline,
        seed=E19_SEED, mode="direct", backends=("direct",),
        with_dilation=False, batch="loop",
    )
    sweep_wall_loop = time.perf_counter() - start
    sweep_wall_vector = sweep_speedup = None
    if batch_numpy_available():
        start = time.perf_counter()
        vector_records = scenarios_batch(
            topology, partition, scenarios, baseline,
            seed=E19_SEED, mode="direct", backends=("direct",),
            with_dilation=False, batch="vector",
        )
        sweep_wall_vector = time.perf_counter() - start
        if vector_records != records:
            diverged = [
                scenarios[i].label
                for i in range(len(scenarios))
                if vector_records[i] != records[i]
            ]
            raise AssertionError(
                f"batched scenario sweep diverges from the loop on "
                f"{name}: {diverged}"
            )
        if sweep_wall_vector > 0:
            sweep_speedup = sweep_wall_loop / sweep_wall_vector
    # The first two scenarios of each family double as the
    # both-backends equivalence audit at small scale; the audit rerun
    # must reproduce the reference record (its fields come from the
    # first backend, the extra one is asserted identical inside).
    if scale != "paper":
        for index, scenario in enumerate(scenarios[:2]):
            audit = measure_degradation(
                topology, partition, scenario, baseline,
                seed=E19_SEED, mode="direct",
                backends=("direct", "simulate"), with_dilation=False,
            )
            assert audit == records[index], (
                f"backend audit diverges on {name} / {scenario.label}"
            )

    scenario_rows = []
    rounds_speedups = []
    repair_wall = rebuild_wall = 0.0
    frozen_fractions = []
    disconnected = 0
    for index, scenario in enumerate(scenarios):
        record = records[index]
        row = {
            "label": scenario.label,
            "kind": scenario.kind,
            "failed_edges": scenario.size,
            "connected": record.connected,
            "components": record.components,
            "congestion_delta": record.congestion_delta,
            "block_delta": record.block_delta,
            "mst_weight_delta": record.mst_weight_delta,
            "connectivity_components": record.connectivity_components,
        }
        if record.connected:
            start = time.perf_counter()
            repaired = repair_shortcut(
                topology, old, scenario.edges, seed=E19_SEED, mode="direct"
            )
            wall_rep = time.perf_counter() - start
            start = time.perf_counter()
            rebuilt = rebuild_shortcut(
                topology, old, scenario.edges, seed=E19_SEED, mode="direct"
            )
            wall_reb = time.perf_counter() - start
            # Differential ==-verification: both shortcuts must be
            # structurally valid in the survivor and pass a full
            # Verification sweep at their 3b thresholds.
            assert_valid(repaired.survivor, repaired)
            assert_valid(rebuilt.survivor, rebuilt)
            speedup = rebuilt.rounds / max(1, repaired.rounds)
            rounds_speedups.append(speedup)
            repair_wall += wall_rep
            rebuild_wall += wall_reb
            frozen = len(repaired.frozen_parts) / max(1, repaired.partition.size)
            frozen_fractions.append(frozen)
            row.update(
                {
                    "repair_rounds": repaired.rounds,
                    "rebuild_rounds": rebuilt.rounds,
                    "rounds_speedup": speedup,
                    "repair_wall_s": wall_rep,
                    "rebuild_wall_s": wall_reb,
                    "frozen_fraction": frozen,
                    "tree_rebuilt": repaired.tree_rebuilt,
                    "repair_cb": [repaired.c, repaired.b],
                    "rebuild_cb": [rebuilt.c, rebuilt.b],
                }
            )
        else:
            disconnected += 1
        scenario_rows.append(row)
    ordered = sorted(rounds_speedups)
    median_speedup = ordered[len(ordered) // 2] if ordered else 0.0
    return {
        "family": name,
        "n": topology.n,
        "m": topology.m,
        "parts": partition.size,
        "baseline": {
            "congestion": baseline.congestion,
            "block": baseline.block,
            "construction_rounds": baseline.construction_rounds,
            "mst_weight": baseline.mst_weight,
            "mst_rounds": baseline.mst_rounds,
        },
        "scenarios": scenario_rows,
        "disconnected": disconnected,
        "rounds_speedups": rounds_speedups,
        "median_rounds_speedup": median_speedup,
        "repair_wall_s": repair_wall,
        "rebuild_wall_s": rebuild_wall,
        "wall_speedup": rebuild_wall / repair_wall if repair_wall > 0 else 0.0,
        "mean_frozen_fraction": (
            sum(frozen_fractions) / len(frozen_fractions)
            if frozen_fractions
            else 0.0
        ),
        "sweep_wall_loop_s": sweep_wall_loop,
        "sweep_wall_vector_s": sweep_wall_vector,
        "sweep_speedup": sweep_speedup,
    }


def run_e19(scale: str = "small") -> ExperimentResult:
    """Failure injection and incremental shortcut repair.

    For every family of :func:`e19_families`, generates a mixed failure
    suite (exhaustive/sampled k-wise, per-edge Bernoulli, SRLG groups
    keyed on generator structure), measures degradation against the
    intact baseline (both quality kernels on every survivor, both
    application backends on the audit sample), and — on every connected
    survivor — runs :func:`repair_shortcut` against its
    :func:`rebuild_shortcut` twin, differentially ==-verifying both and
    comparing ledgers and wall time.  Disconnecting scenarios are
    first-class rows: the components-aware MST forest and per-component
    connectivity results are recorded instead of the repair pair.

    Families fan out through :func:`parallel_map` (REPRO_JOBS); the
    table and every deterministic ``data`` field are identical at any
    worker count (wall-clock fields vary, rounds never do).  The
    ``data`` dict carries the ``BENCH_failures.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.
    """
    table = Table(
        "E19: failure degradation and repair-vs-rebuild (rounds)",
        [
            "family", "scen", "disc", "frozen%",
            "med dC", "med dB", "repair rounds", "rebuild rounds", "speedup",
            "sweep x",
        ],
    )
    families = parallel_map(
        _e19_task,
        [
            (name, spec, srlg_family, srlg_params, scale)
            for name, spec, srlg_family, srlg_params in e19_families(scale)
        ],
    )
    for family in families:
        connected_rows = [s for s in family["scenarios"] if s["connected"]]
        deltas_c = sorted(s["congestion_delta"] for s in connected_rows)
        deltas_b = sorted(s["block_delta"] for s in connected_rows)
        repair_rounds = sum(s["repair_rounds"] for s in connected_rows)
        rebuild_rounds = sum(s["rebuild_rounds"] for s in connected_rows)
        table.add_row(
            family["family"],
            len(family["scenarios"]),
            family["disconnected"],
            round(100 * family["mean_frozen_fraction"], 1),
            deltas_c[len(deltas_c) // 2] if deltas_c else "-",
            deltas_b[len(deltas_b) // 2] if deltas_b else "-",
            repair_rounds,
            rebuild_rounds,
            round(family["median_rounds_speedup"], 2),
            "-"
            if family["sweep_speedup"] is None
            else round(family["sweep_speedup"], 2),
        )
    pooled = sorted(
        speedup for f in families for speedup in f["rounds_speedups"]
    )
    suite_rounds_speedup = pooled[len(pooled) // 2] if pooled else 0.0
    repair_wall = sum(f["repair_wall_s"] for f in families)
    rebuild_wall = sum(f["rebuild_wall_s"] for f in families)
    suite_wall_speedup = rebuild_wall / repair_wall if repair_wall > 0 else 0.0
    sweep_loop = sum(f["sweep_wall_loop_s"] for f in families)
    sweep_vector = (
        sum(f["sweep_wall_vector_s"] for f in families)
        if all(f["sweep_wall_vector_s"] is not None for f in families)
        else None
    )
    return ExperimentResult(
        "E19",
        "incremental repair beats a full rebuild across the failure suite",
        table,
        data={
            "schema": "repro.bench_failures.v1",
            "scale": scale,
            "families": families,
            "suite_rounds_speedup": suite_rounds_speedup,
            "suite_wall_speedup": suite_wall_speedup,
            "largest_scale_speedup": min(
                suite_rounds_speedup, suite_wall_speedup
            ),
            "sweep_wall_loop_s": sweep_loop,
            "sweep_wall_vector_s": sweep_vector,
            "sweep_speedup": (
                sweep_loop / sweep_vector
                if sweep_vector not in (None, 0.0) and sweep_vector > 0
                else None
            ),
        },
        notes="Each family runs its full failure suite; disc counts the "
        "scenarios whose survivor disconnects (measured via the "
        "components-aware MST forest / connectivity results instead of "
        "repair).  Speedup is the median rebuild/repair round ratio per "
        "family; the benchmark gate takes the suite-pooled median and "
        "also requires the pooled wall-time ratio to clear the same "
        "bar.  'sweep x' is the wall ratio of the per-scenario "
        "degradation loop over the batched sweep (survivors_batch + "
        "the batched doubling ladder + measure_batch), whose records "
        "are asserted ==-identical inside the runner.  A family whose full construction is a single CoreFast "
        "iteration (hub) bounds repair at parity — one Verification "
        "sweep is the floor for both sides whenever any part broke; "
        "repair wins grow with construction hardness.",
    )


# ----------------------------------------------------------------------
# E20 — fault-tolerant shortcut service: warm store and chaos storm
# ----------------------------------------------------------------------

E20_SEED = 20
E20_OPS = ("shortcut", "mst", "connectivity")


def service_families(scale: str) -> List[Tuple[str, InstanceSpec]]:
    """Weighted, partitioned instances the service round-trips.

    Every family supports all of :data:`E20_OPS` (weights for MST,
    partitions for shortcut construction), and each has a reference
    twin, so the chaos storm can check answers differentially.
    """
    big = scale == "paper"
    side = 8 if big else 5
    hub_n = 8 * side
    return [
        (
            "grid/voronoi",
            InstanceSpec(
                "grid", (side, side), weights=("unique", 3),
                partition=("voronoi", side, 1),
            ),
        ),
        (
            "torus/voronoi",
            InstanceSpec(
                "torus", (side, side), weights=("unique", 4),
                partition=("voronoi", side, 2),
            ),
        ),
        (
            "hub/arcs",
            InstanceSpec(
                "hub", (hub_n, 4), weights=("unique", 5),
                partition=("arcs", hub_n, 4, 1),
            ),
        ),
    ]


def run_e20(scale: str = "small") -> ExperimentResult:
    """Fault-tolerant shortcut service: warm store and chaos storm.

    Round-trips every :func:`service_families` instance through the
    in-process :class:`~repro.service.server.ShortcutService` backed by
    a :class:`~repro.service.store.PersistentStore`: the cold pass pays
    hydration plus construction per operation, the warm passes must be
    answered from the store (``warm`` flagged on every response, results
    byte-identical to the cold pass), and a recovery pass corrupts a
    committed entry on disk and times the quarantine-and-recompute
    round trip.  A seeded :func:`~repro.service.chaos.run_chaos_suite`
    storm (including a real-HTTP round) then asserts the service never
    serves a wrong answer under injected faults.

    The ``data`` dict carries the ``BENCH_service.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.  The benchmark gate
    requires pooled warm throughput at least 3x cold.
    """
    warm_passes = 3 if scale == "paper" else 2
    clear_instance_cache()
    rows = []
    total_cold_wall = total_warm_wall = 0.0
    total_cold_requests = total_warm_requests = 0
    with tempfile.TemporaryDirectory(prefix="repro-e20-") as tmp:
        store = PersistentStore(Path(tmp) / "store")
        service = ShortcutService(store, workers=2)
        try:
            for name, spec in service_families(scale):
                body = {"spec": spec_to_json(spec)}

                start = time.perf_counter()
                cold = {}
                for op in E20_OPS:
                    response = service.handle(op, body)
                    assert response.status == 200, response.body
                    assert response.body["warm"] is False
                    cold[op] = response.body["result"]
                cold_wall = time.perf_counter() - start

                start = time.perf_counter()
                for _ in range(warm_passes):
                    for op in E20_OPS:
                        response = service.handle(op, body)
                        assert response.status == 200, response.body
                        assert response.body["warm"] is True
                        assert response.body["result"] == cold[op]
                warm_wall = time.perf_counter() - start

                # Recovery: damage the committed entry for the first op
                # and time the quarantine + recompute + repopulate trip.
                key = spec_key(E20_OPS[0], spec, **PARAM_DEFAULTS)
                store.path_for(key).write_bytes(b"chaos: damaged entry")
                store.forget_memory(key)
                quarantined_before = store.stats.quarantined
                start = time.perf_counter()
                recovered = service.handle(E20_OPS[0], body)
                recovery_wall = time.perf_counter() - start
                assert recovered.status == 200
                assert recovered.body["result"] == cold[E20_OPS[0]]
                assert store.stats.quarantined == quarantined_before + 1
                rewarmed = service.handle(E20_OPS[0], body)
                assert rewarmed.status == 200 and rewarmed.body["warm"] is True

                cold_requests = len(E20_OPS)
                warm_requests = len(E20_OPS) * warm_passes
                total_cold_wall += cold_wall
                total_warm_wall += warm_wall
                total_cold_requests += cold_requests
                total_warm_requests += warm_requests
                instance = hydrate(spec)
                rows.append(
                    {
                        "family": name,
                        "n": instance.topology.n,
                        "m": instance.topology.m,
                        "parts": instance.partition.size,
                        "cold_requests": cold_requests,
                        "cold_wall_s": cold_wall,
                        "cold_rps": cold_requests / cold_wall,
                        "warm_requests": warm_requests,
                        "warm_wall_s": warm_wall,
                        "warm_rps": warm_requests / warm_wall,
                        "warm_speedup": (
                            (warm_requests / warm_wall)
                            / (cold_requests / cold_wall)
                        ),
                        "recovery_s": recovery_wall,
                    }
                )
            service_stats = service.stats_payload()
        finally:
            service.close()

        chaos = run_chaos_suite(
            Path(tmp) / "chaos",
            seed=E20_SEED,
            rounds=3 if scale == "paper" else 2,
            specs=service_families(scale),
            ops=E20_OPS,
            use_http=True,
        )
    assert chaos.wrong == 0

    cold_rps = total_cold_requests / total_cold_wall
    warm_rps = total_warm_requests / total_warm_wall
    table = Table(
        "E20: shortcut service — warm store speedup and recovery",
        [
            "family", "n", "parts",
            "cold req/s", "warm req/s", "speedup", "recovery ms",
        ],
    )
    for row in rows:
        table.add_row(
            row["family"],
            row["n"],
            row["parts"],
            round(row["cold_rps"], 1),
            round(row["warm_rps"], 1),
            round(row["warm_speedup"], 1),
            round(1000 * row["recovery_s"], 1),
        )
    return ExperimentResult(
        "E20",
        "a warm store answers repeat requests without reconstruction",
        table,
        data={
            "schema": "repro.bench_service.v1",
            "scale": scale,
            "families": rows,
            "cold_rps": cold_rps,
            "warm_rps": warm_rps,
            "warm_speedup": warm_rps / cold_rps,
            "recovery_s": {
                row["family"]: row["recovery_s"] for row in rows
            },
            "service": service_stats,
            "chaos": chaos.as_dict(),
        },
        notes="Cold requests pay hydration plus construction; warm "
        "requests are store reads, checked byte-identical to their cold "
        "twins.  Recovery corrupts a committed entry on disk and times "
        "the quarantine-and-recompute round trip.  The chaos storm "
        "(seeded corruption, IO errors, latency, killed writers, plus a "
        "real-HTTP round with a tiny queue and a retrying client) must "
        "finish with zero wrong answers; its counters ride along in "
        "data['chaos'].",
    )


# ----------------------------------------------------------------------
# E21 — batch kernels: whole-grid throughput, vector vs per-instance loop
# ----------------------------------------------------------------------


def batch_grid(scale: str) -> List[InstanceSpec]:
    """The E21 instance grid: one same-family seed sweep.

    Paper scale is 128 grids of side 12 with 8-part voronoi partitions
    — the production shape ROADMAP item 5 targets (a parameter sweep of
    similar mid-size instances, where amortizing *across* instances
    pays); small scale keeps CI in fractions of a second.
    """
    count, side = (128, 12) if scale == "paper" else (24, 8)
    return [
        InstanceSpec("grid", (side, side), partition=("voronoi", 8, 3 + index))
        for index in range(count)
    ]


def run_e21(scale: str = "small", repeats: int = 3) -> ExperimentResult:
    """Batch-axis throughput of the fused pipeline over an instance grid.

    Runs the whole :func:`batch_grid` sweep through
    :func:`repro.core.batch.run_pipeline` — Algorithm 1 construction,
    quality measurement, and verification counts per instance — once
    per batch strategy: ``"loop"`` (the per-instance fast kernels) and
    ``"vector"`` (the numpy batch kernels over one packed
    :class:`~repro.graphs.batch_csr.BatchCSR`).  Both must return
    ``==``-identical :class:`~repro.core.batch.PipelineResult` lists;
    the run raises on divergence.  The ``data`` dict carries the
    ``BENCH_batch.json`` payload; see ``benchmarks/conftest.py`` for
    the schema.  The benchmark gate requires the vector strategy at
    least 3x the loop at paper-scale grid size.

    Without numpy (the ``fast-math`` extra) only the loop row runs and
    the speedup is ``None``.
    """
    specs = batch_grid(scale)
    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    count = len(specs)
    c, b_limit = 3, 3

    strategies = [
        strategy
        for strategy in BATCH_STRATEGIES
        if strategy != "vector" or batch_numpy_available()
    ]
    walls: Dict[str, float] = {}
    outputs = {}
    for strategy in strategies:
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            results = run_pipeline(
                topologies, trees, partitions, c, [b_limit] * count,
                batch=strategy,
            )
            best = min(best, time.perf_counter() - start)
        walls[strategy] = best
        outputs[strategy] = results
    if "vector" in outputs and outputs["vector"] != outputs["loop"]:
        diverged = [
            index
            for index in range(count)
            if outputs["vector"][index] != outputs["loop"][index]
        ]
        raise AssertionError(
            f"batch strategies disagree on grid instances {diverged}: "
            f"vector={outputs['vector'][diverged[0]]!r} but "
            f"loop={outputs['loop'][diverged[0]]!r}"
        )
    speedup = (
        walls["loop"] / walls["vector"] if "vector" in walls else None
    )

    reference = outputs["loop"]
    table = Table(
        "E21: batch-kernel grid throughput (best-of-%d wall time)" % repeats,
        ["batch", "instances", "n/inst", "parts/inst", "wall s",
         "inst/s", "speedup"],
    )
    rows = {}
    for strategy in strategies:
        wall = walls[strategy]
        rows[strategy] = {
            "wall_s": wall,
            "instances_per_s": count / wall if wall > 0 else math.inf,
        }
        table.add_row(
            strategy,
            count,
            topologies[0].n,
            partitions[0].size,
            round(wall, 4),
            round(count / wall, 1),
            "-" if strategy == "loop" else round(speedup, 2),
        )
    return ExperimentResult(
        "E21",
        "vectorized batch kernels amortize the fast stack across whole instance grids",
        table,
        data={
            "schema": "repro.bench_batch.v1",
            "scale": scale,
            "strategies": list(strategies),
            "grid": {
                "family": "grid/voronoi",
                "instances": count,
                "side": specs[0].params[0],
                "n": topologies[0].n,
                "m": topologies[0].m,
                "parts": partitions[0].size,
                "c": c,
                "b_limit": b_limit,
            },
            "results": rows,
            "max_congestion": max(
                result.report.congestion for result in reference
            ),
            "max_dilation": max(
                result.report.dilation for result in reference
            ),
            "speedup": speedup,
        },
        notes="One fused construct → measure → verify pass over the "
        "whole grid per strategy; vector packs every instance into one "
        "BatchCSR and never materializes per-instance shortcut "
        "objects.  The loop/vector outputs are asserted ==-identical "
        "inside the runner (the differential suite lives in "
        "tests/core/test_batch_equivalence.py).",
    )


# ----------------------------------------------------------------------
# E22 — batched doubling ladder: whole-grid construction, vector vs loop
# ----------------------------------------------------------------------


def e22_grid(scale: str) -> List[InstanceSpec]:
    """The E22 ladder grid: a mixed-family seed sweep.

    Unlike E21's fixed-``(c, b)`` pipeline, the doubling ladder climbs
    a different number of rungs per instance, so the grid deliberately
    mixes families and partition seeds — ragged rung counts are what
    the ladder's active-set compaction exploits.
    """
    if scale == "paper":
        count, side = 16, 24
    else:
        count, side = 6, 8
    specs: List[InstanceSpec] = []
    for index in range(count):
        specs.append(
            InstanceSpec(
                "grid", (side, side), partition=("voronoi", 8, 3 + index)
            )
        )
        specs.append(
            InstanceSpec(
                "torus", (side, side), partition=("voronoi", 8, 5 + index)
            )
        )
        specs.append(
            InstanceSpec(
                "hub", (12 * side, 8),
                partition=("voronoi", 8, 7 + index),
            )
        )
    return specs


def _e22_equal(loop_outcome, vector_outcome) -> bool:
    """Bit-for-bit equality of two DoublingResults (trials including
    the per-rung ledger-delta breakdown, endpoints, histories, edge
    maps, and full ledgers)."""
    return (
        loop_outcome.trials == vector_outcome.trials
        and loop_outcome.c == vector_outcome.c
        and loop_outcome.b == vector_outcome.b
        and loop_outcome.result.iterations == vector_outcome.result.iterations
        and loop_outcome.result.good_history
        == vector_outcome.result.good_history
        and loop_outcome.result.shortcut.subgraphs
        == vector_outcome.result.shortcut.subgraphs
        and loop_outcome.ledger == vector_outcome.ledger
    )


def run_e22(scale: str = "small", repeats: int = 3) -> ExperimentResult:
    """Batched doubling-ladder throughput over an instance grid.

    Runs the whole :func:`e22_grid` sweep through
    :func:`repro.core.batch.find_shortcut_doubling_batch` once per
    batch strategy: ``"loop"`` (the per-instance Appendix A search in
    ``mode="direct"``) and ``"vector"`` (the lockstep ladder over one
    packed :class:`~repro.graphs.batch_csr.BatchCSR`, instances
    dropping off their rung as they succeed).  Both must return
    bit-identical outcomes — trials including the satellite per-rung
    ``rounds``/``messages`` breakdown, good histories, edge maps, and
    ledgers; the run raises on divergence.  The ``data`` dict carries
    the ``BENCH_batch_construct.json`` payload; see
    ``benchmarks/conftest.py`` for the schema.  The benchmark gate
    requires the vector ladder at least 3x the loop at paper scale.

    Without numpy (the ``fast-math`` extra) only the loop row runs and
    the speedup is ``None``.
    """
    specs = e22_grid(scale)
    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    count = len(specs)
    seeds = [mix(22, index) for index in range(count)]

    strategies = [
        strategy
        for strategy in BATCH_STRATEGIES
        if strategy != "vector" or batch_numpy_available()
    ]
    walls: Dict[str, float] = {}
    outputs = {}
    for strategy in strategies:
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            results = find_shortcut_doubling_batch(
                topologies, trees, partitions,
                seeds=seeds, mode="direct", batch=strategy,
            )
            best = min(best, time.perf_counter() - start)
        walls[strategy] = best
        outputs[strategy] = results
    if "vector" in outputs:
        diverged = [
            index
            for index in range(count)
            if not _e22_equal(outputs["loop"][index], outputs["vector"][index])
        ]
        if diverged:
            raise AssertionError(
                f"ladder strategies disagree on instances {diverged}: "
                f"loop trials "
                f"{outputs['loop'][diverged[0]].trials!r} but vector "
                f"{outputs['vector'][diverged[0]].trials!r}"
            )
    speedup = walls["loop"] / walls["vector"] if "vector" in walls else None

    reference = outputs["loop"]
    # Per-rung cost breakdown from the satellite Trial fields: how many
    # instances climbed to each rung and what each rung charged.
    rungs: Dict[int, Dict[str, int]] = {}
    for outcome in reference:
        for rung_index, trial in enumerate(outcome.trials):
            entry = rungs.setdefault(
                rung_index,
                {"instances": 0, "succeeded": 0, "rounds": 0, "messages": 0},
            )
            entry["instances"] += 1
            entry["succeeded"] += int(trial.succeeded)
            entry["rounds"] += trial.rounds
            entry["messages"] += trial.messages
    max_rungs = max(len(outcome.trials) for outcome in reference)

    table = Table(
        "E22: batched doubling-ladder throughput (best-of-%d wall time)"
        % repeats,
        ["batch", "instances", "max rungs", "wall s", "inst/s", "speedup"],
    )
    rows = {}
    for strategy in strategies:
        wall = walls[strategy]
        rows[strategy] = {
            "wall_s": wall,
            "instances_per_s": count / wall if wall > 0 else math.inf,
        }
        table.add_row(
            strategy,
            count,
            max_rungs,
            round(wall, 4),
            round(count / wall, 1),
            "-" if strategy == "loop" else round(speedup, 2),
        )
    return ExperimentResult(
        "E22",
        "the doubling-construction ladder vectorizes across whole instance grids",
        table,
        data={
            "schema": "repro.bench_batch_construct.v1",
            "scale": scale,
            "strategies": list(strategies),
            "grid": {
                "family": "grid+torus+hub",
                "instances": count,
                "n_total": sum(topology.n for topology in topologies),
                "m_total": sum(topology.m for topology in topologies),
                "parts_total": sum(
                    partition.size for partition in partitions
                ),
            },
            "results": rows,
            "max_rungs": max_rungs,
            "rungs": {
                str(rung_index): entry
                for rung_index, entry in sorted(rungs.items())
            },
            "total_rounds": sum(
                outcome.ledger.total_rounds for outcome in reference
            ),
            "speedup": speedup,
        },
        notes="One whole-grid doubling search per strategy; vector "
        "climbs every instance's (c, b) ladder in lockstep rungs, "
        "compacting finished instances out of the batch, and inside "
        "each rung the wave driver compacts per iteration.  The "
        "loop/vector outcomes are asserted bit-identical inside the "
        "runner — trials carry the per-rung rounds/messages breakdown, "
        "so the rung table is the same for both strategies.",
    )


# ----------------------------------------------------------------------
# E23 — unreliable networks: reliable-sublayer overhead and recovery
# ----------------------------------------------------------------------

E23_FAMILIES = ("grid", "torus", "hub", "delaunay")
E23_RATES = (0.02, 0.05, 0.1)
E23_GATE_RATE = 0.05
E23_SEEDS = 5
E23_WORKLOAD_ROUNDS = 6


def _e23_topology(family: str, side: int):
    from repro.graphs import generators

    if family == "grid":
        return generators.grid(side, side)
    if family == "torus":
        return generators.torus(side, side)
    if family == "hub":
        return generators.cycle_with_hub(16 * side, 8)
    if family == "delaunay":
        return generators.delaunay(side * side, seed=11)
    raise ValueError(f"unknown E23 family {family!r}")


def _e23_task(task):
    """One resilience cell: reference run vs reliable run under faults."""
    from repro.congest.faults import FaultPlan
    from repro.congest.reliable import run_reliably
    from repro.congest.workloads import FloodAlgorithm
    from repro.errors import DetectedFailure

    family, side, rate, seed, crash = task
    topology = _e23_topology(family, side)
    make = lambda: FloodAlgorithm(rounds=E23_WORKLOAD_ROUNDS)  # noqa: E731
    reference = Simulator(topology, make(), seed=seed).run()
    plan_seed = mix(23, seed) & 0xFFFF
    if crash:
        plan = FaultPlan(
            seed=plan_seed,
            p_drop=rate,
            crashes=((mix(plan_seed, 1) % topology.n, 1 + mix(plan_seed, 2) % 4),),
        )
    else:
        # Pure-drop plans: the gate tracks overhead vs drop probability;
        # the duplicate/delay/reorder mix is covered by repro.congest.chaos.
        plan = FaultPlan(seed=plan_seed, p_drop=rate)
    try:
        outcome = run_reliably(
            topology,
            make(),
            horizon=reference.rounds,
            seed=seed,
            faults=plan,
            max_retries=6 if crash else 12,
        )
    except DetectedFailure:
        return (family, rate, seed, crash, "detected", 0.0, 0.0, 0)
    identical = all(
        vars(reference.states[v]) == vars(outcome.states[v])
        for v in topology.nodes
    )
    status = "identical" if identical else "DIVERGED"
    amplification = outcome.messages / max(1, reference.messages)
    return (
        family, rate, seed, crash, status,
        outcome.overhead, amplification, outcome.prods,
    )


def run_e23(scale: str = "small") -> ExperimentResult:
    """Reliable-sublayer overhead and recovery rate vs drop probability.

    For every family × drop-rate × seed cell, a fault-free reference
    run fixes the horizon and the lockstep-with-repair sublayer
    (:mod:`repro.congest.reliable`) re-executes the flood workload
    under the seeded fault plan.  Recovered runs must be bit-identical
    to the reference — a divergence fails the experiment outright (the
    identical-or-detected contract).  One crash-stop cell per family ×
    seed checks the detection side: a dead node must surface as a
    declared :class:`~repro.errors.DetectedFailure`, never a quiet
    wrong answer.  The benchmark gate holds mean round overhead at
    drop rate ``0.05`` to at most 3x fault-free.
    """
    side = 14 if scale == "paper" else 9
    tasks = []
    for family in E23_FAMILIES:
        for rate in E23_RATES:
            for seed in range(E23_SEEDS):
                tasks.append((family, side, rate, seed, False))
        for seed in range(E23_SEEDS):
            tasks.append((family, side, E23_RATES[0], seed, True))
    cells = parallel_map(_e23_task, tasks)

    diverged = [c for c in cells if c[4] == "DIVERGED"]
    if diverged:
        raise AssertionError(
            f"reliable runs silently diverged in cells {diverged[:3]}"
        )
    undetected_crashes = [c for c in cells if c[3] and c[4] != "detected"]
    if undetected_crashes:
        raise AssertionError(
            f"crash-stop cells finished without detection: "
            f"{undetected_crashes[:3]}"
        )

    table = Table(
        "E23: reliable execution under seeded transport faults",
        ["family", "drop", "recovered", "overhead", "msg amp", "prods"],
    )
    rows: Dict[str, Dict] = {}
    gate_overheads: List[float] = []
    for family in E23_FAMILIES:
        for rate in E23_RATES:
            bucket = [
                c for c in cells if c[0] == family and c[1] == rate and not c[3]
            ]
            recovered = [c for c in bucket if c[4] == "identical"]
            recovery = len(recovered) / len(bucket)
            overhead = (
                sum(c[5] for c in recovered) / len(recovered)
                if recovered
                else math.inf
            )
            amplification = (
                sum(c[6] for c in recovered) / len(recovered)
                if recovered
                else math.inf
            )
            prods = sum(c[7] for c in recovered)
            if rate == E23_GATE_RATE and recovered:
                gate_overheads.append(overhead)
            rows[f"{family}@{rate}"] = {
                "recovery_rate": recovery,
                "mean_overhead": overhead,
                "mean_amplification": amplification,
                "prods": prods,
            }
            table.add_row(
                family,
                rate,
                f"{len(recovered)}/{len(bucket)}",
                round(overhead, 2),
                round(amplification, 2),
                prods,
            )
    crash_cells = [c for c in cells if c[3]]
    gate_overhead = (
        sum(gate_overheads) / len(gate_overheads) if gate_overheads else math.inf
    )
    return ExperimentResult(
        "E23",
        "the reliable sublayer recovers bit-identical runs from seeded "
        "transport faults and declares what it cannot mask",
        table,
        data={
            "schema": "repro.bench_resilience.v1",
            "scale": scale,
            "families": list(E23_FAMILIES),
            "rates": list(E23_RATES),
            "seeds": E23_SEEDS,
            "workload": f"flood({E23_WORKLOAD_ROUNDS})",
            "results": rows,
            "gate_rate": E23_GATE_RATE,
            "gate_overhead": gate_overhead,
            "crash_cells": len(crash_cells),
            "crash_detected": sum(1 for c in crash_cells if c[4] == "detected"),
        },
        notes="Every transport-fault cell ended bit-identical to the "
        "fault-free reference or as a declared detection; every "
        "crash-stop cell was detected.  Overhead is physical rounds "
        "per inner round (fault-free cost ~1.0x plus one start-up "
        "round); message amplification counts retransmission frames "
        "and heartbeats against the reference's logical messages.",
    )


ALL_EXPERIMENTS: Dict[str, Callable[[str], ExperimentResult]] = {
    "E1": run_e01,
    "E2": run_e02,
    "E3": run_e03,
    "E4": run_e04,
    "E5": run_e05,
    "E6": run_e06,
    "E7": run_e07,
    "E8": run_e08,
    "E9": run_e09,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
    "E17": run_e17,
    "E18": run_e18,
    "E19": run_e19,
    "E20": run_e20,
    "E21": run_e21,
    "E22": run_e22,
    "E23": run_e23,
}


@engine_parameter
def run_all(scale: str = "small") -> List[ExperimentResult]:
    """Run every experiment; used to regenerate EXPERIMENTS.md."""
    return [runner(scale) for runner in ALL_EXPERIMENTS.values()]
