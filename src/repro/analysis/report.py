"""Regenerate ``EXPERIMENTS.md`` from the experiment runners.

Usage::

    python -m repro.analysis.report [small|paper] [output-path]

Runs every experiment E1–E23 and writes the paper-claim-vs-measured
record.  The same tables print during ``pytest benchmarks/``.  Set
``REPRO_JOBS`` to fan the parallel-friendly runners out over worker
processes (the output is identical at any worker count).
"""

from __future__ import annotations

import sys
import time

from repro.analysis.experiments import ALL_EXPERIMENTS

# Construction-heavy runners regenerate in direct mode (simulation-free
# kernels, bit-for-bit identical outputs — see repro.core.construct_fast):
# that is what makes their largest paper-scale grids reachable at all.
DIRECT_MODE_RUNNERS = frozenset({"E7", "E11", "E12"})

# Application runners additionally regenerate on the direct partwise
# backend (see repro.core.partwise_fast) — same outputs and ledger
# structure, extended instance grids.
DIRECT_BACKEND_RUNNERS = frozenset({"E9", "E10", "E13"})

HEADER = """\
# EXPERIMENTS — paper claims vs. measurements

Regenerate with ``python -m repro.analysis.report {scale}`` or inspect
individual tables via ``pytest benchmarks/ --benchmark-only``.

The paper ("Low-Congestion Shortcuts without Embedding", PODC 2016) is
a theory paper: it has no measured tables, and its only figure is an
illustration (reproduced by ``examples/visualize_blocks.py``).  Its
quantitative content is the set of theorems and lemmas below; each
experiment regenerates one of them on the CONGEST simulator and reports
the measured quantity against the claimed bound.  The experiment index
lives in ``repro.analysis.experiments`` (one ``run_eXX`` per claim,
wrapped by ``benchmarks/bench_eXX_*.py``); E14–E18 track the
simulator-engine, quality-kernel, construction-kernel,
application-backend, and instance-pipeline throughput rather than a
paper claim, E19 stresses the framework under edge failures
(degradation of survivors, incremental repair vs full rebuild), and
E20 exercises the fault-tolerant shortcut service (persistent-store
warm path, recovery after corruption, seeded chaos storm), E21
tracks whole-grid batch-kernel throughput (the ``batch="vector"``
strategy vs the per-instance loop over one paper-scale grid), and E22
tracks the batched doubling-construction ladder (the whole ``(c, b)``
climb vectorized across a mixed-family grid, bit-identical to the
per-instance search; E19's sweep column times the same axis through
the failure layer), and E23 measures the unreliable-network stack
(the reliable-delivery sublayer's round overhead, message
amplification, and recovery rate under seeded transport faults, plus
crash-stop detection).

**Summary of reproduction status** (scale = ``{scale}``): every bound
holds on every instance tested; the w.h.p. guarantees hold on every
seed tried; the asymptotic shapes (who wins, where, and how growth
scales) match the paper's claims.  Absolute round counts are simulator
rounds and carry our constants — the paper states only asymptotics.

"""


def generate(scale: str = "small") -> str:
    sections = [HEADER.format(scale=scale)]
    for name, runner in ALL_EXPERIMENTS.items():
        start = time.time()
        if name in DIRECT_MODE_RUNNERS:
            result = runner(scale, construct_mode="direct")
        elif name in DIRECT_BACKEND_RUNNERS:
            result = runner(scale, backend="direct", construct_mode="direct")
        else:
            result = runner(scale)
        elapsed = time.time() - start
        sections.append(result.render())
        sections.append(f"\n*(regenerated in {elapsed:.1f}s)*\n")
    return "\n".join(sections)


def main(argv) -> int:
    scale = argv[1] if len(argv) > 1 else "small"
    path = argv[2] if len(argv) > 2 else "EXPERIMENTS.md"
    text = generate(scale)
    with open(path, "w") as handle:
        handle.write(text)
    print(f"wrote {path} ({len(text.splitlines())} lines, scale={scale})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
