"""Plain-text tables for the experiment harness.

Every benchmark prints its results in paper-style rows through
:class:`Table`; ``EXPERIMENTS.md`` embeds the same renderings.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A fixed-header table rendered as aligned monospace text."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row (cells are stringified)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """Aligned text rendering with a title line."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
