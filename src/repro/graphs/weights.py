"""Edge-weight assignments for MST instances.

The CONGEST model assumes weights fit in O(log n) bits, i.e. are
polynomially bounded integers; every assignment here satisfies that.
Weights are made **unique** so the MST is unique and Borůvka's
minimum-outgoing-edge choices are unambiguous (the standard
lexicographic tie-break, baked into the values).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.congest.topology import Edge, Topology


def unique_random_weights(topology: Topology, seed: int = 0) -> Dict[Edge, int]:
    """A uniformly random bijection edges -> {1, ..., m}."""
    rng = random.Random(seed)
    values = list(range(1, topology.m + 1))
    rng.shuffle(values)
    return dict(zip(topology.edges, values))


def perturbed_weights(
    topology: Topology, base: Dict[Edge, int], spread: int = 1
) -> Dict[Edge, int]:
    """Make an arbitrary integer assignment unique.

    Each weight ``w`` becomes ``w * m * spread + rank(edge)``, which
    preserves the original order while breaking all ties
    deterministically.
    """
    m = topology.m
    return {
        edge: base.get(edge, 1) * m * spread + rank
        for rank, edge in enumerate(topology.edges)
    }


def weighted(topology: Topology, seed: int = 0) -> Topology:
    """Convenience: attach unique random weights to a topology."""
    return topology.with_weights(unique_random_weights(topology, seed))


def hub_adversarial_weights(topology: Topology, n_cycle: int, seed: int = 0) -> Topology:
    """Adversarial weights for :func:`generators.cycle_with_hub`.

    Cycle edges get small unique weights and hub spokes get huge ones,
    so the MST is (almost) the cycle and Borůvka fragments become long
    arcs — maximal induced diameter while the hub keeps the *network*
    diameter tiny.  This is the motivating worst case of Section 1.2
    turned into an MST instance.
    """
    rng = random.Random(seed)
    light = [e for e in topology.edges if e[0] < n_cycle and e[1] < n_cycle]
    heavy = [e for e in topology.edges if e[0] >= n_cycle or e[1] >= n_cycle]
    light_values = list(range(1, len(light) + 1))
    rng.shuffle(light_values)
    weights = dict(zip(light, light_values))
    base = len(light) + 1
    heavy_values = list(range(base, base + len(heavy)))
    rng.shuffle(heavy_values)
    weights.update(zip(heavy, heavy_values))
    return topology.with_weights(weights)
