"""Workload graph generators.

Every generator returns a :class:`~repro.congest.topology.Topology` on
nodes ``0 .. n-1``.  The families here cover the graph classes the
paper discusses:

* **planar** graphs — grids, triangulated grids, Delaunay
  triangulations of random points, cycles with a hub (Theorem 1 with
  genus ``g = 0``);
* **bounded-genus** graphs — toroidal grids (genus 1) and chains of
  tori (genus ``g``, since genus is additive over biconnected
  components);
* **bounded-treewidth** graphs — k-trees and series-parallel graphs
  (the classes covered by the paper's "in preparation" remark);
* **general** graphs — connected Erdős–Rényi and random regular graphs,
  where only the trivial shortcut guarantees apply.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.congest.topology import Topology
from repro.errors import TopologyError


def grid_node(r: int, c: int, cols: int) -> int:
    """Node id of cell ``(r, c)`` in a row-major ``rows x cols`` grid."""
    return r * cols + c


def geometry_available() -> bool:
    """Whether the optional ``geometry`` extra (numpy + scipy) is
    importable — the dependency gate for :func:`delaunay`."""
    try:
        import numpy  # noqa: F401
        import scipy.spatial  # noqa: F401
    except ImportError:
        return False
    return True


def fast_topology(n: int, edges: List[Tuple[int, int]]) -> Topology:
    """Array-native assembly shared by the fast-path generators.

    ``edges`` must be canonical and strictly sorted (each generator's
    emission order guarantees it; :meth:`Topology.from_arrays`
    re-validates in O(m)).  The adjacency CSR is seeded immediately
    from the same array, so the returned topology reaches every
    downstream kernel without ever materialising dict/set adjacency.
    """
    from repro.graphs.csr import adjacency_csr

    topology = Topology.from_arrays(n, edges)
    adjacency_csr(topology)
    return topology


# ----------------------------------------------------------------------
# Elementary topologies
# ----------------------------------------------------------------------


def path(n: int) -> Topology:
    """Path graph P_n (diameter n - 1)."""
    return Topology(n, [(i, i + 1) for i in range(n - 1)])


def cycle(n: int) -> Topology:
    """Cycle graph C_n (diameter floor(n/2))."""
    if n < 3:
        raise TopologyError("a cycle needs at least 3 nodes")
    return Topology(n, [(i, (i + 1) % n) for i in range(n)])


def star(n: int) -> Topology:
    """Star with hub 0 and n - 1 leaves (diameter 2)."""
    return Topology(n, [(0, i) for i in range(1, n)])


def complete(n: int) -> Topology:
    """Complete graph K_n."""
    return Topology(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def binary_tree(depth: int) -> Topology:
    """Complete binary tree of the given depth (2^(depth+1) - 1 nodes)."""
    n = (1 << (depth + 1)) - 1
    return Topology(n, [(v, (v - 1) // 2) for v in range(1, n)])


# ----------------------------------------------------------------------
# Planar graphs (genus 0)
# ----------------------------------------------------------------------


def grid(rows: int, cols: int, fast: bool = True) -> Topology:
    """Planar rows x cols grid (diameter rows + cols - 2).

    The row-major emission (per node: right edge, then down edge) is
    already canonical and sorted, so the fast path hands the array
    straight to :func:`fast_topology`; ``fast=False`` keeps the
    reference constructor for the differential suite.
    """
    edges = []
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            u = base + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    if not fast:
        return Topology(rows * cols, edges)
    return fast_topology(rows * cols, edges)


def triangulated_grid(rows: int, cols: int) -> Topology:
    """Planar grid with one diagonal per cell (still planar)."""
    edges = list(grid(rows, cols).edges)
    for r in range(rows - 1):
        for c in range(cols - 1):
            edges.append((grid_node(r, c, cols), grid_node(r + 1, c + 1, cols)))
    return Topology(rows * cols, edges)


def cycle_with_hub(n_cycle: int, spoke_every: int, fast: bool = True) -> Topology:
    """A cycle plus a hub node adjacent to every ``spoke_every``-th node.

    Planar (a subdivided wheel), with diameter O(spoke_every) while a
    contiguous arc of the cycle has induced diameter equal to its
    length — the motivating scenario of Section 1.2 where part
    diameters vastly exceed the network diameter.

    The hub is node ``n_cycle``; cycle nodes are ``0 .. n_cycle - 1``.
    """
    if spoke_every < 1 or spoke_every > n_cycle:
        raise TopologyError("spoke_every must be in [1, n_cycle]")
    if not fast or n_cycle < 3:
        # Degenerate cycles (n_cycle < 3) duplicate the wrap edge; let
        # the reference constructor normalise them.
        edges = [(i, (i + 1) % n_cycle) for i in range(n_cycle)]
        hub = n_cycle
        edges.extend((hub, i) for i in range(0, n_cycle, spoke_every))
        return Topology(n_cycle + 1, edges)
    hub = n_cycle
    edges = []
    for u in range(n_cycle):
        if u + 1 < n_cycle:
            edges.append((u, u + 1))
        if u == 0:
            edges.append((0, n_cycle - 1))
        if u % spoke_every == 0:
            edges.append((u, hub))
    return fast_topology(n_cycle + 1, edges)


def delaunay(n: int, seed: int = 0) -> Topology:
    """Delaunay triangulation of ``n`` random points (planar, D ~ sqrt(n)).

    Needs the optional ``geometry`` extra (numpy + scipy); install with
    ``pip install repro-lowcongestion-shortcuts[geometry]``.
    """
    try:
        import numpy as np
        from scipy.spatial import Delaunay
    except ImportError as error:
        raise TopologyError(
            "the delaunay generator needs numpy and scipy; install the "
            "'geometry' extra: pip install "
            "repro-lowcongestion-shortcuts[geometry]"
        ) from error

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    edges = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        edges.update([(a, b), (b, c), (a, c)])
    return Topology(n, edges)


# ----------------------------------------------------------------------
# Bounded-genus graphs
# ----------------------------------------------------------------------


def _torus_edge_array(rows: int, cols: int) -> List[Tuple[int, int]]:
    """Canonical sorted edge array of C_rows x C_cols (rows, cols >= 3).

    Per node ``u = (r, c)`` the edges with ``u`` as the smaller
    endpoint, ascending by the other end: the right edge ``u + 1``,
    the right wrap ``u + cols - 1`` (emitted at ``c == 0``), the down
    edge ``u + cols``, and the down wrap ``u + (rows - 1) * cols``
    (emitted at ``r == 0``).  With ``rows, cols >= 3`` those offsets
    are strictly increasing, so the whole array comes out sorted.
    """
    edges: List[Tuple[int, int]] = []
    wrap_down = (rows - 1) * cols
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            u = base + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if c == 0:
                edges.append((u, u + cols - 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
            if r == 0:
                edges.append((u, u + wrap_down))
    return edges


def torus(rows: int, cols: int, fast: bool = True) -> Topology:
    """Toroidal grid C_rows x C_cols (genus 1 for rows, cols >= 3)."""
    if rows < 3 or cols < 3:
        raise TopologyError("a toroidal grid needs rows, cols >= 3")
    if not fast:
        edges = []
        for r in range(rows):
            for c in range(cols):
                edges.append(
                    (grid_node(r, c, cols), grid_node(r, (c + 1) % cols, cols))
                )
                edges.append(
                    (grid_node(r, c, cols), grid_node((r + 1) % rows, c, cols))
                )
        return Topology(rows * cols, edges)
    return fast_topology(rows * cols, _torus_edge_array(rows, cols))


def genus_chain(g: int, rows: int, cols: int, fast: bool = True) -> Topology:
    """A chain of ``g`` toroidal grids joined by bridge edges.

    Genus is additive over biconnected components, so this graph has
    genus exactly ``g`` — the workload for Corollary 1's genus sweep.
    With ``g = 0`` this degenerates to a single planar grid.
    """
    if g <= 0:
        return grid(rows, cols, fast=fast)
    size = rows * cols
    if not fast:
        block = torus(rows, cols, fast=False)
        edges: List[Tuple[int, int]] = []
        for i in range(g):
            offset = i * size
            edges.extend((u + offset, v + offset) for u, v in block.edges)
            if i > 0:
                # Bridge from the previous block's last node to this block's first.
                edges.append((offset - 1, offset))
        return Topology(g * size, edges)
    # The last node of a block ((rows-1, cols-1)) emits no in-block
    # edges as the smaller endpoint, so placing each bridge between the
    # previous block's edges and the next block's keeps the array sorted.
    block_edges = _torus_edge_array(rows, cols)
    edges = []
    for i in range(g):
        offset = i * size
        if i > 0:
            edges.append((offset - 1, offset))
        edges.extend((u + offset, v + offset) for u, v in block_edges)
    return fast_topology(g * size, edges)


# ----------------------------------------------------------------------
# Bounded-treewidth graphs
# ----------------------------------------------------------------------


def k_tree(n: int, k: int, seed: int = 0, fast: bool = True) -> Topology:
    """A random k-tree on ``n`` nodes (treewidth exactly k).

    The fast path buckets edges by their smaller endpoint as they are
    drawn (new nodes arrive in increasing id, so every bucket stays
    ascending) and flattens the buckets into the canonical sorted
    array — same RNG stream, same edge set, no sort.
    """
    if n < k + 1:
        raise TopologyError(f"a {k}-tree needs at least {k + 1} nodes")
    rng = random.Random(seed)
    if not fast:
        edges = [(i, j) for i in range(k + 1) for j in range(i + 1, k + 1)]
        cliques = [tuple(range(k + 1))]
        for v in range(k + 1, n):
            base = rng.choice(cliques)
            drop = rng.randrange(len(base))
            face = tuple(u for i, u in enumerate(base) if i != drop)
            edges.extend((u, v) for u in face)
            cliques.append(face + (v,))
        return Topology(n, edges)
    buckets: List[List[int]] = [[] for _ in range(n)]
    for i in range(k + 1):
        buckets[i].extend(range(i + 1, k + 1))
    cliques = [tuple(range(k + 1))]
    for v in range(k + 1, n):
        base = rng.choice(cliques)
        drop = rng.randrange(len(base))
        face = tuple(u for i, u in enumerate(base) if i != drop)
        for u in face:
            buckets[u].append(v)
        cliques.append(face + (v,))
    edges = [(u, v) for u in range(n) for v in buckets[u]]
    return fast_topology(n, edges)


def clique_caterpillar(length: int, width: int) -> Topology:
    """A path of overlapping (width+1)-cliques — pathwidth exactly ``width``.

    The bounded-*pathwidth* counterpart of :func:`k_tree` (the paper's
    closing remark covers both classes): consecutive windows of
    ``width + 1`` nodes along a path are made into cliques.
    """
    if width < 1 or length < width + 1:
        raise TopologyError("need width >= 1 and length >= width + 1 nodes")
    edges = [
        (i, j)
        for i in range(length)
        for j in range(i + 1, min(i + width + 1, length))
    ]
    return Topology(length, edges)


def series_parallel(n: int, seed: int = 0) -> Topology:
    """A random series-parallel graph (treewidth at most 2).

    Built by recursively composing series and parallel blocks between
    two terminals until the node budget is consumed.
    """
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    next_node = [2]

    def build(s: int, t: int, budget: int) -> None:
        if budget <= 0 or next_node[0] >= n:
            edges.append((s, t))
            return
        if rng.random() < 0.5 and next_node[0] < n:
            mid = next_node[0]
            next_node[0] += 1
            left = (budget - 1) // 2
            build(s, mid, left)
            build(mid, t, budget - 1 - left)
        else:
            build(s, t, budget // 2)
            build(s, t, budget // 2)

    build(0, 1, n)
    # Deduplicate parallel unit edges; the Topology constructor does it.
    return Topology(next_node[0], edges)


# ----------------------------------------------------------------------
# General graphs
# ----------------------------------------------------------------------


def erdos_renyi_connected(n: int, p: float, seed: int = 0) -> Topology:
    """Connected G(n, p): a random spanning tree plus G(n, p) edges.

    The spanning-tree backbone guarantees connectivity without
    rejection sampling; for ``p`` above the connectivity threshold the
    distribution is dominated by the G(n, p) part.
    """
    rng = random.Random(seed)
    edges = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        edges.add((order[rng.randrange(i)], order[i]))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                edges.add((u, v))
    return Topology(n, edges)


def random_regular(n: int, d: int, seed: int = 0) -> Topology:
    """Connected random d-regular graph (an expander w.h.p.)."""
    import networkx as nx

    for attempt in range(100):
        graph = nx.random_regular_graph(d, n, seed=seed + attempt)
        if nx.is_connected(graph):
            return Topology.from_networkx(graph)
    raise TopologyError(f"no connected {d}-regular graph found for n={n}")
