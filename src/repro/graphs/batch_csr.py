"""Ragged batch packing of instance grids into flat numpy arrays.

The fast paths of PRs 1–5 amortize work *within* one instance; this
module is the packing layer that lets :mod:`repro.core.batch` amortize
*across* instances.  A grid cell of same-family instances — each one a
``(topology, tree, partition)`` triple already living as cached flat
arrays (:mod:`repro.graphs.csr`) — is concatenated into one
:class:`BatchCSR`: ragged 1-D arrays with per-instance offset tables
(``node_offsets`` / ``edge_offsets`` / ``part_offsets``), so that one
numpy pass over the concatenation replaces a Python loop over the
batch.  Node, edge, and part ids are *global* (instance-local id plus
the instance's offset), which keeps every cross-array index usable
without a per-instance base register.

:class:`ShortcutPack` extends a batch with one shortcut per instance:
flat arrays over the assigned edge slots (``Σ|H_i|`` across the whole
batch) plus the *clone table* — the deduplicated ``(part, node)``
pairs over part members and ``H_i`` endpoints.  Clones are the batch
twin of the per-part local id spaces the per-instance kernels rebuild
per part: a node appears once per part whose communication subgraph
``G[P_i] + H_i`` touches it, and all per-part union-find, component,
and BFS work runs over the clone space in single array ops.

:func:`bounded_diameter_batch` is the batch twin of
:func:`repro.graphs.csr.bounded_diameter`: every segment (one
communication subgraph) runs the same exact eccentricity-bounding scan,
but all segments advance their BFS passes in lockstep — one frontier
step is one vectorized gather across every still-active segment.

numpy is an *optional* dependency (the ``fast-math`` extra); everything
here import-guards it and raises a clear install hint, mirroring how
the Delaunay generator guards the ``geometry`` extra.  Callers that
need a hard dependency check use :func:`require_numpy`; test suites
skip on :func:`numpy_available`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.congest.topology import Topology
from repro.errors import ReproError
from repro.graphs.csr import edge_ids, tree_arrays
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

NUMPY_HINT = (
    "the batch kernels need numpy; install the 'fast-math' extra: "
    "pip install repro-lowcongestion-shortcuts[fast-math]"
)


def numpy_available() -> bool:
    """Whether numpy can be imported (the ``fast-math`` extra)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy():
    """Import and return numpy, or raise a :class:`ReproError` hint."""
    try:
        import numpy
    except ImportError:
        raise ReproError(NUMPY_HINT) from None
    return numpy


class BatchCSR:
    """One grid cell of instances as concatenated flat arrays.

    Attributes
    ----------
    size:
        Number of instances ``B`` in the batch.
    n_total, m_total, p_total:
        Summed node / edge / part counts across the batch.
    node_offsets, edge_offsets, part_offsets:
        ``B + 1`` offset tables; instance ``b`` owns the global id
        ranges ``[offsets[b], offsets[b + 1])``.
    edge_u, edge_v:
        The canonical edge arrays, concatenated, endpoints as global
        node ids.  Position ``edge_offsets[b] + i`` is edge ``i`` of
        ``topologies[b].edges`` — the global dense edge id.
    labels:
        Per global node, the *global* part id (``part_offsets[b] +``
        local label), or ``-1`` for uncovered nodes.
    tree_parent, tree_depth:
        Per global node, the BFS-tree parent as a global node id
        (``-1`` at each instance's root) and the tree depth.
    instance_of_node, instance_of_edge, instance_of_part:
        Global id → owning instance index.
    depth_order, depth_starts, max_depth:
        All global nodes sorted by ``tree_depth`` (stable, so global id
        ascending within a level); depth ``d`` occupies
        ``depth_order[depth_starts[d]:depth_starts[d + 1]]``.  The
        level grouping drives the batched Algorithm 1 sweep.
    topologies, trees, partitions:
        The packed source objects, for building per-instance outputs.
    """

    __slots__ = (
        "size",
        "n_total",
        "m_total",
        "p_total",
        "node_offsets",
        "edge_offsets",
        "part_offsets",
        "edge_u",
        "edge_v",
        "labels",
        "tree_parent",
        "tree_depth",
        "instance_of_node",
        "instance_of_edge",
        "instance_of_part",
        "depth_order",
        "depth_starts",
        "max_depth",
        "topologies",
        "trees",
        "partitions",
        "_tree_edge_id",
    )

    def __init__(
        self,
        topologies: Sequence[Topology],
        trees: Sequence[SpanningTree],
        partitions: Sequence[Partition],
    ) -> None:
        np = require_numpy()
        if not (len(topologies) == len(trees) == len(partitions)):
            raise ReproError(
                f"batch components disagree: {len(topologies)} topologies, "
                f"{len(trees)} trees, {len(partitions)} partitions"
            )
        self.topologies = tuple(topologies)
        self.trees = tuple(trees)
        self.partitions = tuple(partitions)
        size = len(self.topologies)
        self.size = size

        ns = np.fromiter((t.n for t in self.topologies), dtype=np.int64, count=size)
        ms = np.fromiter((t.m for t in self.topologies), dtype=np.int64, count=size)
        ps = np.fromiter(
            (p.size for p in self.partitions), dtype=np.int64, count=size
        )
        self.node_offsets = _offsets(np, ns)
        self.edge_offsets = _offsets(np, ms)
        self.part_offsets = _offsets(np, ps)
        self.n_total = int(self.node_offsets[-1])
        self.m_total = int(self.edge_offsets[-1])
        self.p_total = int(self.part_offsets[-1])
        self.instance_of_node = np.repeat(np.arange(size, dtype=np.int64), ns)
        self.instance_of_edge = np.repeat(np.arange(size, dtype=np.int64), ms)
        self.instance_of_part = np.repeat(np.arange(size, dtype=np.int64), ps)

        edge_u = np.empty(self.m_total, dtype=np.int64)
        edge_v = np.empty(self.m_total, dtype=np.int64)
        labels = np.empty(self.n_total, dtype=np.int64)
        parent = np.empty(self.n_total, dtype=np.int64)
        depth = np.empty(self.n_total, dtype=np.int64)
        for b, (topology, tree, partition) in enumerate(
            zip(self.topologies, self.trees, self.partitions)
        ):
            n0, n1 = int(self.node_offsets[b]), int(self.node_offsets[b + 1])
            e0, e1 = int(self.edge_offsets[b]), int(self.edge_offsets[b + 1])
            if topology.m:
                edges = _np_edges(np, topology)
                edge_u[e0:e1] = edges[:, 0] + n0
                edge_v[e0:e1] = edges[:, 1] + n0
            lab = np.asarray(partition.labels, dtype=np.int64)
            labels[n0:n1] = np.where(
                lab >= 0, lab + int(self.part_offsets[b]), -1
            )
            par, dep = _np_tree(np, tree)
            parent[n0:n1] = np.where(par >= 0, par + n0, -1)
            depth[n0:n1] = dep
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.labels = labels
        self.tree_parent = parent
        self.tree_depth = depth

        self.depth_order = np.argsort(depth, kind="stable")
        self.max_depth = int(depth.max()) if self.n_total else 0
        self.depth_starts = np.searchsorted(
            depth[self.depth_order], np.arange(self.max_depth + 2)
        )
        self._tree_edge_id = None

    def tree_edge_ids(self):
        """Global dense edge id of each node's parent tree edge (-1 at roots).

        Lazily built: one sort of the batch edge keys plus one
        searchsorted for all parent edges at once.  Lets array-native
        producers of edge slots (the fused construct → measure → verify
        pipeline) resolve tree edges to dense ids without touching the
        per-instance ``edge_ids`` dicts.
        """
        cached = self._tree_edge_id
        if cached is None:
            np = require_numpy()
            stride = max(self.n_total, 1)
            lo = np.minimum(self.edge_u, self.edge_v)
            hi = np.maximum(self.edge_u, self.edge_v)
            keys = lo * stride + hi
            order = np.argsort(keys, kind="stable")
            nodes = np.arange(self.n_total, dtype=np.int64)
            parent = self.tree_parent
            has = parent >= 0
            nlo = np.minimum(nodes[has], parent[has])
            nhi = np.maximum(nodes[has], parent[has])
            pos = np.searchsorted(keys[order], nlo * stride + nhi)
            cached = np.full(self.n_total, -1, dtype=np.int64)
            cached[has] = order[pos]
            self._tree_edge_id = cached
        return cached


def _offsets(np, counts):
    """``[0, c0, c0+c1, ...]`` — the ragged offset table of counts."""
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _np_edges(np, topology: Topology):
    """Instance-local numpy edge array, cached on the topology."""
    cached = topology._kernels.get("np_edges")
    if cached is None:
        cached = np.asarray(topology.edges, dtype=np.int64).reshape(-1, 2)
        topology._kernels["np_edges"] = cached
    return cached


def _np_tree(np, tree: SpanningTree):
    """Instance-local numpy ``(parent, depth)`` arrays, cached on the tree."""
    cached = tree._kernels.get("np_tree")
    if cached is None:
        arrays = tree_arrays(tree)
        cached = (
            np.asarray(arrays.parent, dtype=np.int64),
            np.asarray(arrays.depth, dtype=np.int64),
        )
        tree._kernels["np_tree"] = cached
    return cached


class ShortcutPack:
    """A :class:`BatchCSR` plus one tree-restricted shortcut per instance.

    ``shortcuts`` holds the packed per-instance shortcut objects, or
    ``None`` for packs built by :meth:`from_arrays` — the array-native
    path never materializes them, and consumers use the batch's packed
    trees / partitions instead.

    Attributes (all numpy arrays, global ids)
    -----------------------------------------
    h_part, h_edge, h_child, h_parent:
        One entry per assigned edge slot across the batch: the owning
        global part id, the global dense edge id, and the slot's
        deeper / shallower endpoint (``H_i`` edges are tree edges, so
        the endpoints differ in depth by one).
    clone_keys, clone_part, clone_node, clone_starts:
        The clone table: deduplicated ``(part, node)`` pairs over part
        members and ``H_i`` endpoints, sorted by part then node
        (``clone_keys`` is the sorted ``part * stride + node`` key
        array for :func:`numpy.searchsorted` lookups, with ``stride``
        the batch node total).  Part ``p`` owns clone ids
        ``[clone_starts[p], clone_starts[p + 1])``.
    h_child_clone, h_parent_clone:
        Per edge slot, the clone ids of its endpoints in the owning
        part's clone range.
    member_node, member_part, member_starts, member_clone:
        Covered nodes sorted by (part, node): the global node, its
        part, the per-part offsets into these arrays, and each
        member's clone id.
    """

    __slots__ = (
        "batch",
        "shortcuts",
        "h_part",
        "h_edge",
        "h_child",
        "h_parent",
        "h_child_clone",
        "h_parent_clone",
        "clone_keys",
        "clone_stride",
        "clone_part",
        "clone_node",
        "clone_starts",
        "member_node",
        "member_part",
        "member_starts",
        "member_clone",
        "_member_inverse",
        "_block_roots",
    )

    def member_inverse(self):
        """Member-subspace index of every covered global node (-1 else)."""
        cached = self._member_inverse
        if cached is None:
            np = require_numpy()
            cached = np.full(self.batch.n_total, -1, dtype=np.int64)
            cached[self.member_node] = np.arange(
                len(self.member_node), dtype=np.int64
            )
            self._member_inverse = cached
        return cached

    def __init__(self, batch: BatchCSR, shortcuts: Sequence) -> None:
        np = require_numpy()
        if len(shortcuts) != batch.size:
            raise ReproError(
                f"expected {batch.size} shortcuts, got {len(shortcuts)}"
            )
        self.batch = batch
        self.shortcuts = tuple(shortcuts)

        # --- flat edge-slot arrays (one Python pass over the frozensets;
        # everything after this loop is numpy) ---
        slots: List[Tuple[int, int, int, int]] = []
        for b, shortcut in enumerate(self.shortcuts):
            n0 = int(batch.node_offsets[b])
            p0 = int(batch.part_offsets[b])
            e0 = int(batch.edge_offsets[b])
            ids = edge_ids(batch.topologies[b])
            slots.extend(
                (p0 + index, n0 + edge[0], n0 + edge[1], e0 + ids[edge])
                for index, subgraph in enumerate(shortcut.subgraphs)
                for edge in subgraph
            )
        flat = np.asarray(slots, dtype=np.int64).reshape(-1, 4)
        h_part = flat[:, 0].copy()
        h_u = flat[:, 1].copy()
        h_v = flat[:, 2].copy()
        self.h_part = h_part
        self.h_edge = flat[:, 3].copy()
        deeper = batch.tree_depth[h_u] > batch.tree_depth[h_v]
        self.h_child = np.where(deeper, h_u, h_v)
        self.h_parent = np.where(deeper, h_v, h_u)
        self._finish(np)

    @classmethod
    def from_arrays(
        cls,
        batch: BatchCSR,
        h_part,
        h_child,
        h_parent,
        h_edge,
        shortcuts: Optional[Sequence] = None,
    ) -> "ShortcutPack":
        """Build a pack from flat edge-slot arrays (global ids).

        The array-native entry for producers that already hold the
        assigned slots as arrays — the fused construct → measure →
        verify pipeline feeds the Algorithm 1 sweep output straight in,
        skipping Python shortcut materialization entirely.  ``h_child``
        must be the deeper endpoint of every slot.  ``shortcuts`` may
        stay ``None``; consumers then fall back to the batch's packed
        trees / partitions.
        """
        np = require_numpy()
        self = cls.__new__(cls)
        self.batch = batch
        self.shortcuts = None if shortcuts is None else tuple(shortcuts)
        self.h_part = h_part
        self.h_edge = h_edge
        self.h_child = h_child
        self.h_parent = h_parent
        self._finish(np)
        return self

    def _finish(self, np) -> None:
        """Derive the member and clone tables from the edge-slot arrays."""
        batch = self.batch

        # --- members sorted by (part, node) ---
        covered = np.flatnonzero(batch.labels >= 0)
        cov_part = batch.labels[covered]
        order = np.lexsort((covered, cov_part))
        self.member_node = covered[order]
        self.member_part = cov_part[order]
        self.member_starts = np.searchsorted(
            self.member_part, np.arange(batch.p_total + 1)
        )

        # --- clone table: (part, node) pairs keyed as part*stride+node ---
        # member_keys is already sorted (members are lexsorted by part,
        # node), so only the H endpoint keys need a sort; the clone key
        # table is then a sorted merge instead of one big unique.
        stride = max(batch.n_total, 1)
        member_keys = self.member_part * stride + self.member_node
        endpoint_keys = np.concatenate(
            [
                self.h_part * stride + self.h_child,
                self.h_part * stride + self.h_parent,
            ]
        )
        if endpoint_keys.size:
            endpoint_keys.sort()
            keep = np.empty(len(endpoint_keys), dtype=bool)
            keep[0] = True
            keep[1:] = endpoint_keys[1:] != endpoint_keys[:-1]
            endpoint_keys = endpoint_keys[keep]
            pos = np.searchsorted(member_keys, endpoint_keys)
            inside = pos < len(member_keys)
            present = np.zeros(len(endpoint_keys), dtype=bool)
            present[inside] = (
                member_keys[pos[inside]] == endpoint_keys[inside]
            )
            clone_keys = np.insert(
                member_keys, pos[~present], endpoint_keys[~present]
            )
        else:
            clone_keys = member_keys.copy()
        self.clone_keys = clone_keys
        self.clone_stride = stride
        self.clone_part = clone_keys // stride
        self.clone_node = clone_keys % stride
        self.clone_starts = np.searchsorted(
            self.clone_part, np.arange(batch.p_total + 1)
        )
        self.member_clone = np.searchsorted(clone_keys, member_keys)
        self.h_child_clone = np.searchsorted(
            clone_keys, self.h_part * stride + self.h_child
        )
        self.h_parent_clone = np.searchsorted(
            clone_keys, self.h_part * stride + self.h_parent
        )
        self._member_inverse = None
        self._block_roots = None


def pointer_jump(np, pointer):
    """Fixpoint of ``p = p[p]`` — the root of every functional-graph node.

    The batched union-find: ``pointer`` maps each clone to a parent
    (itself at roots); because shortcut subgraphs are tree-edge
    forests oriented child → parent, the map is functional and
    pointer doubling converges in O(log depth) whole-array passes.
    """
    while True:
        jumped = pointer[pointer]
        if np.array_equal(jumped, pointer):
            return pointer
        pointer = jumped


def segment_max(np, values, offsets, *, empty: int = 0):
    """Per-segment max of ``values`` over ragged ``offsets`` slices.

    ``np.maximum.reduceat`` misreads zero-length segments (it returns
    the element *at* the offset, or raises at the array end), so those
    are patched to ``empty``.
    """
    sizes = offsets[1:] - offsets[:-1]
    out = np.full(len(sizes), empty, dtype=np.int64)
    nonempty = sizes > 0
    if values.size and nonempty.any():
        reduced = np.maximum.reduceat(values, offsets[:-1][nonempty])
        out[nonempty] = reduced
    return out


def segment_min(np, values, offsets, *, empty: int = 0):
    """Per-segment min of ``values``; zero-length segments give ``empty``."""
    sizes = offsets[1:] - offsets[:-1]
    out = np.full(len(sizes), empty, dtype=np.int64)
    nonempty = sizes > 0
    if values.size and nonempty.any():
        out[nonempty] = np.minimum.reduceat(values, offsets[:-1][nonempty])
    return out


def segment_sum(np, values, offsets):
    """Per-segment sum of ``values``; zero-length segments sum to 0."""
    sizes = offsets[1:] - offsets[:-1]
    out = np.zeros(len(sizes), dtype=np.int64)
    nonempty = sizes > 0
    if values.size and nonempty.any():
        out[nonempty] = np.add.reduceat(values, offsets[:-1][nonempty])
    return out


#: Once the scan's active set shrinks below this fraction of its
#: starting population, still-active small segments are handed to the
#: bit-parallel straggler kernel — the last few high-pass-count
#: segments would otherwise each charge a whole near-empty level loop
#: per extra pass.
HANDOFF_FRACTION = 64

#: Largest segment (in clones) eligible for the straggler handoff —
#: three uint64 words of reach set per node.  Larger stragglers stay
#: in the scan, whose cost scales with BFS sources, not segment size.
BIT_SEGMENT_LIMIT = 192

#: Largest max-degree for which the scan's BFS levels use the padded
#: ELL adjacency (one 2-D gather per level).  Beyond it — hub-style
#: segments with one high-degree center — the overfetch of
#: ``maxdeg × frontier`` entries outweighs the saved slot arithmetic
#: and the CSR gather path is used instead.
ELL_DEGREE_LIMIT = 16

#: The scan switches from one BFS source per segment per pass to two
#: once fewer than ``initial / PAIR_FRACTION`` segments remain active.
#: Early passes are wide — their cost is gather bandwidth, which a
#: second source would double — while tail passes are dominated by
#: fixed per-level call overhead, which pairing halves.
PAIR_FRACTION = 8


def bounded_diameter_batch(np, indptr, indices, starts):
    """Exact diameter of every segment of a concatenated local graph.

    Batch twin of :func:`repro.graphs.csr.bounded_diameter`: segment
    ``s`` owns nodes ``[starts[s], starts[s + 1])`` of the shared CSR
    (``indices`` never cross a segment boundary).  Returns one diameter
    per segment, ``-1`` where a segment is disconnected.

    Every segment runs the same exact eccentricity-bounding scan as
    the per-instance :func:`bounded_diameter` — widest-upper and
    smallest-lower BFS sources, interval updates, candidate kills —
    except that all still-active segments step their BFS frontiers
    together, one vectorized gather per level, and every pass compacts
    its working set to the segments still converging.  Each pass runs
    *two* sources per segment at once (the widest-upper and the
    smallest-lower candidate) in a duplicated virtual node space, so
    the number of lockstep level loops is halved.  Once only a
    straggling few segments remain, the small ones are finished by
    :func:`_diameter_bits` instead — a high-pass-count straggler would
    otherwise charge a whole near-empty level loop per extra pass.
    Both kernels are exact, so the result matches looping
    :func:`bounded_diameter` per segment.
    """
    starts = np.asarray(starts, dtype=np.int64)
    segments = len(starts) - 1
    total = int(starts[-1] - starts[0])
    sizes = starts[1:] - starts[:-1]
    diameter = np.zeros(segments, dtype=np.int64)
    if not total:
        return diameter
    seg_of = np.repeat(np.arange(segments, dtype=np.int64), sizes)

    infinity = 2 * int(sizes.max()) + 2
    lower = np.zeros(total, dtype=np.int64)
    upper = np.full(total, infinity, dtype=np.int64)
    alive = sizes[seg_of] > 1  # singleton segments are done at 0
    worst = np.zeros(segments, dtype=np.int64)
    # Two BFS sources per segment per pass: the widest-upper candidate
    # (``source_a``) and the smallest-lower one (``source_b``) expand
    # simultaneously in a duplicated virtual node space — node ``v`` of
    # copy B is slot ``v + total`` — halving the lockstep level loops.
    source_a = np.where(sizes > 1, starts[:-1], -1)
    source_b = np.where(sizes > 1, starts[1:] - 1, -1)
    # One sentinel slot past both copies: ELL padding points there and
    # its distance is pinned >= 0, so one mask drops pads and visited.
    pad = 2 * total
    dist = np.empty(pad + 1, dtype=np.int64)
    dist[pad] = 0
    stamp = np.empty(pad, dtype=np.int64)

    degrees_all = indptr[1:] - indptr[:-1]
    maxdeg = int(degrees_all.max()) if len(degrees_all) else 0
    ell = None
    if 0 < maxdeg <= ELL_DEGREE_LIMIT:
        # Row-major so each frontier node's slots gather contiguously.
        ell = np.full((total, maxdeg), pad, dtype=np.int64)
        for k in range(maxdeg):
            rows = np.flatnonzero(degrees_all > k)
            ell[rows, k] = indices[indptr[rows] + k]
        ell = np.concatenate([ell, np.where(ell == pad, pad, ell + total)])
        v_indptr = indptr
        v_indices = indices
    else:
        v_indices = np.concatenate([indices, indices + total])
        v_indptr = np.concatenate([indptr, indptr[1:] + len(indices)])

    active = np.flatnonzero(source_a >= 0)
    initial_active = max(int(active.size), 1)
    pick_upper = True
    while active.size:
        count = len(active)
        asz = sizes[active]
        heads = np.cumsum(asz) - asz
        nsel = (
            np.arange(int(asz.sum()), dtype=np.int64)
            - np.repeat(heads, asz)
            + np.repeat(starts[:-1][active], asz)
        )
        paired = count * PAIR_FRACTION <= initial_active

        # One synchronized BFS pass: every active segment expands from
        # its source — from both its sources at once in the tail; a
        # level step is one gather over all frontiers of both copies.
        dist[nsel] = -1
        if paired:
            dist[nsel + total] = -1
            frontier = np.concatenate(
                [source_a[active], source_b[active] + total]
            )
        elif pick_upper:
            frontier = source_a[active]
        else:
            frontier = source_b[active]
        dist[frontier] = 0
        level = 0
        while frontier.size:
            if ell is not None:
                cand = ell[frontier].ravel()
            else:
                base = v_indptr[frontier]
                degrees = v_indptr[frontier + 1] - base
                slot_count = int(degrees.sum())
                if not slot_count:
                    break
                shift = np.cumsum(degrees) - degrees - base
                slots = np.arange(slot_count, dtype=np.int64) - np.repeat(
                    shift, degrees
                )
                cand = v_indices[slots]
            cand = cand[dist[cand] < 0]
            if not cand.size:
                break
            level += 1
            dist[cand] = level
            # Dedupe without sorting: scatter each candidate's position,
            # keep the one whose write survived.  Stale stamp slots are
            # never read — only just-written indices are gathered back.
            pos = np.arange(cand.size, dtype=np.int64)
            stamp[cand] = pos
            frontier = cand[stamp[cand] == pos]

        # Pass-end accounting: dist[nsel] is segment-contiguous (nsel
        # concatenates the active segments' node ranges in rank order),
        # so eccentricities and reach counts are segmented reductions
        # instead of per-level scatters.
        bounds = np.append(heads, nsel.size)
        d_a = dist[nsel]
        ecc_a = segment_max(np, d_a, bounds, empty=0)
        top_ecc = ecc_a
        if paired:
            d_b = dist[nsel + total]
            ecc_b = segment_max(np, d_b, bounds, empty=0)
            top_ecc = np.maximum(ecc_a, ecc_b)
        reached = segment_sum(np, (d_a >= 0).astype(np.int64), bounds)
        ok = reached == asz
        if not ok.all():
            dead = active[~ok]
            diameter[dead] = -1
            source_a[dead] = -1
        best_ecc = np.maximum(worst[active], np.where(ok, top_ecc, 0))

        # Interval updates for alive nodes of still-connected segments,
        # folding in every expanded source's distance vector at once.
        node_rank = np.repeat(np.arange(count, dtype=np.int64), asz)
        keep = alive[nsel] & ok[node_rank]
        touched = nsel[keep]
        rank = node_rank[keep]
        da = d_a[keep]
        ea = ecc_a[rank]
        low = np.maximum(lower[touched], np.maximum(da, ea - da))
        up = np.minimum(upper[touched], ea + da)
        if paired:
            db = d_b[keep]
            eb = ecc_b[rank]
            np.maximum(low, np.maximum(db, eb - db), out=low)
            np.minimum(up, eb + db, out=up)
        lower[touched] = low
        upper[touched] = up
        # Lower bounds can push the best-known eccentricity before the
        # kill check, as in the per-segment scan.
        lower_best = np.zeros(count, dtype=np.int64)
        np.maximum.at(lower_best, rank, low)
        best_ecc = np.maximum(best_ecc, np.where(ok, lower_best, 0))
        worst[active] = best_ecc
        kill = (up <= best_ecc[rank]) | (low == up)
        alive[touched[kill]] = False

        # Next source pair per active segment: widest upper bound and
        # smallest lower bound; first index breaks ties.
        survivor = touched[~kill]
        survivor_rank = rank[~kill]
        key_u = up[~kill]
        key_l = infinity - low[~kill]
        best_u = np.full(count, -1, dtype=np.int64)
        np.maximum.at(best_u, survivor_rank, key_u)
        best_l = np.full(count, -1, dtype=np.int64)
        np.maximum.at(best_l, survivor_rank, key_l)
        first_u = np.full(count, total, dtype=np.int64)
        is_u = key_u == best_u[survivor_rank]
        np.minimum.at(first_u, survivor_rank[is_u], survivor[is_u])
        first_l = np.full(count, total, dtype=np.int64)
        is_l = key_l == best_l[survivor_rank]
        np.minimum.at(first_l, survivor_rank[is_l], survivor[is_l])
        still = (source_a[active] >= 0) & (first_u < total)
        source_a[active] = np.where(still, first_u, -1)
        source_b[active] = np.where(still, first_l, -1)
        if not paired:
            pick_upper = not pick_upper
        active = active[still]

        if active.size and active.size * HANDOFF_FRACTION <= initial_active:
            # Straggler handoff: small segments still converging finish
            # by bit-parallel all-pairs BFS in one go (exact, and cheap
            # now that only a few segments remain); large ones keep
            # scanning.
            hand = sizes[active] <= BIT_SEGMENT_LIMIT
            if hand.any():
                handoff = active[hand]
                pick = np.zeros(segments, dtype=bool)
                pick[handoff] = True
                sub_indptr, sub_indices, sub_starts = _extract_segments(
                    np, indptr, indices, starts, pick
                )
                diameter[handoff] = _diameter_bits(
                    np, sub_indptr, sub_indices, sub_starts
                )
                # Exact values: shield them from the final lower-bound
                # merge by lifting worst to the answer.
                worst[handoff] = diameter[handoff]
                active = active[~hand]
    np.maximum(diameter, np.where(diameter >= 0, worst, -1), out=diameter)
    return diameter


def _extract_segments(np, indptr, indices, starts, pick):
    """Renumbered sub-CSR of the segments selected by boolean ``pick``."""
    sizes = starts[1:] - starts[:-1]
    seg_of = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    node_mask = pick[seg_of]
    sel_nodes = np.flatnonzero(node_mask)
    new_id = np.empty(int(starts[-1]), dtype=np.int64)
    new_id[sel_nodes] = np.arange(len(sel_nodes), dtype=np.int64)
    degrees = indptr[1:] - indptr[:-1]
    sub_indptr = _offsets(np, degrees[sel_nodes])
    sub_indices = new_id[indices[np.repeat(node_mask, degrees)]]
    sub_starts = _offsets(np, sizes[pick])
    return sub_indptr, sub_indices, sub_starts


def _ell_slots(np, indptr, indices):
    """ELL-style adjacency slots: ``(rows, k-th neighbor)`` per degree slot.

    Each slot pairs the nodes of degree > k with their k-th adjacency
    entry, so a whole BFS step is one plain vectorized op per slot —
    rows are unique within a slot, which makes fancy ``|=`` exact.
    """
    degrees = indptr[1:] - indptr[:-1]
    if not len(indices):
        return []
    slots = []
    for k in range(int(degrees.max())):
        rows = np.flatnonzero(degrees > k)
        slots.append((rows, indices[indptr[rows] + k]))
    return slots


def _popcount_rows(np, words):
    """Per-row popcount of a 2-D uint64 bitset array."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    # SWAR fallback for numpy < 2.0.
    x = words.copy()
    x -= (x >> np.uint64(1)) & np.uint64(0x5555555555555555)
    x = (x & np.uint64(0x3333333333333333)) + (
        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x * np.uint64(0x0101010101010101)) >> np.uint64(56)
    return x.sum(axis=1, dtype=np.int64)


def _diameter_bits(np, indptr, indices, starts):
    """Bit-parallel all-pairs BFS diameter of every (small) segment.

    Each node carries its reach set as segment-local uint64 words; one
    step ORs every node's neighbors' reach sets into its own, and a
    node's eccentricity is the first step at which its reach set spans
    its whole segment.  A reach set that stabilizes short of full
    coverage certifies its segment disconnected (``-1``).  Exact, and
    sized for the scan's straggler handoff: a handful of segments of
    at most :data:`BIT_SEGMENT_LIMIT` nodes each.
    """
    starts = np.asarray(starts, dtype=np.int64)
    segments = len(starts) - 1
    sizes = starts[1:] - starts[:-1]
    total = int(starts[-1])
    if not total:
        return np.zeros(segments, dtype=np.int64)
    seg_of = np.repeat(np.arange(segments, dtype=np.int64), sizes)
    local = np.arange(total, dtype=np.int64) - starts[:-1][seg_of]
    words = (int(sizes.max()) + 63) >> 6

    reach = np.zeros((total, words), dtype=np.uint64)
    reach[np.arange(total), local >> 6] = np.left_shift(
        np.uint64(1), (local & 63).astype(np.uint64)
    )
    target = sizes[seg_of]
    ecc = np.full(total, -1, dtype=np.int64)
    done = target == 1  # singleton segments have eccentricity 0
    ecc[done] = 0
    slots = _ell_slots(np, indptr, indices)
    step = 0
    while not done.all():
        step += 1
        # One BFS step: OR each node's neighbors' reach sets into a
        # fresh buffer, one vectorized pass per adjacency slot (rows
        # are unique within a slot, so fancy |= is safe).
        grown = reach.copy()
        for rows, neighbors in slots:
            grown[rows] |= reach[neighbors]
        if np.array_equal(grown, reach):
            # Stabilized: every not-done node is disconnected from part
            # of its segment.
            bad = segment_min(np, ecc, starts, empty=0) < 0
            return np.where(bad, -1, segment_max(np, ecc, starts, empty=0))
        reach = grown
        newly = ~done & (_popcount_rows(np, reach) == target)
        ecc[newly] = step
        done |= newly
    return segment_max(np, ecc, starts, empty=0)
