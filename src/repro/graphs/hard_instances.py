"""Lower-bound witness graphs.

The pervasive Ω̃(√n + D) lower bound for CONGEST optimization problems
(Peleg–Rubinovich FOCS'99; Das Sarma et al. STOC'11) is proven on a
family of graphs with *small diameter* but *poor connectivity between
distant node groups*: many long parallel paths plus one shallow tree
whose leaves touch every path column.  Any algorithm (and any shortcut)
must funnel path-to-path information through the few tree edges near
the root, so congestion Ω(#paths) is unavoidable even though
``D = O(log n)``.

These graphs are the workload for experiment E10: the shortcut-based
MST cannot beat Θ̃(√n) here (no good shortcuts exist — matching the
lower bound), while on planar/bounded-genus graphs it runs in Õ(D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.congest.topology import Topology
from repro.errors import TopologyError
from repro.graphs.generators import fast_topology


@dataclass(frozen=True)
class LowerBoundInstance:
    """A Peleg–Rubinovich-style graph with its structure exposed.

    Attributes
    ----------
    topology:
        The graph.
    paths:
        ``paths[i][j]`` is the node of path ``i`` at column ``j``.
    tree_nodes:
        Nodes of the shallow binary tree (including its leaves).
    tree_root:
        Root of the shallow tree.
    """

    topology: Topology
    paths: Tuple[Tuple[int, ...], ...]
    tree_nodes: Tuple[int, ...]
    tree_root: int

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    @property
    def path_length(self) -> int:
        return len(self.paths[0]) - 1


def peleg_rubinovich(
    n_paths: int, path_length: int, fast: bool = True
) -> LowerBoundInstance:
    """Build the lower-bound family Γ(p, ℓ).

    Structure:

    * ``p = n_paths`` disjoint paths, each with ``ℓ + 1`` columns;
    * a balanced binary tree over ``ℓ + 1`` leaves;
    * leaf ``j`` of the tree is connected to column ``j`` of *every*
      path ("spokes").

    The diameter is ``O(log ℓ)`` (via the tree), and with
    ``p = ℓ = √n`` this is the canonical Ω̃(√n + D) witness.

    The fast path emits the canonical sorted edge array directly: path
    nodes come before tree nodes, so per path node the successor edge
    precedes its (larger) spoke endpoint, and the heap-ordered tree
    edges follow with both endpoints above ``tree_base``.
    """
    if n_paths < 1 or path_length < 1:
        raise TopologyError("need n_paths >= 1 and path_length >= 1")
    columns = path_length + 1

    paths: List[Tuple[int, ...]] = [
        tuple(i * columns + j for j in range(columns)) for i in range(n_paths)
    ]

    # Balanced binary tree with `columns` leaves, stored heap-style.
    n_leaves = 1
    while n_leaves < columns:
        n_leaves *= 2
    tree_size = 2 * n_leaves - 1
    tree_base = n_paths * columns
    leaves = [tree_base + (n_leaves - 1) + j for j in range(n_leaves)]
    # Surplus leaves (when columns is not a power of two) hang unused on
    # the tree; they are still connected through their tree parent.

    edges: List[Tuple[int, int]] = []
    if not fast:
        for i in range(n_paths):
            base = i * columns
            edges.extend((base + j, base + j + 1) for j in range(columns - 1))
        edges.extend(
            (tree_base + v, tree_base + (v - 1) // 2) for v in range(1, tree_size)
        )
        # Spokes: leaf j touches column j of every path.
        for j in range(columns):
            for i in range(n_paths):
                edges.append((leaves[j], paths[i][j]))
        topology = Topology(tree_base + tree_size, edges)
    else:
        for i in range(n_paths):
            base = i * columns
            for j in range(columns):
                u = base + j
                if j + 1 < columns:
                    edges.append((u, u + 1))
                # Spoke: column j's leaf (every tree node id > u).
                edges.append((u, leaves[j]))
        for p in range(n_leaves - 1):  # internal heap nodes
            edges.append((tree_base + p, tree_base + 2 * p + 1))
            edges.append((tree_base + p, tree_base + 2 * p + 2))
        topology = fast_topology(tree_base + tree_size, edges)
    return LowerBoundInstance(
        topology=topology,
        paths=tuple(paths),
        tree_nodes=tuple(range(tree_base, tree_base + tree_size)),
        tree_root=tree_base,
    )


def square_instance(side: int, fast: bool = True) -> LowerBoundInstance:
    """The balanced p = ℓ = ``side`` instance (n ≈ side² + 2·side)."""
    return peleg_rubinovich(side, side, fast=fast)
