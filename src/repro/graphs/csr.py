"""Flat-array (CSR) graph kernels for the analysis layer.

This module mirrors, at the analysis layer, the engine split of
:mod:`repro.congest.engine`: the dict-of-set graph walks that the
quality measures and partition utilities used to rebuild on every call
are replaced by immutable flat arrays, computed once and cached on the
owning :class:`~repro.congest.topology.Topology` /
:class:`~repro.graphs.spanning_trees.SpanningTree`.  Both classes are
read-only values, so a cache hung off them never invalidates.

Three structures are provided:

* :class:`AdjacencyCSR` — compressed-sparse-row adjacency of a
  topology (``indptr`` / ``indices``) plus, per adjacency slot, the
  index of the underlying canonical edge (``edge_ids``), enabling
  counting-array accumulation over edges;
* :func:`edge_ids` — the canonical-edge → dense-index mapping
  (positions in ``topology.edges``);
* :class:`TreeArrays` — parent/depth arrays of a rooted spanning tree
  together with an Euler tour (preorder + entry/exit times), giving
  O(1) ancestor tests and contiguous subtree slices.

Everything here is plain Python lists — the same trade the batched
CONGEST engine makes: flat indexable storage beats hash-based
containers by a large constant factor without any new dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.congest.topology import Edge, Topology, canonical_edge
from repro.errors import TopologyError
from repro.graphs.spanning_trees import SpanningTree


class AdjacencyCSR:
    """Immutable flat adjacency of a topology.

    Attributes
    ----------
    n, m:
        Node and edge counts.
    indptr:
        ``n + 1`` offsets; node ``v``'s neighbors live in
        ``indices[indptr[v]:indptr[v + 1]]`` (ascending, identical to
        ``topology.neighbors(v)``).
    indices:
        The ``2m`` neighbor entries.
    edge_ids:
        Parallel to ``indices``: ``edge_ids[k]`` is the position in
        ``topology.edges`` of the edge ``{v, indices[k]}``.
    """

    __slots__ = ("n", "m", "indptr", "indices", "edge_ids")

    def __init__(self, topology: Topology) -> None:
        built = AdjacencyCSR.from_edges(topology.n, topology.edges)
        self.n = built.n
        self.m = built.m
        self.indptr = built.indptr
        self.indices = built.indices
        self.edge_ids = built.edge_ids

    @classmethod
    def from_edges(cls, n: int, edges: Sequence[Edge]) -> "AdjacencyCSR":
        """Build directly from a canonical sorted edge array.

        Two counting passes over the edge array — no adjacency dicts,
        no per-edge hash lookups, and crucially no need for the owning
        topology's lazy ``neighbors()`` tuples to exist at all.  Edge
        ids fall out for free: the array position *is* the dense id.
        The per-node slices come out ascending because the edge array
        is sorted: a node's smaller neighbors arrive first (edges where
        it is the ``max`` endpoint, ascending by the other end), then
        its larger neighbors (edges where it is the ``min`` endpoint).
        """
        self = cls.__new__(cls)
        self.n = n
        self.m = len(edges)
        degree = [0] * n
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        indptr: List[int] = [0] * (n + 1)
        total = 0
        for v in range(n):
            indptr[v + 1] = total = total + degree[v]
        cursor = indptr[:-1].copy()
        indices: List[int] = [0] * (2 * self.m)
        ids: List[int] = [0] * (2 * self.m)
        for eid, (u, v) in enumerate(edges):
            k = cursor[u]
            indices[k] = v
            ids[k] = eid
            cursor[u] = k + 1
            k = cursor[v]
            indices[k] = u
            ids[k] = eid
            cursor[v] = k + 1
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = ids
        return self

    def neighbors(self, v: int) -> List[int]:
        """Neighbors of ``v`` as a list slice (ascending)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


class TreeArrays:
    """Flat parent/depth/Euler-tour arrays of a rooted spanning tree.

    ``preorder`` lists the nodes in DFS order (children visited in
    ascending id, matching ``SpanningTree.children``); ``tour_in[v]``
    and ``tour_out[v]`` delimit ``v``'s subtree: it is exactly
    ``preorder[tour_in[v]:tour_out[v]]``.

    Two derived node orderings serve the direct construction kernels
    (:mod:`repro.core.construct_fast`), which replace whole simulated
    phases with bottom-up array passes:

    * :meth:`bottom_up` — children strictly before parents (reversed
      preorder), the order every upward sweep (CoreSlow counting,
      CoreFast sampling and flooding) processes nodes in;
    * :meth:`levels` — nodes grouped by depth, root level first, the
      per-level ordering used to reason about pipelined round costs.
    """

    __slots__ = (
        "n",
        "root",
        "parent",
        "depth",
        "preorder",
        "tour_in",
        "tour_out",
        "_bottom_up",
        "_levels",
    )

    def __init__(self, tree: SpanningTree) -> None:
        n = tree.n
        self.n = n
        self.root = tree.root
        self.parent: List[int] = [
            -1 if tree.parent(v) is None else tree.parent(v) for v in range(n)
        ]
        self.depth: List[int] = [tree.depth(v) for v in range(n)]
        preorder: List[int] = []
        tour_in = [0] * n
        tour_out = [0] * n
        stack: List[Tuple[int, bool]] = [(tree.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                tour_out[v] = len(preorder)
                continue
            tour_in[v] = len(preorder)
            preorder.append(v)
            stack.append((v, True))
            for child in reversed(tree.children(v)):
                stack.append((child, False))
        self.preorder = preorder
        self.tour_in = tour_in
        self.tour_out = tour_out
        self._bottom_up: List[int] = []
        self._levels: List[List[int]] = []

    def bottom_up(self) -> List[int]:
        """All nodes with every child before its parent (lazily cached).

        Reversed preorder: within one subtree all descendants precede
        the subtree root, so one pass in this order implements any
        leaves-to-root recurrence.
        """
        if not self._bottom_up:
            self._bottom_up = self.preorder[::-1]
        return self._bottom_up

    def levels(self) -> List[List[int]]:
        """Nodes grouped by tree depth, ascending ids per level (cached).

        ``levels()[d]`` lists the depth-``d`` nodes; the grouping backs
        the per-level round accounting of the analytic cost models.
        """
        if not self._levels:
            levels: List[List[int]] = [[] for _ in range(max(self.depth) + 1)]
            for v in range(self.n):
                levels[self.depth[v]].append(v)
            self._levels = levels
        return self._levels

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Whether ``ancestor`` lies on the root path of ``descendant``
        (inclusive: every node is its own ancestor)."""
        return (
            self.tour_in[ancestor] <= self.tour_in[descendant]
            and self.tour_out[descendant] <= self.tour_out[ancestor]
        )

    def subtree(self, v: int) -> List[int]:
        """All nodes of ``v``'s subtree, in preorder."""
        return self.preorder[self.tour_in[v] : self.tour_out[v]]


def bounded_diameter(adjacency: List[List[int]]) -> int:
    """Exact diameter of a local-id graph via eccentricity bounding.

    A BFS from ``v`` with eccentricity ``e`` pins every node ``w`` into
    ``max(d, e - d) <= ecc(w) <= e + d`` where ``d = dist(v, w)``.
    Nodes whose upper bound cannot beat the best eccentricity seen are
    dropped; sources alternate between the widest upper bound (to
    shrink the candidate set) and the smallest lower bound (a central
    node, whose BFS tightens everyone's upper bound).  Exact for every
    graph, and typically needs a handful of BFS passes instead of one
    per node.  Returns ``-1`` when the graph is disconnected (callers
    raise their own domain error).

    This is the shared diameter kernel behind
    :func:`repro.core.quality_fast.dilation` and
    ``Partition.part_diameters``.
    """
    k = len(adjacency)
    if k <= 1:
        return 0
    infinity = 2 * k
    lower = [0] * k
    upper = [infinity] * k
    alive = [True] * k
    remaining = k
    worst = 0
    dist = [-1] * k
    pick_upper = True
    source = 0
    while remaining:
        for j in range(k):
            dist[j] = -1
        dist[source] = 0
        frontier = [source]
        reached = 1
        ecc = 0
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                du = dist[u] + 1
                for w in adjacency[u]:
                    if dist[w] < 0:
                        dist[w] = du
                        nxt.append(w)
            if nxt:
                ecc += 1
                reached += len(nxt)
            frontier = nxt
        if reached != k:
            return -1
        if ecc > worst:
            worst = ecc
        next_source = -1
        best_key = -1
        for w in range(k):
            if not alive[w]:
                continue
            d = dist[w]
            low = d if d >= ecc - d else ecc - d
            if low > lower[w]:
                lower[w] = low
            high = ecc + d
            if high < upper[w]:
                upper[w] = high
            if lower[w] > worst:
                worst = lower[w]
            if upper[w] <= worst or lower[w] == upper[w]:
                alive[w] = False
                remaining -= 1
                continue
            # Deterministic selection for the next BFS source.
            key = upper[w] if pick_upper else infinity - lower[w]
            if key > best_key:
                best_key = key
                next_source = w
        pick_upper = not pick_upper
        source = next_source
    return worst


def edge_ids(topology: Topology) -> Dict[Edge, int]:
    """Canonical edge → position in ``topology.edges`` (cached)."""
    cache = topology._kernels
    index = cache.get("edge_ids")
    if index is None:
        index = {edge: i for i, edge in enumerate(topology.edges)}
        cache["edge_ids"] = index
    return index


def adjacency_csr(topology: Topology) -> AdjacencyCSR:
    """The cached :class:`AdjacencyCSR` of a topology.

    Built straight from the canonical edge array, so CSR-only
    consumers never force the topology's lazy tuple adjacency or edge
    frozenset into existence.
    """
    cache = topology._kernels
    csr = cache.get("csr")
    if csr is None:
        csr = AdjacencyCSR.from_edges(topology.n, topology.edges)
        cache["csr"] = csr
    return csr


def bfs_spanning_tree(topology: Topology, root: int = 0) -> SpanningTree:
    """CSR-based BFS spanning tree, with :class:`TreeArrays` pre-cached.

    The array twin of :meth:`SpanningTree.bfs
    <repro.graphs.spanning_trees.SpanningTree.bfs>`: identical output
    (every node's parent is its smallest-id neighbor in the previous
    BFS layer) but driven off the flat CSR slices, skipping the
    parent-array re-validation and re-derivation the reference
    constructor performs, and leaving the resulting tree with its
    ``TreeArrays`` already in the kernel cache.  The differential suite
    (``tests/graphs/test_fastpath_equivalence.py``) pins the
    equivalence.
    """
    csr = adjacency_csr(topology)
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    parent = [-1] * n
    depth = [0] * n
    seen = [False] * n
    seen[root] = True
    children: List[List[int]] = [[] for _ in range(n)]
    order = [root]
    head = 0
    height = 0
    while head < len(order):
        u = order[head]
        head += 1
        du1 = depth[u] + 1
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if not seen[w]:
                seen[w] = True
                parent[w] = u
                depth[w] = du1
                if du1 > height:
                    height = du1
                children[u].append(w)
                order.append(w)
    if len(order) != n:
        raise TopologyError("BFS tree of a disconnected topology")
    tree = SpanningTree._from_validated(root, parent, depth, children, height)
    tree._kernels["arrays"] = TreeArrays(tree)
    return tree


def tree_arrays(tree: SpanningTree) -> TreeArrays:
    """The cached :class:`TreeArrays` of a spanning tree."""
    cache = tree._kernels
    arrays = cache.get("arrays")
    if arrays is None:
        arrays = TreeArrays(tree)
        cache["arrays"] = arrays
    return arrays
