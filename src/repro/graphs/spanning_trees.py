"""Rooted spanning trees.

Tree-restricted shortcuts (Definition 2) are defined relative to a
rooted spanning tree ``T`` of the network, typically a BFS tree so that
``depth(T) <= D``.  :class:`SpanningTree` is the shared representation:
an immutable parent array plus derived depth/children structures, with
the ancestor utilities the shortcut machinery needs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.congest.topology import Edge, Topology, canonical_edge
from repro.errors import TopologyError


class SpanningTree:
    """A rooted spanning tree over nodes ``0 .. n-1``.

    Parameters
    ----------
    root:
        The root node.
    parent:
        ``parent[v]`` is the tree parent of ``v``; use ``-1`` (or
        ``None``) for the root and only for the root.
    """

    __slots__ = (
        "_root",
        "_parent",
        "_children",
        "_depth",
        "_height",
        "_edges",
        "_kernels",
    )

    def __init__(self, root: int, parent: Sequence[Optional[int]]) -> None:
        n = len(parent)
        if not 0 <= root < n:
            raise TopologyError(f"root {root} out of range for n={n}")
        norm: List[int] = []
        for v, p in enumerate(parent):
            p = -1 if p is None else int(p)
            if (p == -1) != (v == root):
                raise TopologyError(
                    f"node {v}: parent {p} inconsistent with root {root}"
                )
            if p != -1 and not 0 <= p < n:
                raise TopologyError(f"node {v}: parent {p} out of range")
            norm.append(p)
        self._root = root
        # Lazy cache for derived flat-array structures (repro.graphs.csr).
        self._kernels: Dict[str, object] = {}
        self._parent: Tuple[int, ...] = tuple(norm)

        children: List[List[int]] = [[] for _ in range(n)]
        for v, p in enumerate(self._parent):
            if p != -1:
                children[p].append(v)
        self._children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(c)) for c in children
        )

        depth = [-1] * n
        depth[root] = 0
        queue = deque([root])
        seen = 1
        while queue:
            u = queue.popleft()
            for c in self._children[u]:
                depth[c] = depth[u] + 1
                seen += 1
                queue.append(c)
        if seen != n:
            raise TopologyError("parent array does not describe a spanning tree")
        self._depth: Tuple[int, ...] = tuple(depth)
        self._height = max(depth)
        # The edge frozenset is derived on first use (see `edges`).
        self._edges: Optional[FrozenSet[Edge]] = None

    @classmethod
    def _from_validated(
        cls,
        root: int,
        parent: Sequence[int],
        depth: Sequence[int],
        children: Sequence[Sequence[int]],
        height: int,
    ) -> "SpanningTree":
        """Trusted fast path for builders that already hold consistent
        parent/depth/children arrays (children ascending per node).

        Used by :func:`repro.graphs.csr.bfs_spanning_tree`, whose BFS
        produces exactly the structures ``__init__`` would re-derive;
        the reference constructor stays the validating front door for
        untrusted parent arrays.
        """
        self = cls.__new__(cls)
        self._root = root
        self._kernels = {}
        self._parent = tuple(parent)
        self._children = tuple(tuple(c) for c in children)
        self._depth = tuple(depth)
        self._height = height
        self._edges = None
        return self

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._parent)

    @property
    def root(self) -> int:
        """The root node."""
        return self._root

    @property
    def height(self) -> int:
        """Depth of the tree (the paper's ``D`` when T is a BFS tree)."""
        return self._height

    @property
    def edges(self) -> FrozenSet[Edge]:
        """All tree edges in canonical form (built lazily)."""
        edges = self._edges
        if edges is None:
            edges = frozenset(
                (v, p) if v < p else (p, v)
                for v, p in enumerate(self._parent)
                if p != -1
            )
            self._edges = edges
        return edges

    def parent(self, v: int) -> Optional[int]:
        """Tree parent of ``v`` (``None`` for the root)."""
        p = self._parent[v]
        return None if p == -1 else p

    def children(self, v: int) -> Tuple[int, ...]:
        """Tree children of ``v`` in sorted order."""
        return self._children[v]

    def depth(self, v: int) -> int:
        """Distance from the root to ``v`` along the tree."""
        return self._depth[v]

    def parent_edge(self, v: int) -> Optional[Edge]:
        """The canonical edge between ``v`` and its parent."""
        p = self._parent[v]
        return None if p == -1 else canonical_edge(v, p)

    def is_tree_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the tree."""
        return canonical_edge(u, v) in self.edges

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def ancestors(self, v: int, include_self: bool = False) -> Iterator[int]:
        """Yield ancestors of ``v`` walking up to (and including) the root."""
        if include_self:
            yield v
        p = self._parent[v]
        while p != -1:
            yield p
            p = self._parent[p]

    def path_to_root_edges(self, v: int) -> Iterator[Edge]:
        """Yield the parent edges on the path from ``v`` to the root."""
        u = v
        p = self._parent[u]
        while p != -1:
            yield canonical_edge(u, p)
            u = p
            p = self._parent[u]

    def order_bottom_up(self) -> List[int]:
        """All nodes sorted by decreasing depth (leaves first)."""
        return sorted(range(self.n), key=lambda v: -self._depth[v])

    def subtree_sizes(self) -> List[int]:
        """Size of the subtree rooted at each node."""
        sizes = [1] * self.n
        for v in self.order_bottom_up():
            p = self._parent[v]
            if p != -1:
                sizes[p] += sizes[v]
        return sizes

    def lower_endpoint(self, edge: Edge) -> int:
        """The deeper endpoint of a tree edge (its subtree side)."""
        u, v = edge
        if self._parent[u] == v:
            return u
        if self._parent[v] == u:
            return v
        raise TopologyError(f"{edge} is not a tree edge")

    # ------------------------------------------------------------------
    # Validation / construction
    # ------------------------------------------------------------------

    def validate_in(self, topology: Topology) -> None:
        """Check that every tree edge exists in ``topology``."""
        if self.n != topology.n:
            raise TopologyError(
                f"tree has {self.n} nodes but topology has {topology.n}"
            )
        for u, v in self.edges:
            if not topology.has_edge(u, v):
                raise TopologyError(f"tree edge ({u}, {v}) missing from topology")

    @classmethod
    def bfs(cls, topology: Topology, root: int = 0) -> "SpanningTree":
        """Centralized BFS spanning tree (deterministic: parents are the
        smallest-id neighbor in the previous layer)."""
        parent: List[Optional[int]] = [None] * topology.n
        dist = [-1] * topology.n
        dist[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for w in topology.neighbors(u):
                if dist[w] < 0:
                    dist[w] = dist[u] + 1
                    parent[w] = u
                    queue.append(w)
        if min(dist) < 0:
            raise TopologyError("BFS tree of a disconnected topology")
        return cls(root, parent)

    def __repr__(self) -> str:
        return f"SpanningTree(n={self.n}, root={self._root}, height={self._height})"
