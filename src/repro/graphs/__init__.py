"""Graph, partition, tree, and weight generators (the workload layer)."""

from repro.graphs.spanning_trees import SpanningTree
from repro.graphs.csr import adjacency_csr, bfs_spanning_tree, tree_arrays
from repro.graphs.partitions import (
    Partition,
    cycle_arcs,
    grid_bands,
    grid_columns,
    grid_rows,
    random_arcs,
    singletons,
    voronoi,
    whole,
)
from repro.graphs import csr
from repro.graphs import generators
from repro.graphs import hard_instances
from repro.graphs import weights

__all__ = [
    "SpanningTree",
    "Partition",
    "adjacency_csr",
    "bfs_spanning_tree",
    "tree_arrays",
    "cycle_arcs",
    "grid_bands",
    "grid_columns",
    "grid_rows",
    "random_arcs",
    "singletons",
    "voronoi",
    "whole",
    "csr",
    "generators",
    "hard_instances",
    "weights",
]
