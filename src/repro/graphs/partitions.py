"""Node partitions into disjoint, individually-connected parts.

Definition 1 of the paper works with a graph whose vertices are
subdivided into disjoint connected subsets ``P = (P_1, ..., P_N)``.
:class:`Partition` is that object; the generators below produce the
part structures used across experiments — Voronoi cells (typical
Borůvka fragments), contiguous arcs and bands (the worst cases from the
paper's motivation), and singletons (Borůvka's starting point).

A partition does not have to cover every node: nodes outside all parts
simply relay traffic, exactly as in the paper.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.congest.topology import Topology
from repro.errors import TopologyError
from repro.graphs.csr import adjacency_csr, bounded_diameter
from repro.graphs.generators import grid_node


class Partition:
    """Disjoint node subsets ``P_1 .. P_N`` of a topology.

    The dense per-node ``labels`` array is the primary storage; the
    per-part frozensets behind :attr:`parts` / :meth:`members` are
    grouped from it lazily on first access, so label-driven consumers
    (the kernel fast paths, the direct application backend) never pay
    for hash-set materialisation.

    Parameters
    ----------
    n:
        Number of nodes of the underlying topology.
    parts:
        The subsets.  Empty parts are rejected; disjointness is
        enforced.  Connectivity is a property of a specific topology —
        check it with :meth:`validate_connected`.
    """

    __slots__ = ("_n", "_size", "_covered", "_parts", "_part_of")

    def __init__(self, n: int, parts: Sequence[Iterable[int]]) -> None:
        part_of = [-1] * n
        covered = 0
        size = 0
        for index, members in enumerate(parts):
            count = 0
            for v in members:
                if not 0 <= v < n:
                    raise TopologyError(f"part {index} contains invalid node {v}")
                current = part_of[v]
                if current == index:
                    continue  # duplicate listing within the same part
                if current != -1:
                    raise TopologyError(
                        f"node {v} is in both part {current} and part {index}"
                    )
                part_of[v] = index
                count += 1
            if count == 0:
                raise TopologyError(f"part {index} is empty")
            covered += count
            size += 1
        self._n = n
        self._size = size
        self._covered = covered
        self._part_of: Tuple[int, ...] = tuple(part_of)
        self._parts: Optional[Tuple[FrozenSet[int], ...]] = None

    @classmethod
    def from_dense_labels(
        cls, labels: Sequence[int], n_parts: Optional[int] = None
    ) -> "Partition":
        """Trusted fast path from an already-compact labels array.

        ``labels[v]`` must be the part index of ``v`` (``-1`` for
        uncovered), with part indices filling ``0 .. n_parts - 1``
        contiguously — exactly what the array-native partition
        generators produce.  One O(n) counting pass validates that
        every part is nonempty and every label in range; the grouping
        work of :meth:`from_labels` (and the per-member scan of the
        reference constructor) is skipped.
        """
        label_tuple = tuple(labels)
        if n_parts is None:
            n_parts = max(label_tuple, default=-1) + 1
        counts = [0] * n_parts
        for v, label in enumerate(label_tuple):
            if label == -1:
                continue
            if not 0 <= label < n_parts:
                raise TopologyError(
                    f"node {v} carries label {label}, outside 0..{n_parts - 1}"
                )
            counts[label] += 1
        for index, count in enumerate(counts):
            if count == 0:
                raise TopologyError(f"part {index} is empty")
        self = cls.__new__(cls)
        self._n = len(label_tuple)
        self._size = n_parts
        self._covered = sum(counts)
        self._part_of = label_tuple
        self._parts = None
        return self

    @property
    def n(self) -> int:
        """Number of nodes of the underlying topology."""
        return self._n

    @property
    def size(self) -> int:
        """Number of parts (the paper's ``N``)."""
        return self._size

    @property
    def parts(self) -> Tuple[FrozenSet[int], ...]:
        """The parts, in index order (grouped lazily from the labels)."""
        parts = self._parts
        if parts is None:
            buckets: List[List[int]] = [[] for _ in range(self._size)]
            for v, index in enumerate(self._part_of):
                if index != -1:
                    buckets[index].append(v)
            parts = tuple(frozenset(members) for members in buckets)
            self._parts = parts
        return parts

    def part_of(self, v: int) -> Optional[int]:
        """Index of the part containing ``v`` (``None`` if uncovered)."""
        index = self._part_of[v]
        return None if index == -1 else index

    @property
    def labels(self) -> Tuple[int, ...]:
        """Per-node part index, ``-1`` for uncovered nodes.

        The flat-array primary storage, used by the kernel fast paths
        (:mod:`repro.core.quality_fast`) for O(1) membership tests
        without per-node method calls.
        """
        return self._part_of

    def members(self, index: int) -> FrozenSet[int]:
        """Nodes of part ``index``."""
        return self.parts[index]

    @property
    def covered(self) -> int:
        """Number of nodes belonging to some part."""
        return self._covered

    def validate_connected(self, topology: Topology) -> None:
        """Raise unless every part induces a connected subgraph."""
        if topology.n != self._n:
            raise TopologyError("partition and topology node counts differ")
        for index, part in enumerate(self.parts):
            if not _is_connected_subset(topology, part):
                raise TopologyError(f"part {index} is not connected")

    def part_diameters(self, topology: Topology) -> List[int]:
        """Diameter of each ``G[P_i]`` (the quantity shortcuts fight)."""
        return [_induced_diameter(topology, part) for part in self.parts]

    @classmethod
    def from_labels(cls, labels: Sequence[Optional[int]]) -> "Partition":
        """Build from per-node labels (``None`` / negatives = uncovered)."""
        groups: Dict[int, List[int]] = {}
        for v, label in enumerate(labels):
            if label is not None and label >= 0:
                groups.setdefault(label, []).append(v)
        ordered = [groups[key] for key in sorted(groups)]
        return cls(len(labels), ordered)

    def __repr__(self) -> str:
        return f"Partition(n={self._n}, N={self.size}, covered={self.covered})"


def _induced_csr(topology: Topology, part: FrozenSet[int]):
    """Local-id adjacency lists of ``G[part]`` from the cached CSR."""
    csr = adjacency_csr(topology)
    nodes = sorted(part)
    local = {v: i for i, v in enumerate(nodes)}
    indptr, indices = csr.indptr, csr.indices
    adjacency: List[List[int]] = []
    for v in nodes:
        adjacency.append(
            [local[w] for w in indices[indptr[v] : indptr[v + 1]] if w in local]
        )
    return adjacency


def _is_connected_subset(topology: Topology, part: FrozenSet[int]) -> bool:
    adjacency = _induced_csr(topology, part)
    k = len(adjacency)
    seen = [False] * k
    seen[0] = True
    stack = [0]
    reached = 1
    while stack:
        u = stack.pop()
        for w in adjacency[u]:
            if not seen[w]:
                seen[w] = True
                reached += 1
                stack.append(w)
    return reached == k


def _induced_diameter(topology: Topology, part: FrozenSet[int]) -> int:
    diameter = bounded_diameter(_induced_csr(topology, part))
    if diameter < 0:
        raise TopologyError("part is not connected")
    return diameter


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def singletons(topology: Topology) -> Partition:
    """Each node its own part — Borůvka's initial partition."""
    return Partition.from_dense_labels(range(topology.n), topology.n)


def whole(topology: Topology) -> Partition:
    """One part containing every node."""
    return Partition.from_dense_labels([0] * topology.n, 1)


def grid_bands(
    rows: int, cols: int, band_height: int, fast: bool = True
) -> Partition:
    """Horizontal bands of a rows x cols grid, ``band_height`` rows each.

    ``fast=True`` (the default) assigns the dense labels array
    directly; ``fast=False`` keeps the reference list-of-parts path
    (the differential suite pins the two identical).
    """
    if band_height < 1:
        raise TopologyError("band_height must be positive")
    if not fast:
        parts = []
        r = 0
        while r < rows:
            top = min(r + band_height, rows)
            parts.append(
                [grid_node(rr, c, cols) for rr in range(r, top) for c in range(cols)]
            )
            r = top
        return Partition(rows * cols, parts)
    labels = [0] * (rows * cols)
    for r in range(rows):
        band = r // band_height
        base = r * cols
        for c in range(cols):
            labels[base + c] = band
    return Partition.from_dense_labels(labels, (rows + band_height - 1) // band_height)


def grid_rows(rows: int, cols: int, fast: bool = True) -> Partition:
    """One part per grid row (N = rows parts crossing every column)."""
    return grid_bands(rows, cols, 1, fast=fast)


def grid_columns(rows: int, cols: int, fast: bool = True) -> Partition:
    """One part per grid column."""
    if not fast:
        parts = [[grid_node(r, c, cols) for r in range(rows)] for c in range(cols)]
        return Partition(rows * cols, parts)
    labels = [0] * (rows * cols)
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            labels[base + c] = c
    return Partition.from_dense_labels(labels, cols)


def cycle_arcs(
    n: int, n_parts: int, extra_nodes: int = 0, fast: bool = True
) -> Partition:
    """Contiguous arcs of a cycle ``0 .. n-1`` (hub nodes uncovered).

    Used with :func:`repro.graphs.generators.cycle_with_hub`: each arc
    induces a path of length ~ n / n_parts, far above the hub-graph
    diameter — the motivating worst case of Section 1.2.
    """
    if n_parts < 1 or n_parts > n:
        raise TopologyError("need 1 <= n_parts <= n")
    bounds = [round(i * n / n_parts) for i in range(n_parts + 1)]
    if not fast:
        parts = [list(range(bounds[i], bounds[i + 1])) for i in range(n_parts)]
        return Partition(n + extra_nodes, [p for p in parts if p])
    labels = [-1] * (n + extra_nodes)
    index = 0
    for i in range(n_parts):
        lo, hi = bounds[i], bounds[i + 1]
        if lo >= hi:
            continue  # rounding produced an empty arc; compact it away
        for v in range(lo, hi):
            labels[v] = index
        index += 1
    return Partition.from_dense_labels(labels, index)


def voronoi(
    topology: Topology, n_parts: int, seed: int = 0, fast: bool = True
) -> Partition:
    """Multi-source BFS cells around random centers.

    Every node joins the cell of the closest center (ties broken by
    center order), so each cell is connected — the generic "random
    connected parts" workload.  The fast path runs the multi-source
    BFS over the cached CSR slices and hands the dense labels array
    straight to :meth:`Partition.from_dense_labels` (cell ``i`` grows
    from center ``i``, so the labels are compact by construction).
    """
    if not 1 <= n_parts <= topology.n:
        raise TopologyError("need 1 <= n_parts <= n")
    rng = random.Random(seed)
    centers = rng.sample(range(topology.n), n_parts)
    label = [-1] * topology.n
    queue = deque()
    for index, center in enumerate(centers):
        label[center] = index
        queue.append(center)
    if not fast:
        while queue:
            u = queue.popleft()
            for w in topology.neighbors(u):
                if label[w] == -1:
                    label[w] = label[u]
                    queue.append(w)
        return Partition.from_labels(label)
    csr = adjacency_csr(topology)
    indptr, indices = csr.indptr, csr.indices
    while queue:
        u = queue.popleft()
        lu = label[u]
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if label[w] == -1:
                label[w] = lu
                queue.append(w)
    return Partition.from_dense_labels(label, n_parts)


def random_arcs(topology: Topology, n_parts: int, seed: int = 0) -> Partition:
    """Voronoi cells that cover only half the nodes (random subgraph parts).

    Uncovered nodes act as relays, exercising the partial-coverage code
    paths of the constructions.
    """
    full = voronoi(topology, n_parts, seed)
    rng = random.Random(seed ^ 0x5EED)
    labels: List[Optional[int]] = [None] * topology.n
    for index in range(full.size):
        members = sorted(full.members(index))
        # Keep a connected BFS-prefix of about half of each cell.
        keep = max(1, len(members) // 2)
        start = members[0]
        seen = [start]
        seen_set = {start}
        queue = deque([start])
        while queue and len(seen) < keep:
            u = queue.popleft()
            neighbors = [w for w in topology.neighbors(u) if w in full.members(index)]
            rng.shuffle(neighbors)
            for w in neighbors:
                if w not in seen_set and len(seen) < keep:
                    seen_set.add(w)
                    seen.append(w)
                    queue.append(w)
        for v in seen:
            labels[v] = index
    return Partition.from_labels(labels)
