"""Node partitions into disjoint, individually-connected parts.

Definition 1 of the paper works with a graph whose vertices are
subdivided into disjoint connected subsets ``P = (P_1, ..., P_N)``.
:class:`Partition` is that object; the generators below produce the
part structures used across experiments — Voronoi cells (typical
Borůvka fragments), contiguous arcs and bands (the worst cases from the
paper's motivation), and singletons (Borůvka's starting point).

A partition does not have to cover every node: nodes outside all parts
simply relay traffic, exactly as in the paper.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.congest.topology import Topology
from repro.errors import TopologyError
from repro.graphs.csr import adjacency_csr, bounded_diameter
from repro.graphs.generators import grid_node


class Partition:
    """Disjoint node subsets ``P_1 .. P_N`` of a topology.

    Parameters
    ----------
    n:
        Number of nodes of the underlying topology.
    parts:
        The subsets.  Empty parts are rejected; disjointness is
        enforced.  Connectivity is a property of a specific topology —
        check it with :meth:`validate_connected`.
    """

    __slots__ = ("_n", "_parts", "_part_of")

    def __init__(self, n: int, parts: Sequence[Iterable[int]]) -> None:
        part_of = [-1] * n
        frozen: List[FrozenSet[int]] = []
        for index, members in enumerate(parts):
            fs = frozenset(members)
            if not fs:
                raise TopologyError(f"part {index} is empty")
            for v in fs:
                if not 0 <= v < n:
                    raise TopologyError(f"part {index} contains invalid node {v}")
                if part_of[v] != -1:
                    raise TopologyError(
                        f"node {v} is in both part {part_of[v]} and part {index}"
                    )
                part_of[v] = index
            frozen.append(fs)
        self._n = n
        self._parts: Tuple[FrozenSet[int], ...] = tuple(frozen)
        self._part_of: Tuple[int, ...] = tuple(part_of)

    @property
    def n(self) -> int:
        """Number of nodes of the underlying topology."""
        return self._n

    @property
    def size(self) -> int:
        """Number of parts (the paper's ``N``)."""
        return len(self._parts)

    @property
    def parts(self) -> Tuple[FrozenSet[int], ...]:
        """The parts, in index order."""
        return self._parts

    def part_of(self, v: int) -> Optional[int]:
        """Index of the part containing ``v`` (``None`` if uncovered)."""
        index = self._part_of[v]
        return None if index == -1 else index

    @property
    def labels(self) -> Tuple[int, ...]:
        """Per-node part index, ``-1`` for uncovered nodes.

        The flat-array twin of :meth:`part_of`, used by the kernel
        fast paths (:mod:`repro.core.quality_fast`) for O(1) membership
        tests without per-node method calls.
        """
        return self._part_of

    def members(self, index: int) -> FrozenSet[int]:
        """Nodes of part ``index``."""
        return self._parts[index]

    @property
    def covered(self) -> int:
        """Number of nodes belonging to some part."""
        return sum(len(p) for p in self._parts)

    def validate_connected(self, topology: Topology) -> None:
        """Raise unless every part induces a connected subgraph."""
        if topology.n != self._n:
            raise TopologyError("partition and topology node counts differ")
        for index, part in enumerate(self._parts):
            if not _is_connected_subset(topology, part):
                raise TopologyError(f"part {index} is not connected")

    def part_diameters(self, topology: Topology) -> List[int]:
        """Diameter of each ``G[P_i]`` (the quantity shortcuts fight)."""
        return [_induced_diameter(topology, part) for part in self._parts]

    @classmethod
    def from_labels(cls, labels: Sequence[Optional[int]]) -> "Partition":
        """Build from per-node labels (``None`` / negatives = uncovered)."""
        groups: Dict[int, List[int]] = {}
        for v, label in enumerate(labels):
            if label is not None and label >= 0:
                groups.setdefault(label, []).append(v)
        ordered = [groups[key] for key in sorted(groups)]
        return cls(len(labels), ordered)

    def __repr__(self) -> str:
        return f"Partition(n={self._n}, N={self.size}, covered={self.covered})"


def _induced_csr(topology: Topology, part: FrozenSet[int]):
    """Local-id adjacency lists of ``G[part]`` from the cached CSR."""
    csr = adjacency_csr(topology)
    nodes = sorted(part)
    local = {v: i for i, v in enumerate(nodes)}
    indptr, indices = csr.indptr, csr.indices
    adjacency: List[List[int]] = []
    for v in nodes:
        adjacency.append(
            [local[w] for w in indices[indptr[v] : indptr[v + 1]] if w in local]
        )
    return adjacency


def _is_connected_subset(topology: Topology, part: FrozenSet[int]) -> bool:
    adjacency = _induced_csr(topology, part)
    k = len(adjacency)
    seen = [False] * k
    seen[0] = True
    stack = [0]
    reached = 1
    while stack:
        u = stack.pop()
        for w in adjacency[u]:
            if not seen[w]:
                seen[w] = True
                reached += 1
                stack.append(w)
    return reached == k


def _induced_diameter(topology: Topology, part: FrozenSet[int]) -> int:
    diameter = bounded_diameter(_induced_csr(topology, part))
    if diameter < 0:
        raise TopologyError("part is not connected")
    return diameter


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def singletons(topology: Topology) -> Partition:
    """Each node its own part — Borůvka's initial partition."""
    return Partition(topology.n, [[v] for v in topology.nodes])


def whole(topology: Topology) -> Partition:
    """One part containing every node."""
    return Partition(topology.n, [list(topology.nodes)])


def grid_bands(rows: int, cols: int, band_height: int) -> Partition:
    """Horizontal bands of a rows x cols grid, ``band_height`` rows each."""
    if band_height < 1:
        raise TopologyError("band_height must be positive")
    parts = []
    r = 0
    while r < rows:
        top = min(r + band_height, rows)
        parts.append(
            [grid_node(rr, c, cols) for rr in range(r, top) for c in range(cols)]
        )
        r = top
    return Partition(rows * cols, parts)


def grid_rows(rows: int, cols: int) -> Partition:
    """One part per grid row (N = rows parts crossing every column)."""
    return grid_bands(rows, cols, 1)


def grid_columns(rows: int, cols: int) -> Partition:
    """One part per grid column."""
    parts = [[grid_node(r, c, cols) for r in range(rows)] for c in range(cols)]
    return Partition(rows * cols, parts)


def cycle_arcs(n: int, n_parts: int, extra_nodes: int = 0) -> Partition:
    """Contiguous arcs of a cycle ``0 .. n-1`` (hub nodes uncovered).

    Used with :func:`repro.graphs.generators.cycle_with_hub`: each arc
    induces a path of length ~ n / n_parts, far above the hub-graph
    diameter — the motivating worst case of Section 1.2.
    """
    if n_parts < 1 or n_parts > n:
        raise TopologyError("need 1 <= n_parts <= n")
    bounds = [round(i * n / n_parts) for i in range(n_parts + 1)]
    parts = [list(range(bounds[i], bounds[i + 1])) for i in range(n_parts)]
    return Partition(n + extra_nodes, [p for p in parts if p])


def voronoi(topology: Topology, n_parts: int, seed: int = 0) -> Partition:
    """Multi-source BFS cells around random centers.

    Every node joins the cell of the closest center (ties broken by
    center order), so each cell is connected — the generic "random
    connected parts" workload.
    """
    if not 1 <= n_parts <= topology.n:
        raise TopologyError("need 1 <= n_parts <= n")
    rng = random.Random(seed)
    centers = rng.sample(range(topology.n), n_parts)
    label = [-1] * topology.n
    queue = deque()
    for index, center in enumerate(centers):
        label[center] = index
        queue.append(center)
    while queue:
        u = queue.popleft()
        for w in topology.neighbors(u):
            if label[w] == -1:
                label[w] = label[u]
                queue.append(w)
    return Partition.from_labels(label)


def random_arcs(topology: Topology, n_parts: int, seed: int = 0) -> Partition:
    """Voronoi cells that cover only half the nodes (random subgraph parts).

    Uncovered nodes act as relays, exercising the partial-coverage code
    paths of the constructions.
    """
    full = voronoi(topology, n_parts, seed)
    rng = random.Random(seed ^ 0x5EED)
    labels: List[Optional[int]] = [None] * topology.n
    for index in range(full.size):
        members = sorted(full.members(index))
        # Keep a connected BFS-prefix of about half of each cell.
        keep = max(1, len(members) // 2)
        start = members[0]
        seen = [start]
        seen_set = {start}
        queue = deque([start])
        while queue and len(seen) < keep:
            u = queue.popleft()
            neighbors = [w for w in topology.neighbors(u) if w in full.members(index)]
            rng.shuffle(neighbors)
            for w in neighbors:
                if w not in seen_set and len(seen) < keep:
                    seen_set.add(w)
                    seen.append(w)
                    queue.append(w)
        for v in seen:
            labels[v] = index
    return Partition.from_labels(labels)
