"""Failure-scenario generation.

The paper's shortcut framework is stated for static graphs; this module
supplies the edge-failure sets under which the rest of
:mod:`repro.failures` stresses it.  Three generators are provided,
mirroring how the networking literature enumerates failures:

* :func:`enumerate_kwise` — exhaustive ``k``-wise enumeration (every
  set of exactly ``k`` edges), with deterministic subsampling when the
  binomial explodes;
* :func:`sample_bernoulli` — seeded probabilistic sampling with
  independent per-edge failure probabilities;
* :func:`srlg_groups` / :func:`sample_srlg` — shared-risk link groups
  keyed on generator structure (a grid row fails as one trench cut, all
  hub spokes fail with the hub), with a node-incidence fallback for
  families without registered structure.

Every generator is deterministic under a fixed seed: scenario ``s``
draws from ``random.Random(mix(seed, s))``, so regenerating a suite —
in any order, from any worker — yields identical scenarios.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.congest.randomness import mix
from repro.congest.topology import Edge, Topology, canonical_edge
from repro.errors import ReproError, TopologyError
from repro.graphs.csr import adjacency_csr
from repro.graphs.generators import grid_node

SCENARIO_SALT = 0xFA11


@dataclass(frozen=True)
class FailureScenario:
    """One edge-failure set.

    ``edges`` is canonical and sorted; ``kind`` records the generator
    (``"kwise"`` / ``"bernoulli"`` / ``"srlg"``) and ``label`` is a
    stable human-readable tag for tables and logs.
    """

    edges: Tuple[Edge, ...]
    kind: str
    label: str

    @property
    def size(self) -> int:
        """Number of failed edges."""
        return len(self.edges)


def _scenario(
    topology: Topology, edges: Iterable[Edge], kind: str, label: str
) -> FailureScenario:
    canon = sorted({canonical_edge(u, v) for u, v in edges})
    for edge in canon:
        if not topology.has_edge(*edge):
            raise TopologyError(f"failure scenario names non-edge {edge}")
    return FailureScenario(edges=tuple(canon), kind=kind, label=label)


# ----------------------------------------------------------------------
# Exhaustive k-wise enumeration
# ----------------------------------------------------------------------


def enumerate_kwise(
    topology: Topology,
    k: int,
    *,
    limit: Optional[int] = None,
    seed: int = 0,
) -> Tuple[FailureScenario, ...]:
    """All (or a deterministic sample of) exactly-``k``-edge failures.

    With ``limit=None`` this is the full ``C(m, k)`` enumeration in
    lexicographic edge order.  When ``limit`` is smaller than the
    binomial, ``limit`` distinct ``k``-subsets are rejection-sampled
    from ``random.Random(mix(seed, SCENARIO_SALT))`` and emitted in
    sorted order — the suite is identical for a fixed seed regardless
    of where or how often it is generated.
    """
    if k < 1:
        raise ReproError("k-wise enumeration needs k >= 1")
    m = topology.m
    if k > m:
        raise ReproError(f"cannot fail k={k} of m={m} edges")
    edges = topology.edges
    total = 1
    for i in range(k):
        total = total * (m - i) // (i + 1)
    if limit is None or total <= limit:
        chosen: List[Tuple[int, ...]] = [
            ids for ids in itertools.combinations(range(m), k)
        ]
    else:
        rng = random.Random(mix(seed, SCENARIO_SALT))
        picked = set()
        while len(picked) < limit:
            picked.add(tuple(sorted(rng.sample(range(m), k))))
        chosen = sorted(picked)
    return tuple(
        _scenario(
            topology,
            [edges[i] for i in ids],
            "kwise",
            f"k{k}#{index}",
        )
        for index, ids in enumerate(chosen)
    )


# ----------------------------------------------------------------------
# Seeded probabilistic sampling
# ----------------------------------------------------------------------


def sample_bernoulli(
    topology: Topology,
    n_scenarios: int,
    probability: float = 0.05,
    *,
    probabilities: Optional[Dict[Edge, float]] = None,
    seed: int = 0,
) -> Tuple[FailureScenario, ...]:
    """``n_scenarios`` independent per-edge Bernoulli failure draws.

    Every edge fails independently with ``probability`` (or its
    override in the ``probabilities`` map, keyed by canonical edge).
    Scenarios that fail no edge are re-drawn with a fresh salt so every
    returned scenario is non-trivial; the retry chain is part of the
    deterministic seed schedule.
    """
    if probabilities is not None:
        edge_set = frozenset(topology.edges)
        for raw in probabilities:
            if canonical_edge(*raw) not in edge_set:
                raise TopologyError(f"failure probability for non-edge {raw}")
    p_of = {}
    if probabilities is not None:
        p_of = {canonical_edge(*e): p for e, p in probabilities.items()}
    scenarios: List[FailureScenario] = []
    for index in range(n_scenarios):
        failed: List[Edge] = []
        for attempt in range(64):
            rng = random.Random(mix(seed, index, SCENARIO_SALT + attempt))
            failed = [
                edge
                for edge in topology.edges
                if rng.random() < p_of.get(edge, probability)
            ]
            if failed:
                break
        if not failed:
            raise ReproError(
                f"no non-empty scenario drawn in 64 attempts "
                f"(p={probability}, m={topology.m})"
            )
        scenarios.append(
            _scenario(topology, failed, "bernoulli", f"p#{index}")
        )
    return tuple(scenarios)


# ----------------------------------------------------------------------
# SRLG-style correlated groups
# ----------------------------------------------------------------------


def _srlg_grid(topology: Topology, rows: int, cols: int) -> List[List[Edge]]:
    """One group per grid row (its horizontal run) and per column
    (its vertical run) — the trench-cut model of a mesh."""
    groups: List[List[Edge]] = []
    for r in range(rows):
        run = [
            canonical_edge(grid_node(r, c, cols), grid_node(r, c + 1, cols))
            for c in range(cols - 1)
        ]
        if run:
            groups.append(run)
    for c in range(cols):
        run = [
            canonical_edge(grid_node(r, c, cols), grid_node(r + 1, c, cols))
            for r in range(rows - 1)
        ]
        if run:
            groups.append(run)
    return groups


def _srlg_torus(topology: Topology, rows: int, cols: int) -> List[List[Edge]]:
    """Row rings and column rings of the toroidal grid."""
    groups: List[List[Edge]] = []
    for r in range(rows):
        groups.append(
            [
                canonical_edge(
                    grid_node(r, c, cols), grid_node(r, (c + 1) % cols, cols)
                )
                for c in range(cols)
            ]
        )
    for c in range(cols):
        groups.append(
            [
                canonical_edge(
                    grid_node(r, c, cols), grid_node((r + 1) % rows, c, cols)
                )
                for r in range(rows)
            ]
        )
    return groups


def _srlg_hub(
    topology: Topology, n_cycle: int, spoke_every: int
) -> List[List[Edge]]:
    """All hub spokes as one group (hub-site failure), plus each cycle
    arc between consecutive spokes (a duct shared by the arc)."""
    hub = n_cycle
    groups: List[List[Edge]] = [
        [canonical_edge(hub, v) for v in range(0, n_cycle, spoke_every)]
    ]
    anchors = list(range(0, n_cycle, spoke_every))
    for i, start in enumerate(anchors):
        stop = anchors[i + 1] if i + 1 < len(anchors) else n_cycle
        arc = [
            canonical_edge(v, (v + 1) % n_cycle) for v in range(start, stop)
        ]
        if arc:
            groups.append(arc)
    return groups


def node_srlg_groups(topology: Topology) -> Tuple[Tuple[Edge, ...], ...]:
    """The structure-free fallback: one group per node of degree >= 2,
    containing all its incident edges (a node failure expressed as an
    edge SRLG)."""
    csr = adjacency_csr(topology)
    groups: List[Tuple[Edge, ...]] = []
    for v in range(csr.n):
        neighbors = csr.neighbors(v)
        if len(neighbors) >= 2:
            groups.append(tuple(canonical_edge(v, w) for w in neighbors))
    return tuple(groups)


SRLG_BUILDERS: Dict[str, Callable[..., List[List[Edge]]]] = {
    "grid": _srlg_grid,
    "torus": _srlg_torus,
    "hub": _srlg_hub,
    "cycle_with_hub": _srlg_hub,
}


def srlg_groups(
    topology: Topology,
    family: Optional[str] = None,
    **params: int,
) -> Tuple[Tuple[Edge, ...], ...]:
    """Shared-risk link groups for a topology.

    ``family`` keys into :data:`SRLG_BUILDERS` (the generator-structure
    registry — e.g. ``srlg_groups(g, "grid", rows=8, cols=8)``);
    ``None`` or an unregistered family falls back to
    :func:`node_srlg_groups`.  Every group is validated against the
    topology's edge set.
    """
    builder = SRLG_BUILDERS.get(family) if family is not None else None
    if builder is None:
        return node_srlg_groups(topology)
    edge_set = frozenset(topology.edges)
    groups = []
    for group in builder(topology, **params):
        for edge in group:
            if edge not in edge_set:
                raise TopologyError(
                    f"SRLG builder {family!r} produced non-edge {edge}"
                )
        groups.append(tuple(sorted(set(group))))
    return tuple(groups)


def sample_srlg(
    topology: Topology,
    groups: Sequence[Sequence[Edge]],
    n_scenarios: int,
    probability: float = 0.1,
    *,
    seed: int = 0,
) -> Tuple[FailureScenario, ...]:
    """``n_scenarios`` draws where each group fails independently with
    ``probability`` and a failed group takes all its edges down.

    Like :func:`sample_bernoulli`, empty draws are re-drawn on a
    deterministic salt chain.
    """
    if not groups:
        raise ReproError("sample_srlg needs at least one group")
    scenarios: List[FailureScenario] = []
    for index in range(n_scenarios):
        failed: List[Edge] = []
        for attempt in range(64):
            rng = random.Random(mix(seed, index, SCENARIO_SALT + attempt, 1))
            failed = [
                edge
                for group in groups
                if rng.random() < probability
                for edge in group
            ]
            if failed:
                break
        if not failed:
            raise ReproError(
                f"no non-empty SRLG scenario drawn in 64 attempts "
                f"(p={probability}, groups={len(groups)})"
            )
        scenarios.append(_scenario(topology, failed, "srlg", f"srlg#{index}"))
    return tuple(scenarios)


# ----------------------------------------------------------------------
# Batched survivor derivation
# ----------------------------------------------------------------------


def survivors_batch(
    topology: Topology,
    scenarios: Sequence[FailureScenario],
    *,
    batch: Optional[str] = None,
) -> Tuple[Topology, ...]:
    """One survivor topology per scenario — the batch-axis entry point
    of :meth:`Topology.delete_edges <repro.congest.topology.Topology.delete_edges>`.

    ``batch="loop"`` (the default) deletes per scenario;
    ``batch="vector"`` resolves every scenario's edges to edge ids
    against the sorted canonical edge-key array with one
    ``searchsorted`` per scenario (no per-edge hashing) and derives the
    survivors id-natively.  Both paths produce field-identical
    topologies, including the ``TopologyError`` for a scenario naming a
    non-edge — scenarios are canonical by construction, so key lookup
    is exact.
    """
    from repro.core.batch import resolve_batch

    if resolve_batch(batch) != "vector":
        return tuple(
            topology.delete_edges(scenario.edges) for scenario in scenarios
        )

    from repro.graphs.batch_csr import require_numpy

    np = require_numpy()
    n = topology.n
    keys = np.fromiter(
        (u * n + v for u, v in topology.edges),
        dtype=np.int64,
        count=topology.m,
    )
    survivors = []
    for scenario in scenarios:
        if not scenario.edges:
            survivors.append(topology.delete_edge_ids(()))
            continue
        failed_keys = np.fromiter(
            (u * n + v for u, v in scenario.edges),
            dtype=np.int64,
            count=len(scenario.edges),
        )
        if keys.size == 0:
            raise TopologyError(
                f"cannot delete non-edge {scenario.edges[0]}"
            )
        ids = np.searchsorted(keys, failed_keys)
        clipped = np.minimum(ids, keys.size - 1)
        valid = keys[clipped] == failed_keys
        if not bool(valid.all()):
            bad = int(np.flatnonzero(~valid)[0])
            raise TopologyError(
                f"cannot delete non-edge {scenario.edges[bad]}"
            )
        survivors.append(topology.delete_edge_ids(ids.tolist()))
    return tuple(survivors)
