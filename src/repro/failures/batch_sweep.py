"""Batched failure-scenario sweeps.

A degradation or repair sweep runs the *same* pipeline once per
scenario: derive the survivor, re-run the doubling construction, and
measure.  Per-scenario, each of those steps is a fresh Python loop over
one small instance; batched, the whole scenario grid becomes one packed
:class:`~repro.graphs.batch_csr.BatchCSR` problem:

* :func:`~repro.failures.scenarios.survivors_batch` derives every
  survivor topology with one ``searchsorted`` per scenario against the
  sorted canonical edge-key array;
* the connected survivors ride
  :func:`~repro.core.batch.find_shortcut_doubling_batch` — the whole
  ``(c, b)`` ladder climbs in lockstep rungs with active-set
  compaction — and their quality reports come from one
  :func:`~repro.core.batch.measure_batch` pass;
* repair vs rebuild packs *both* searches of every scenario into one
  batch: repairs enter warm-started at the old ``(c, b)`` with their
  frozen-part states, rebuilds enter cold at ``(1, 1)``, and the ladder
  compacts across all of them together.

Everything is ==-bit-identical to the per-scenario loop (records,
trials, ledgers, survivor topologies); ``batch="loop"`` *is* the
per-scenario loop.  The vector ladder is the batch twin of
``mode="direct"`` — exactly the semantics the large-scale E19 sweep
runs — so with ``batch="vector"`` the construction always runs direct
while ``mode`` still selects the execution of the MST/connectivity
application measurements; pass ``mode="direct"`` to the loop for
bit-identity.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.congest.topology import Topology
from repro.core.quality import KERNELS
from repro.failures.degradation import (
    Baseline,
    DegradationRecord,
    degradation_record,
    measure_degradation,
)
from repro.failures.repair import (
    OldResult,
    RepairComparison,
    assert_valid,
    finish_search,
    prepare_rebuild,
    prepare_repair,
    repair_vs_rebuild,
    split_partition,
)
from repro.failures.scenarios import FailureScenario, survivors_batch
from repro.graphs.csr import bfs_spanning_tree
from repro.graphs.partitions import Partition


def scenarios_batch(
    topology: Topology,
    partition: Partition,
    scenarios: Sequence[FailureScenario],
    baseline: Baseline,
    *,
    root: int = 0,
    seed: int = 0,
    mode: Optional[str] = None,
    backends: Sequence[Optional[str]] = (None,),
    kernels: Sequence[str] = KERNELS,
    with_dilation: bool = True,
    batch: Optional[str] = None,
) -> Tuple[DegradationRecord, ...]:
    """Measure a whole scenario grid's degradation in one batch.

    The batch-axis entry point of
    :func:`~repro.failures.degradation.measure_degradation`:
    ``batch="loop"`` (the default) measures per scenario with the
    selected ``mode``; ``batch="vector"`` derives every survivor via
    :func:`~repro.failures.scenarios.survivors_batch`, runs the
    connected ones through the batched doubling ladder, and measures
    their shortcuts with one ``measure_batch`` pass (``mode`` then
    applies only to the MST/connectivity measurements).  Records match
    the loop with ``mode="direct"`` bit-for-bit; disconnected survivors
    are first-class in both paths (their records carry component
    counts, not quality deltas).
    """
    from repro.core.batch import resolve_batch

    if resolve_batch(batch) != "vector":
        return tuple(
            measure_degradation(
                topology,
                partition,
                scenario,
                baseline,
                root=root,
                seed=seed,
                mode=mode,
                backends=backends,
                kernels=kernels,
                with_dilation=with_dilation,
            )
            for scenario in scenarios
        )

    from repro.core.batch import find_shortcut_doubling_batch, measure_batch

    survivors = survivors_batch(topology, scenarios, batch="vector")
    components_of = [survivor.components() for survivor in survivors]
    connected = [
        index
        for index, components in enumerate(components_of)
        if len(components) == 1
    ]
    trees = []
    new_partitions = []
    for index in connected:
        trees.append(bfs_spanning_tree(survivors[index], root))
        new_partitions.append(split_partition(survivors[index], partition)[0])
    outcomes = find_shortcut_doubling_batch(
        [survivors[index] for index in connected],
        trees,
        new_partitions,
        seeds=seed,
        batch="vector",
    )
    reports = measure_batch(
        [outcome.result.shortcut for outcome in outcomes],
        [survivors[index] for index in connected],
        with_dilation=with_dilation,
        batch="vector",
    )
    outcome_of = dict(zip(connected, outcomes))
    report_of = dict(zip(connected, reports))
    return tuple(
        degradation_record(
            scenario,
            baseline,
            survivors[index],
            components_of[index],
            outcome_of.get(index),
            seed=seed,
            mode=mode,
            backends=backends,
            kernels=kernels,
            with_dilation=with_dilation,
            report=report_of.get(index),
        )
        for index, scenario in enumerate(scenarios)
    )


def repair_vs_rebuild_batch(
    topology: Topology,
    old: OldResult,
    failure_sets: Sequence[Iterable[Tuple[int, int]]],
    *,
    seed: int = 0,
    use_fast: bool = True,
    mode: Optional[str] = None,
    batch: Optional[str] = None,
) -> Tuple[RepairComparison, ...]:
    """Repair *and* rebuild every failure set through one batched ladder.

    The batch-axis entry point of
    :func:`~repro.failures.repair.repair_vs_rebuild`: ``batch="loop"``
    (the default) runs the comparison per failure set with the selected
    ``mode``; ``batch="vector"`` prepares all ``2k`` searches (repairs
    warm-started at the old ``(c, b)`` with frozen-part states,
    rebuilds cold at ``(1, 1)``) and climbs them together on the
    batched doubling ladder — repairs typically settle on the first
    rung and drop out while rebuilds keep climbing, which is exactly
    the compaction the ladder exploits.  Both outcomes of every pair
    are ==-verified in the survivor, as in the loop.
    """
    from repro.core.batch import find_shortcut_doubling_batch, resolve_batch

    if resolve_batch(batch) != "vector":
        return tuple(
            repair_vs_rebuild(
                topology,
                old,
                failed_edges,
                seed=seed,
                use_fast=use_fast,
                mode=mode,
            )
            for failed_edges in failure_sets
        )

    setups = [
        prepare_repair(topology, old, failed_edges)
        for failed_edges in failure_sets
    ] + [
        prepare_rebuild(topology, old, failed_edges)
        for failed_edges in failure_sets
    ]
    outcomes = find_shortcut_doubling_batch(
        [setup.survivor for setup in setups],
        [setup.tree for setup in setups],
        [setup.partition for setup in setups],
        c_starts=[setup.c_start for setup in setups],
        b_starts=[setup.b_start for setup in setups],
        use_fast=use_fast,
        seeds=seed,
        ledgers=[setup.ledger for setup in setups],
        initial_states=[setup.state for setup in setups],
        batch="vector",
    )
    count = len(failure_sets)
    comparisons: List[RepairComparison] = []
    for index in range(count):
        repaired = finish_search(setups[index], outcomes[index])
        rebuilt = finish_search(setups[count + index], outcomes[count + index])
        assert_valid(repaired.survivor, repaired)
        assert_valid(rebuilt.survivor, rebuilt)
        comparisons.append(RepairComparison(repair=repaired, rebuild=rebuilt))
    return tuple(comparisons)


__all__ = ["repair_vs_rebuild_batch", "scenarios_batch"]
