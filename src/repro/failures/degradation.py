"""Degradation measurement on survived instances.

Given an intact instance and a :class:`~repro.failures.scenarios.FailureScenario`,
this module answers "how much worse did things get?": it re-runs the
shortcut construction and the applications on the survivor and records
the deltas against the intact baseline.

* Shortcut quality is measured with **both** quality kernels
  (``"fast"`` and ``"reference"``) and the reports are asserted
  identical — every degradation sweep doubles as a differential audit
  of the kernels on a mutated topology (the hardening goal of this PR).
* MST and connectivity run through the components-aware application
  results, so a scenario that disconnects the survivor is a first-class
  data point (an MST *forest*, per-component labels), not an error:
  the record carries the explicit component count and skips only the
  shortcut-quality fields (no spanning tree exists to restrict to).
* ``backends`` selects which partwise application backends to exercise;
  when more than one is given, their MST weights and connectivity
  labellings are asserted identical as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.congest.topology import Topology
from repro.core.doubling import find_shortcut_doubling
from repro.core.quality import KERNELS, measure
from repro.errors import ReproError
from repro.failures.repair import split_partition
from repro.failures.scenarios import FailureScenario
from repro.graphs.csr import bfs_spanning_tree
from repro.graphs.partitions import Partition


@dataclass(frozen=True)
class Baseline:
    """Intact-instance reference values for delta computation."""

    congestion: int
    block: int
    dilation: Optional[int]
    construction_rounds: int
    mst_weight: int
    mst_rounds: int


@dataclass(frozen=True)
class DegradationRecord:
    """One scenario's measurements against the intact baseline.

    Quality fields are ``None`` when the survivor is disconnected —
    there is no spanning tree to restrict a shortcut to; the explicit
    ``components`` count is the measurement instead.  The MST fields
    are always present: on a disconnected survivor they describe the
    MST *forest* (per-component MSTs) and ``mst_weight_delta`` is the
    forest weight minus the intact MST weight.
    """

    scenario: FailureScenario
    connected: bool
    components: int
    congestion_delta: Optional[int]
    block_delta: Optional[int]
    dilation_delta: Optional[int]
    construction_rounds_delta: Optional[int]
    mst_weight_delta: int
    mst_rounds_delta: int
    connectivity_components: int


def intact_baseline(
    topology: Topology,
    partition: Partition,
    *,
    root: int = 0,
    seed: int = 0,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
) -> Baseline:
    """Measure the intact instance once, for all scenarios to delta
    against.  ``topology`` must be weighted (the MST baseline needs
    meaningful weights)."""
    from repro.apps.mst import minimum_spanning_tree

    tree = bfs_spanning_tree(topology, root)
    outcome = find_shortcut_doubling(
        topology, tree, partition, seed=seed, mode=mode
    )
    report = measure(outcome.result.shortcut, topology)
    mst = minimum_spanning_tree(
        topology, seed=seed, construct_mode=mode, backend=backend
    )
    return Baseline(
        congestion=report.congestion,
        block=report.block_parameter,
        dilation=report.dilation,
        construction_rounds=outcome.rounds,
        mst_weight=mst.weight,
        mst_rounds=mst.rounds,
    )


def measure_degradation(
    topology: Topology,
    partition: Partition,
    scenario: FailureScenario,
    baseline: Baseline,
    *,
    root: int = 0,
    seed: int = 0,
    mode: Optional[str] = None,
    backends: Sequence[Optional[str]] = (None,),
    kernels: Sequence[str] = KERNELS,
    with_dilation: bool = True,
) -> DegradationRecord:
    """Run construction + applications on the survivor and record deltas.

    Raises ``AssertionError`` when the two quality kernels (or, with
    multiple ``backends``, the application backends) disagree on the
    survivor — the differential contract extended to mutated
    topologies.
    """
    survivor = topology.delete_edges(scenario.edges)
    components = survivor.components()
    outcome = None
    if len(components) == 1:
        tree = bfs_spanning_tree(survivor, root)
        new_partition, _origin = split_partition(survivor, partition)
        outcome = find_shortcut_doubling(
            survivor, tree, new_partition, seed=seed, mode=mode
        )
    return degradation_record(
        scenario,
        baseline,
        survivor,
        components,
        outcome,
        seed=seed,
        mode=mode,
        backends=backends,
        kernels=kernels,
        with_dilation=with_dilation,
    )


def degradation_record(
    scenario: FailureScenario,
    baseline: Baseline,
    survivor: Topology,
    components: Tuple[Tuple[int, ...], ...],
    outcome,
    *,
    seed: int = 0,
    mode: Optional[str] = None,
    backends: Sequence[Optional[str]] = (None,),
    kernels: Sequence[str] = KERNELS,
    with_dilation: bool = True,
    report=None,
) -> DegradationRecord:
    """Assemble a :class:`DegradationRecord` from a precomputed survivor.

    The shared back half of :func:`measure_degradation` and the batched
    sweep (:func:`repro.failures.batch_sweep.scenarios_batch`):
    ``outcome`` is the doubling search on the survivor (``None`` when
    disconnected) and ``report`` optionally supplies an already-measured
    :class:`~repro.core.quality.QualityReport` (e.g. from
    ``measure_batch``) instead of the per-kernel differential loop.
    """
    from repro.apps.connectivity import connected_components
    from repro.apps.mst import minimum_spanning_tree

    connected = len(components) == 1

    congestion_delta = block_delta = dilation_delta = rounds_delta = None
    if connected:
        if report is None:
            reports = [
                measure(
                    outcome.result.shortcut,
                    survivor,
                    with_dilation=with_dilation,
                    kernel=kernel,
                )
                for kernel in kernels
            ]
            for other in reports[1:]:
                assert other == reports[0], (
                    f"quality kernels diverge on survivor of {scenario.label}: "
                    f"{other} != {reports[0]}"
                )
            report = reports[0]
        congestion_delta = report.congestion - baseline.congestion
        block_delta = report.block_parameter - baseline.block
        if with_dilation and report.dilation is not None and baseline.dilation is not None:
            dilation_delta = report.dilation - baseline.dilation
        rounds_delta = outcome.rounds - baseline.construction_rounds

    if not backends:
        raise ReproError("measure_degradation needs at least one backend")
    msts = [
        minimum_spanning_tree(
            survivor, seed=seed, construct_mode=mode, backend=backend
        )
        for backend in backends
    ]
    conns = [
        connected_components(
            survivor,
            survivor.edges,
            seed=seed,
            construct_mode=mode,
            backend=backend,
        )
        for backend in backends
    ]
    for other in msts[1:]:
        assert (other.edges, other.weight) == (msts[0].edges, msts[0].weight), (
            f"MST backends diverge on survivor of {scenario.label}"
        )
    for other in conns[1:]:
        assert other.labels == conns[0].labels, (
            f"connectivity backends diverge on survivor of {scenario.label}"
        )
    mst = msts[0]
    conn = conns[0]
    assert conn.components == len(components), (
        f"connectivity reports {conn.components} components but the "
        f"survivor has {len(components)}"
    )
    return DegradationRecord(
        scenario=scenario,
        connected=connected,
        components=len(components),
        congestion_delta=congestion_delta,
        block_delta=block_delta,
        dilation_delta=dilation_delta,
        construction_rounds_delta=rounds_delta,
        mst_weight_delta=mst.weight - baseline.mst_weight,
        mst_rounds_delta=mst.rounds - baseline.mst_rounds,
        connectivity_components=conn.components,
    )
