"""Incremental shortcut repair after edge failures.

A constructed shortcut (Theorem 3 / Appendix A) is a per-part object:
part ``P_i`` owns ``G[P_i]`` plus its frozen tree subgraph ``H_i``.  An
edge-failure set therefore breaks a *bounded* amount of structure — the
parts it splits, the parts whose ``H_i`` lost an edge, and (when a tree
edge died) the spanning tree itself — while every other part's frozen
subgraph remains a valid shortcut verbatim.  PR 3's doubling warm start
(:class:`~repro.core.find_shortcut.ConstructionState`) is exactly the
vehicle for that observation: :func:`repair_shortcut` re-derives the
surviving instance, patches the spanning tree in place when a tree
edge died (:func:`patch_spanning_tree` — a full BFS rebuild would
invalidate every ``H_i`` whose path moved), freezes the untouched
parts into a warm-start state, and runs the Appendix A search *only
over the broken parts*, starting from the old ``(c, b)`` instead of
``(1, 1)``.

:func:`rebuild_shortcut` is the comparison twin — the same surviving
instance, constructed from scratch — and :func:`repair_vs_rebuild`
runs both and differentially ==-verifies the repaired shortcut against
the rebuilt one: both must validate in the survivor and pass a full
Verification sweep at their respective ``3b`` thresholds.  The ledger
comparison (repair rounds ≪ rebuild rounds) is what experiment E19
measures.

Repair requires a *connected* survivor: a disconnected one has no
spanning tree to restrict shortcuts to.  Disconnecting scenarios are
first-class elsewhere — see :meth:`Topology.components
<repro.congest.topology.Topology.components>` and the components-aware
application results exercised by :mod:`repro.failures.degradation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.congest.topology import Edge, Topology, canonical_edge
from repro.congest.trace import RoundLedger
from repro.core.doubling import DoublingResult, Trial, find_shortcut_doubling
from repro.core.find_shortcut import ConstructionState, FindShortcutResult
from repro.core.shortcut import TreeRestrictedShortcut
from repro.core.verification import verification
from repro.errors import ShortcutError, TopologyError
from repro.graphs.csr import adjacency_csr, bfs_spanning_tree
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

OldResult = Union[DoublingResult, FindShortcutResult]


def split_partition(
    topology: Topology, partition: Partition
) -> Tuple[Partition, Tuple[int, ...]]:
    """Split every part into its connected components in ``topology``.

    Returns ``(new_partition, part_origin)`` where
    ``part_origin[new] = old`` maps each new part to the part it came
    from.  New parts are ordered by ``(old index, minimum node)``, so
    an already-valid partition maps to itself with the identity origin.
    Runs one flood per part over the cached CSR — O(n + m) total.
    """
    csr = adjacency_csr(topology)
    indptr, indices = csr.indptr, csr.indices
    old_of = partition.labels
    new_of = [-1] * topology.n
    origin: List[int] = []
    order = sorted(
        (v for v in range(topology.n) if old_of[v] != -1),
        key=lambda v: (old_of[v], v),
    )
    for start in order:
        if new_of[start] != -1:
            continue
        new_index = len(origin)
        origin.append(old_of[start])
        new_of[start] = new_index
        stack = [start]
        while stack:
            u = stack.pop()
            for k in range(indptr[u], indptr[u + 1]):
                w = indices[k]
                if new_of[w] == -1 and old_of[w] == old_of[start]:
                    new_of[w] = new_index
                    stack.append(w)
    return Partition.from_dense_labels(new_of, len(origin)), tuple(origin)


@dataclass(frozen=True)
class RepairResult:
    """Outcome of :func:`repair_shortcut` (or its rebuild twin).

    ``frozen_parts`` are the new-partition parts whose old subgraphs
    were carried over untouched; ``repaired_parts`` were re-run through
    the construction.  For :func:`rebuild_shortcut`, ``frozen_parts``
    is empty — everything was constructed from scratch.
    """

    survivor: Topology
    tree: SpanningTree
    partition: Partition
    part_origin: Tuple[int, ...]
    frozen_parts: FrozenSet[int]
    repaired_parts: FrozenSet[int]
    tree_rebuilt: bool
    result: FindShortcutResult
    trials: Tuple[Trial, ...]
    ledger: RoundLedger

    @property
    def shortcut(self) -> TreeRestrictedShortcut:
        return self.result.shortcut

    @property
    def c(self) -> int:
        return self.result.c

    @property
    def b(self) -> int:
        return self.result.b

    @property
    def rounds(self) -> int:
        """Total rounds including synchronisation barriers."""
        return self.ledger.total_rounds


def patch_spanning_tree(
    survivor: Topology,
    old_tree: SpanningTree,
    failed: FrozenSet[Edge],
) -> Tuple[SpanningTree, int]:
    """Reattach the subtrees orphaned by failed tree edges.

    Cutting the failed edges splits ``old_tree`` into the root component
    plus one orphan subtree per cut.  Each merge wave re-roots every
    orphan at a node with a surviving edge leaving its component and
    hangs it off that edge — all orphans in parallel, as in a Borůvka
    round, so ``waves <= ceil(log2(orphans + 1))``.  Deterministic: each
    orphan picks its minimum outgoing canonical edge.

    Unlike a BFS rebuild, the patched tree keeps *every* surviving old
    tree edge, so a frozen part's ``H_i`` stays valid unless the failure
    hit it directly — that is what makes repair incremental.  The price
    is height: a detour can make the patched tree deeper than a fresh
    BFS tree (bounded by ``old height + orphan diameter`` per wave).

    Returns ``(tree, waves)``; the caller charges one convergecast +
    broadcast per wave.  Raises :class:`~repro.errors.TopologyError` if
    an orphan has no outgoing edge (disconnected survivor).
    """
    n = old_tree.n
    parent: List[int] = [
        -1 if old_tree.parent(v) is None else old_tree.parent(v)
        for v in range(n)
    ]
    cuts = 0
    for edge in failed:
        if edge in old_tree.edges:
            parent[old_tree.lower_endpoint(edge)] = -1
            cuts += 1
    if cuts == 0:
        return old_tree, 0

    waves = 0
    while True:
        # Label every node with its forest root (the component id).
        comp = [-1] * n
        for v in range(n):
            if comp[v] != -1:
                continue
            path = [v]
            u = v
            while parent[u] != -1 and comp[parent[u]] == -1:
                u = parent[u]
                path.append(u)
            label = comp[parent[u]] if parent[u] != -1 else u
            for w in path:
                comp[w] = label
        root_comp = comp[old_tree.root]
        orphans = sorted(set(comp) - {root_comp})
        if not orphans:
            break
        waves += 1
        # Each orphan's minimum outgoing surviving edge, chosen as one
        # parallel min-convergecast per orphan subtree.
        best: dict = {}
        for u, v in survivor.edges:
            cu, cv = comp[u], comp[v]
            if cu == cv:
                continue
            for attach, outside in ((u, v), (v, u)):
                orphan = comp[attach]
                if orphan == root_comp:
                    continue
                choice = (u, v, attach, outside)
                if orphan not in best or choice < best[orphan]:
                    best[orphan] = choice
        # Apply the merges with a union-find guard: two orphans picking
        # each other over the same edge would otherwise form a cycle, so
        # the second attachment of any pair is deferred to the next wave
        # (it then sees the merged component and picks a new edge).
        dsu = {c: c for c in set(comp)}

        def find(c: int) -> int:
            while dsu[c] != c:
                dsu[c] = dsu[dsu[c]]
                c = dsu[c]
            return c

        merged = False
        for orphan in orphans:
            choice = best.get(orphan)
            if choice is None:
                raise TopologyError(
                    "cannot patch the spanning tree: an orphaned subtree "
                    "has no surviving edge out — the survivor is "
                    "disconnected"
                )
            _u, _v, attach, outside = choice
            if find(orphan) == find(comp[outside]):
                continue
            # Re-root the orphan at ``attach``: reverse the parent
            # pointers on the path attach -> orphan root, then hang
            # ``attach`` off ``outside``.
            prev = -1
            node = attach
            while node != -1:
                nxt = parent[node]
                parent[node] = prev
                prev = node
                node = nxt
            parent[attach] = outside
            dsu[find(orphan)] = find(comp[outside])
            merged = True
        if not merged:
            raise TopologyError("tree patch failed to make progress")
    return SpanningTree(old_tree.root, parent), waves


def _unwrap(old: OldResult) -> FindShortcutResult:
    if isinstance(old, DoublingResult):
        return old.result
    if isinstance(old, FindShortcutResult):
        return old
    raise ShortcutError(
        f"repair needs a FindShortcutResult or DoublingResult, got "
        f"{type(old).__name__}"
    )


def _derive_survivor(
    topology: Topology,
    failed_edges: Iterable[Tuple[int, int]],
) -> Tuple[Topology, FrozenSet[Edge]]:
    """Shared survivor derivation of repair and rebuild.

    Canonicalises the failure set, deletes it array-natively, and
    rejects a disconnected survivor (no spanning tree to restrict
    shortcuts to) with a pointer at the components-aware machinery.
    """
    failed = frozenset(canonical_edge(u, v) for u, v in failed_edges)
    survivor = topology.delete_edges(failed)
    if not survivor.is_connected:
        components = survivor.components()
        raise TopologyError(
            f"failure set disconnects the topology into "
            f"{len(components)} components; repair needs a connected "
            f"survivor — split it with component_subtopologies() or use "
            f"the components-aware application results"
        )
    return survivor, failed


@dataclass(frozen=True)
class SearchSetup:
    """Everything a repair (or rebuild) needs *before* the doubling
    search: the derived survivor instance, the pre-charged ledger, and
    the warm-start inputs.  :func:`prepare_repair` /
    :func:`prepare_rebuild` build one, the doubling search consumes it
    (per instance, or batched through
    :func:`repro.core.batch.find_shortcut_doubling_batch`), and
    :func:`finish_search` assembles the :class:`RepairResult`.
    """

    survivor: Topology
    tree: SpanningTree
    partition: Partition
    part_origin: Tuple[int, ...]
    frozen_parts: FrozenSet[int]
    tree_rebuilt: bool
    ledger: RoundLedger
    state: Optional[ConstructionState]
    c_start: int
    b_start: int


def prepare_repair(
    topology: Topology,
    old: OldResult,
    failed_edges: Iterable[Tuple[int, int]],
) -> SearchSetup:
    """Derive the warm-started search instance for a repair.

    Patches the spanning tree, splits the partition, charges the
    failure-report (and tree-patch) phases, and freezes every part the
    failure did not touch into a
    :class:`~repro.core.find_shortcut.ConstructionState`.
    """
    old_result = _unwrap(old)
    survivor, failed = _derive_survivor(topology, failed_edges)
    old_tree = old_result.shortcut.tree
    tree, patch_waves = patch_spanning_tree(survivor, old_tree, failed)
    tree_rebuilt = patch_waves > 0
    partition, origin = split_partition(survivor, old_result.shortcut.partition)
    ledger = RoundLedger(barrier_depth=tree.height)
    # Every node reports its dead incident edges up the tree: one
    # convergecast + broadcast of the "repair mode" decision.
    ledger.charge_phase("repair/failure-report", 2 * tree.height + 1, 2 * survivor.m)
    if patch_waves:
        ledger.charge_phase(
            "repair/tree-patch",
            patch_waves * (2 * tree.height + 1),
            patch_waves * 2 * survivor.m,
        )

    split_origins = _split_origins(origin)
    old_shortcut = old_result.shortcut
    tree_edges = tree.edges
    subgraphs: List[FrozenSet[Edge]] = []
    remaining = set()
    for new_index, old_index in enumerate(origin):
        subgraph = old_shortcut.subgraph(old_index)
        reusable = (
            old_index not in split_origins
            and not (subgraph & failed)
            and all(edge in tree_edges for edge in subgraph)
        )
        if reusable:
            subgraphs.append(subgraph)
        else:
            subgraphs.append(frozenset())
            remaining.add(new_index)
    state = ConstructionState(
        remaining=frozenset(remaining),
        shortcut=TreeRestrictedShortcut(tree, partition, subgraphs),
        good_history=(),
    )
    return SearchSetup(
        survivor=survivor,
        tree=tree,
        partition=partition,
        part_origin=origin,
        frozen_parts=frozenset(range(partition.size)) - remaining,
        tree_rebuilt=tree_rebuilt,
        ledger=ledger,
        state=state,
        c_start=old_result.c,
        b_start=old_result.b,
    )


def prepare_rebuild(
    topology: Topology,
    old: OldResult,
    failed_edges: Iterable[Tuple[int, int]],
) -> SearchSetup:
    """Derive the from-scratch search instance for a rebuild: a fresh
    BFS tree, no frozen parts, estimates back at ``(1, 1)``."""
    old_result = _unwrap(old)
    survivor, failed = _derive_survivor(topology, failed_edges)
    old_tree = old_result.shortcut.tree
    tree = bfs_spanning_tree(survivor, old_tree.root)
    tree_rebuilt = any(edge in old_tree.edges for edge in failed)
    partition, origin = split_partition(survivor, old_result.shortcut.partition)
    ledger = RoundLedger(barrier_depth=tree.height)
    ledger.charge_phase(
        "rebuild/failure-report", 2 * tree.height + 1, 2 * survivor.m
    )
    # A full rebuild always reconstructs its BFS tree: it cannot know
    # the old tree survived without checking, and the check is the
    # build.
    ledger.charge_phase("rebuild/bfs", tree.height + 1, 2 * survivor.m)
    return SearchSetup(
        survivor=survivor,
        tree=tree,
        partition=partition,
        part_origin=origin,
        frozen_parts=frozenset(),
        tree_rebuilt=tree_rebuilt,
        ledger=ledger,
        state=None,
        c_start=1,
        b_start=1,
    )


def finish_search(setup: SearchSetup, outcome: DoublingResult) -> RepairResult:
    """Assemble the :class:`RepairResult` from a completed doubling
    search on a :class:`SearchSetup` instance."""
    return RepairResult(
        survivor=setup.survivor,
        tree=setup.tree,
        partition=setup.partition,
        part_origin=setup.part_origin,
        frozen_parts=setup.frozen_parts,
        repaired_parts=frozenset(range(setup.partition.size))
        - setup.frozen_parts,
        tree_rebuilt=setup.tree_rebuilt,
        result=outcome.result,
        trials=outcome.trials,
        ledger=setup.ledger,
    )


def repair_shortcut(
    topology: Topology,
    old: OldResult,
    failed_edges: Iterable[Tuple[int, int]],
    *,
    seed: int = 0,
    use_fast: bool = True,
    mode: Optional[str] = None,
    max_trials: int = 64,
) -> RepairResult:
    """Repair ``old`` after ``failed_edges`` die, reusing frozen parts.

    A new part stays frozen exactly when its originating part was not
    split, its frozen subgraph lost no edge, and that subgraph still
    lives inside the (possibly patched) spanning tree; everything else
    goes back through the Appendix A search, warm-started at the old
    ``(c, b)`` estimates instead of ``(1, 1)``.  The carried state is
    revalidated inside :func:`~repro.core.find_shortcut.find_shortcut`
    as well, so repair cannot smuggle a stale subgraph past the
    construction even if this bookkeeping and the topology disagree.

    A dead *tree* edge does not trigger a full BFS rebuild: the
    orphaned subtrees are re-hung on surviving edges in place
    (:func:`patch_spanning_tree`), so every surviving old tree edge —
    and hence every ``H_i`` the failure did not hit — stays valid.

    The ledger charges the failure-report convergecast, one
    convergecast + broadcast per tree-patch merge wave, and then
    whatever the warm-started search itself costs.
    """
    setup = prepare_repair(topology, old, failed_edges)
    outcome = find_shortcut_doubling(
        setup.survivor,
        setup.tree,
        setup.partition,
        c_start=setup.c_start,
        b_start=setup.b_start,
        use_fast=use_fast,
        seed=seed,
        ledger=setup.ledger,
        mode=mode,
        initial_state=setup.state,
        max_trials=max_trials,
    )
    return finish_search(setup, outcome)


def rebuild_shortcut(
    topology: Topology,
    old: OldResult,
    failed_edges: Iterable[Tuple[int, int]],
    *,
    seed: int = 0,
    use_fast: bool = True,
    mode: Optional[str] = None,
    max_trials: int = 64,
) -> RepairResult:
    """The from-scratch twin of :func:`repair_shortcut`.

    Same survivor and the same split partition — but the spanning tree
    is a fresh BFS tree (a rebuild knows nothing worth patching), no
    parts are frozen, and the doubling search restarts at ``(1, 1)``.
    This is what repair is differentially verified against and what the
    E19 ledger comparison measures repair's advantage over.
    """
    setup = prepare_rebuild(topology, old, failed_edges)
    outcome = find_shortcut_doubling(
        setup.survivor,
        setup.tree,
        setup.partition,
        use_fast=use_fast,
        seed=seed,
        ledger=setup.ledger,
        mode=mode,
        max_trials=max_trials,
    )
    return finish_search(setup, outcome)


def _split_origins(origin: Tuple[int, ...]) -> FrozenSet[int]:
    seen = set()
    split = set()
    for old_index in origin:
        if old_index in seen:
            split.add(old_index)
        seen.add(old_index)
    return frozenset(split)


def assert_valid(survivor: Topology, repaired: RepairResult) -> None:
    """Raise unless a repair (or rebuild) outcome is a valid shortcut.

    Checks the Definition 2 structure (tree inside the survivor, parts
    connected) and runs a full Verification sweep at the result's
    ``3b`` threshold — every part must come back good.  Shared by the
    differential tests and :func:`repair_vs_rebuild`.
    """
    shortcut = repaired.shortcut
    shortcut.validate_in(survivor)
    outcome = verification(
        survivor,
        shortcut,
        3 * repaired.b,
        ledger=RoundLedger(barrier_depth=repaired.tree.height),
        mode="direct",
    )
    bad = frozenset(range(shortcut.size)) - outcome.good_parts
    if bad:
        raise ShortcutError(
            f"repaired shortcut fails verification at 3b={3 * repaired.b} "
            f"for parts {sorted(bad)[:8]}"
        )


@dataclass(frozen=True)
class RepairComparison:
    """Repair and rebuild of the same failure, both ==-verified."""

    repair: RepairResult
    rebuild: RepairResult

    @property
    def rounds_speedup(self) -> float:
        """Rebuild rounds over repair rounds (>= 1 when repair wins)."""
        return self.rebuild.rounds / max(1, self.repair.rounds)


def repair_vs_rebuild(
    topology: Topology,
    old: OldResult,
    failed_edges: Iterable[Tuple[int, int]],
    *,
    seed: int = 0,
    use_fast: bool = True,
    mode: Optional[str] = None,
) -> RepairComparison:
    """Run repair and full rebuild on the same failure set and
    ==-verify both outcomes in the survivor.

    Both runs see the same survivor, tree, and split partition, so the
    only difference is the warm start — the comparison isolates exactly
    what incremental repair buys.
    """
    repaired = repair_shortcut(
        topology, old, failed_edges, seed=seed, use_fast=use_fast, mode=mode
    )
    rebuilt = rebuild_shortcut(
        topology, old, failed_edges, seed=seed, use_fast=use_fast, mode=mode
    )
    assert_valid(repaired.survivor, repaired)
    assert_valid(rebuilt.survivor, rebuilt)
    return RepairComparison(repair=repaired, rebuild=rebuilt)
