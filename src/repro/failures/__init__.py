"""Edge-failure scenarios, degradation measurement, and incremental repair.

The failure layer stresses the static-graph shortcut framework under
edge failures (ROADMAP item 2):

* :mod:`repro.failures.scenarios` — k-wise enumeration, seeded
  Bernoulli sampling, and SRLG-style correlated groups keyed on
  generator structure;
* :mod:`repro.failures.degradation` — shortcut quality (both kernels)
  and MST/connectivity (any backend set) on survived instances, with
  deltas against the intact baseline;
* :mod:`repro.failures.repair` — incremental shortcut repair via the
  doubling warm start: frozen parts untouched by the failure are kept,
  only broken parts are reconstructed, and the result is differentially
  ==-verified against a full rebuild.

The array-native survivor derivation itself lives on the topology:
:meth:`Topology.delete_edges <repro.congest.topology.Topology.delete_edges>`,
:meth:`Topology.components <repro.congest.topology.Topology.components>`,
and :func:`component_subtopologies
<repro.congest.topology.component_subtopologies>`.
"""

from repro.failures.degradation import (
    Baseline,
    DegradationRecord,
    intact_baseline,
    measure_degradation,
)
from repro.failures.repair import (
    RepairComparison,
    RepairResult,
    assert_valid,
    patch_spanning_tree,
    rebuild_shortcut,
    repair_shortcut,
    repair_vs_rebuild,
    split_partition,
)
from repro.failures.scenarios import (
    FailureScenario,
    enumerate_kwise,
    node_srlg_groups,
    sample_bernoulli,
    sample_srlg,
    srlg_groups,
)

__all__ = [
    "Baseline",
    "DegradationRecord",
    "FailureScenario",
    "RepairComparison",
    "RepairResult",
    "assert_valid",
    "enumerate_kwise",
    "intact_baseline",
    "measure_degradation",
    "node_srlg_groups",
    "patch_spanning_tree",
    "rebuild_shortcut",
    "repair_shortcut",
    "repair_vs_rebuild",
    "sample_bernoulli",
    "sample_srlg",
    "split_partition",
    "srlg_groups",
]
