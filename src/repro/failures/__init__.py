"""Edge-failure scenarios, degradation measurement, and incremental repair.

The failure layer stresses the static-graph shortcut framework under
edge failures (ROADMAP item 2):

* :mod:`repro.failures.scenarios` — k-wise enumeration, seeded
  Bernoulli sampling, and SRLG-style correlated groups keyed on
  generator structure;
* :mod:`repro.failures.degradation` — shortcut quality (both kernels)
  and MST/connectivity (any backend set) on survived instances, with
  deltas against the intact baseline;
* :mod:`repro.failures.repair` — incremental shortcut repair via the
  doubling warm start: frozen parts untouched by the failure are kept,
  only broken parts are reconstructed, and the result is differentially
  ==-verified against a full rebuild;
* :mod:`repro.failures.batch_sweep` — the ``batch=`` axis of the sweep
  itself: a whole scenario grid's survivors packed into one batched
  doubling ladder (degradation and repair-vs-rebuild), ==-bit-identical
  to the per-scenario loop.

The array-native survivor derivation itself lives on the topology:
:meth:`Topology.delete_edges <repro.congest.topology.Topology.delete_edges>`,
:meth:`Topology.components <repro.congest.topology.Topology.components>`,
and :func:`component_subtopologies
<repro.congest.topology.component_subtopologies>`.
"""

from repro.failures.batch_sweep import (
    repair_vs_rebuild_batch,
    scenarios_batch,
)
from repro.failures.degradation import (
    Baseline,
    DegradationRecord,
    degradation_record,
    intact_baseline,
    measure_degradation,
)
from repro.failures.repair import (
    RepairComparison,
    RepairResult,
    SearchSetup,
    assert_valid,
    finish_search,
    patch_spanning_tree,
    prepare_rebuild,
    prepare_repair,
    rebuild_shortcut,
    repair_shortcut,
    repair_vs_rebuild,
    split_partition,
)
from repro.failures.scenarios import (
    FailureScenario,
    enumerate_kwise,
    node_srlg_groups,
    sample_bernoulli,
    sample_srlg,
    srlg_groups,
    survivors_batch,
)

__all__ = [
    "Baseline",
    "DegradationRecord",
    "FailureScenario",
    "RepairComparison",
    "RepairResult",
    "SearchSetup",
    "assert_valid",
    "degradation_record",
    "enumerate_kwise",
    "finish_search",
    "intact_baseline",
    "measure_degradation",
    "node_srlg_groups",
    "patch_spanning_tree",
    "prepare_rebuild",
    "prepare_repair",
    "rebuild_shortcut",
    "repair_shortcut",
    "repair_vs_rebuild",
    "repair_vs_rebuild_batch",
    "sample_bernoulli",
    "sample_srlg",
    "scenarios_batch",
    "split_partition",
    "srlg_groups",
    "survivors_batch",
]
