"""Client SDK for the shortcut service.

A thin, dependency-free (urllib) client with the retry discipline a
production caller needs:

* **timeouts** on every HTTP call (``timeout_s``, default 30);
* **capped exponential backoff with jitter** on idempotent retries:
  attempt ``i`` sleeps ``min(cap, base * 2**i) * uniform(0.5, 1.0)``;
  a ``Retry-After`` header (sent with ``503`` load-shedding) overrides
  the computed delay — both RFC 7231 forms, delta-seconds and
  HTTP-date, are honoured, and an unparseable header falls back to
  the computed backoff;
* retries fire only on *transient* outcomes — connection errors,
  ``503`` (shed) and ``504`` (deadline expired; the server keeps
  computing, so the retry usually lands warm).  ``4xx`` responses are
  permanent and surface immediately.  Every service operation is a
  deterministic pure computation, so POST retries are idempotent by
  construction.

The jitter stream is seeded (``jitter_seed``) so tests and the chaos
harness get reproducible schedules; pass ``None`` for entropy in real
deployments.
"""

from __future__ import annotations

import datetime
import email.utils
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.instances import InstanceSpec
from repro.errors import ReproError

DEFAULT_TIMEOUT_S = 30.0
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0

RETRYABLE_STATUS = (503, 504)


class ServiceError(ReproError):
    """A request that conclusively failed (after any retries).

    ``status`` is the HTTP status (``None`` for transport errors) and
    ``kind`` the server's error kind (``"overload"``, ``"deadline"``,
    ``"bad-request"``, ``"unprocessable"``, ``"internal"``,
    ``"transport"``).
    """

    def __init__(
        self, message: str, *, status: Optional[int] = None, kind: str = "transport"
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind


def spec_to_json(spec: InstanceSpec) -> Dict:
    """The JSON form of a spec (inverse of ``server.parse_spec``)."""
    payload: Dict = {"family": spec.family, "params": list(spec.params)}
    if spec.weights is not None:
        payload["weights"] = list(spec.weights)
    if spec.partition is not None:
        payload["partition"] = list(spec.partition)
    if spec.tree_root != 0:
        payload["tree_root"] = spec.tree_root
    return payload


@dataclass
class ClientResult:
    """One successful response."""

    result: Dict
    key: str
    warm: bool
    attempts: int


class ServiceClient:
    """HTTP client with timeouts and capped, jittered backoff."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        jitter_seed: Optional[int] = 0,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep
        self.retries_used = 0

    # -- transport ------------------------------------------------------

    def _http(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> tuple[int, Dict, Dict[str, str]]:
        """One HTTP exchange -> (status, json body, headers)."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8")), dict(
                    resp.headers
                )
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": str(error), "kind": "transport"}
            return error.code, payload, dict(error.headers or {})

    def backoff_delay(self, attempt: int, retry_after: Optional[str] = None) -> float:
        """The sleep before retry ``attempt`` (0-based).

        ``Retry-After`` accepts both RFC 7231 forms: delta-seconds
        (``"120"``) and an HTTP-date (``"Wed, 21 Oct 2015 07:28:00
        GMT"``).  A date in the past clamps to zero; an unparseable
        header falls back to the computed backoff.
        """
        if retry_after is not None:
            try:
                return max(0.0, float(retry_after))
            except ValueError:
                pass
            try:
                when = email.utils.parsedate_to_datetime(retry_after)
            except (TypeError, ValueError):
                when = None
            if when is not None:
                if when.tzinfo is None:
                    when = when.replace(tzinfo=datetime.timezone.utc)
                now = datetime.datetime.now(datetime.timezone.utc)
                return max(0.0, (when - now).total_seconds())
        capped = min(self.backoff_cap_s, self.backoff_base_s * (2 ** attempt))
        return capped * (0.5 + 0.5 * self._rng.random())

    # -- API ------------------------------------------------------------

    def request(
        self,
        op: str,
        spec: InstanceSpec,
        *,
        deadline_s: Optional[float] = None,
        **params,
    ) -> ClientResult:
        """Run one operation, retrying transient failures.

        Raises :class:`ServiceError` after exhausting retries or on any
        permanent (4xx) failure.
        """
        body: Dict = {"spec": spec_to_json(spec), **params}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        last_error: Optional[ServiceError] = None
        for attempt in range(self.max_retries + 1):
            try:
                status, payload, headers = self._http("POST", f"/v1/{op}", body)
            except (urllib.error.URLError, OSError, TimeoutError) as error:
                last_error = ServiceError(
                    f"transport error calling {op}: {error}", kind="transport"
                )
                delay = self.backoff_delay(attempt)
            else:
                if status == 200:
                    return ClientResult(
                        result=payload["result"],
                        key=payload.get("key", ""),
                        warm=bool(payload.get("warm", False)),
                        attempts=attempt + 1,
                    )
                kind = payload.get("kind", "transport")
                message = payload.get("error", f"HTTP {status}")
                if status not in RETRYABLE_STATUS:
                    raise ServiceError(message, status=status, kind=kind)
                last_error = ServiceError(message, status=status, kind=kind)
                delay = self.backoff_delay(attempt, headers.get("Retry-After"))
            if attempt < self.max_retries:
                self.retries_used += 1
                self._sleep(delay)
        assert last_error is not None
        raise last_error

    def health(self) -> bool:
        try:
            status, payload, _headers = self._http("GET", "/healthz")
        except (urllib.error.URLError, OSError, TimeoutError):
            return False
        return status == 200 and bool(payload.get("ok"))

    def stats(self) -> Dict:
        status, payload, _headers = self._http("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(
                f"stats endpoint returned {status}", status=status, kind="internal"
            )
        return payload

    def operations(self) -> Dict:
        status, payload, _headers = self._http("GET", "/v1/ops")
        if status != 200:
            raise ServiceError(
                f"ops endpoint returned {status}", status=status, kind="internal"
            )
        return payload
