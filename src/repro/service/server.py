"""Thread-pool HTTP/JSON shortcut service.

One long-lived process serves the whole application stack — shortcut
construction, MST, min-cut, connectivity, quality reports — over a
small JSON API, backed by the crash-safe
:class:`~repro.service.store.PersistentStore`:

``POST /v1/<op>``
    Body ``{"spec": {...}, "seed": 0, ...}``; see :data:`OPERATIONS`.
    Responses are JSON; errors are always clean JSON envelopes
    (``{"error": ..., "kind": ...}``), never wrong answers.
``GET /v1/ops``
    The operation names and their parameter defaults.
``GET /v1/stats``
    Service + store counters (see :class:`ServiceStats`).
``GET /healthz``
    Liveness.

Request lifecycle hardening
---------------------------

* **Per-request deadlines** — the handler waits at most
  ``deadline_s`` (request field, capped by the server maximum) for the
  compute future; an expiry returns ``504`` while the computation
  finishes in the background and populates the store, so the retry is
  warm.
* **Single-flight deduplication** — concurrent requests with the same
  content address share one computation; joiners are not charged
  against the work queue.
* **Bounded work queue with load-shedding** — at most
  ``queue_limit`` distinct computations may be pending; excess
  requests are shed immediately with ``503`` + ``Retry-After`` instead
  of queueing unboundedly.
* **Graceful store degradation** — any store failure (unreadable
  directory, injected IO errors) downgrades that request to the cold
  path (compute-only); the service keeps answering correctly with the
  store offline, counting ``store_failures``.
* **Batched cold misses** — with ``batch_window_s > 0``, cold misses
  for the same batchable operation and instance family that arrive
  within the pending window are grouped and their quality reports
  computed through the vectorized batch layer
  (:func:`repro.core.batch.measure_batch`); every grouped response is
  ==-identical to the per-instance path, and the ``batched`` counter
  in ``/v1/stats`` tracks how many requests were served this way.

Computation is deterministic given the request (seeded constructions,
direct kernels), which is what makes results content-addressable and
retries idempotent.
"""

from __future__ import annotations

import hashlib
import json
import threading
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.instances import Instance, InstanceSpec, hydrate
from repro.apps.connectivity import connected_components
from repro.apps.mincut import approximate_min_cut
from repro.apps.mst import minimum_spanning_tree
from repro.core import quality
from repro.core.batch import measure_batch
from repro.core.doubling import find_shortcut_doubling
from repro.errors import ReproError
from repro.graphs.batch_csr import numpy_available
from repro.service.store import PersistentStore, canonical_json, spec_key

API_VERSION = "v1"
DEFAULT_DEADLINE_S = 30.0
DEFAULT_RETRY_AFTER_S = 0.05


class BadRequest(ReproError):
    """Malformed request (unknown family/op, bad JSON, bad params)."""


# ----------------------------------------------------------------------
# Operations
# ----------------------------------------------------------------------


def _digest(value: object) -> str:
    """Stable digest of a large result component (edges, labels)."""
    return hashlib.sha256(canonical_json(value)).hexdigest()


def _require_partition(instance: Instance) -> None:
    if instance.partition is None:
        raise BadRequest("this operation needs a spec with a partition")


def _require_weights(instance: Instance) -> None:
    if not instance.topology.is_weighted:
        raise BadRequest("this operation needs a weighted spec")


def _construct(instance: Instance, params: Dict):
    """One doubling construction + quality report for shortcut/quality."""
    _require_partition(instance)
    outcome = find_shortcut_doubling(
        instance.topology,
        instance.tree,
        instance.partition,
        seed=params["seed"],
        mode=params["mode"],
    )
    report = quality.measure(
        outcome.result.shortcut,
        instance.topology,
        with_dilation=params["with_dilation"],
    )
    return outcome, report


def _shortcut_payload(outcome, report) -> Dict:
    return {
        "c": outcome.c,
        "b": outcome.b,
        "rounds": outcome.rounds,
        "trials": len(outcome.trials),
        "congestion": report.congestion,
        "block_parameter": report.block_parameter,
        "dilation": report.dilation,
        "tree_depth": report.tree_depth,
    }


def _quality_payload(outcome, report) -> Dict:
    payload = _shortcut_payload(outcome, report)
    payload["block_counts"] = list(report.block_counts)
    payload["lemma1_dilation_bound"] = report.lemma1_dilation_bound
    return payload


def op_shortcut(instance: Instance, params: Dict) -> Dict:
    """Appendix A doubling construction + quality report."""
    outcome, report = _construct(instance, params)
    return _shortcut_payload(outcome, report)


def op_quality(instance: Instance, params: Dict) -> Dict:
    """Quality report of the constructed shortcut (incl. block counts)."""
    outcome, report = _construct(instance, params)
    return _quality_payload(outcome, report)


def op_mst(instance: Instance, params: Dict) -> Dict:
    """Shortcut-accelerated Borůvka MST (forest when disconnected)."""
    _require_weights(instance)
    result = minimum_spanning_tree(
        instance.topology,
        seed=params["seed"],
        construct_mode=params["mode"],
        backend=params["backend"],
    )
    return {
        "weight": result.weight,
        "n_edges": len(result.edges),
        "edges_sha256": _digest(sorted(result.edges)),
        "phases": result.phases,
        "rounds": result.rounds,
        "components": result.components,
    }


def op_mincut(instance: Instance, params: Dict) -> Dict:
    """Greedy-tree-packing min-cut upper bound."""
    result = approximate_min_cut(
        instance.topology,
        seed=params["seed"],
        construct_mode=params["mode"],
        backend=params["backend"],
    )
    return {
        "value": result.value,
        "cut_size": len(result.cut_edges),
        "trees_packed": result.trees_packed,
        "rounds": result.rounds,
        "components": result.components,
    }


def op_connectivity(instance: Instance, params: Dict) -> Dict:
    """Component labelling of the full topology."""
    result = connected_components(
        instance.topology,
        instance.topology.edges,
        seed=params["seed"],
        construct_mode=params["mode"],
        backend=params["backend"],
    )
    return {
        "components": result.components,
        "graph_components": result.graph_components,
        "phases": result.phases,
        "rounds": result.rounds,
        "labels_sha256": _digest(
            [result.labels[v] for v in sorted(result.labels)]
        ),
    }


OPERATIONS: Dict[str, Callable[[Instance, Dict], Dict]] = {
    "shortcut": op_shortcut,
    "quality": op_quality,
    "mst": op_mst,
    "mincut": op_mincut,
    "connectivity": op_connectivity,
}

# Ops whose compute splits into a per-instance construction plus a
# quality report the batch layer can vectorize across a pending-window
# group (the construction's randomness is per-instance either way, so
# grouping cannot change any answer).
BATCHED_PAYLOADS: Dict[str, Callable] = {
    "shortcut": _shortcut_payload,
    "quality": _quality_payload,
}

# Parameters every operation accepts, with the service defaults (the
# direct kernels: the fast, ==-verified path).
PARAM_DEFAULTS: Dict[str, object] = {
    "seed": 0,
    "mode": "direct",
    "backend": "direct",
    "with_dilation": False,
}


def parse_spec(raw: object) -> InstanceSpec:
    """Build an :class:`InstanceSpec` from its JSON form.

    JSON arrays become the spec's tuples; unknown fields are rejected
    so a typo cannot silently change the content address.
    """
    if not isinstance(raw, dict):
        raise BadRequest("spec must be a JSON object")
    allowed = {"family", "params", "weights", "partition", "tree_root"}
    unknown = set(raw) - allowed
    if unknown:
        raise BadRequest(f"unknown spec fields: {sorted(unknown)}")
    if "family" not in raw:
        raise BadRequest("spec needs a family")
    family = raw["family"]
    if not isinstance(family, str):
        raise BadRequest("spec family must be a string")

    def as_params(value, label):
        if value is None:
            return None
        if not isinstance(value, list):
            raise BadRequest(f"spec {label} must be a JSON array")
        return tuple(value)

    tree_root = raw.get("tree_root", 0)
    if not isinstance(tree_root, int):
        raise BadRequest("spec tree_root must be an integer")
    return InstanceSpec(
        family=family,
        params=as_params(raw.get("params", []), "params") or (),
        weights=as_params(raw.get("weights"), "weights"),
        partition=as_params(raw.get("partition"), "partition"),
        tree_root=tree_root,
    )


def parse_request(op: str, body: Dict) -> Tuple[InstanceSpec, Dict]:
    """Validate a request body into ``(spec, params)``."""
    if op not in OPERATIONS:
        raise BadRequest(
            f"unknown operation {op!r}; available: {sorted(OPERATIONS)}"
        )
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    unknown = set(body) - {"spec", "deadline_s"} - set(PARAM_DEFAULTS)
    if unknown:
        raise BadRequest(f"unknown request fields: {sorted(unknown)}")
    if "spec" not in body:
        raise BadRequest("request needs a spec")
    spec = parse_spec(body["spec"])
    params = {
        name: body.get(name, default)
        for name, default in PARAM_DEFAULTS.items()
    }
    if params["mode"] not in ("direct", "simulate"):
        raise BadRequest("mode must be 'direct' or 'simulate'")
    if params["backend"] not in ("direct", "simulate"):
        raise BadRequest("backend must be 'direct' or 'simulate'")
    if not isinstance(params["seed"], int):
        raise BadRequest("seed must be an integer")
    params["with_dilation"] = bool(params["with_dilation"])
    return spec, params


# ----------------------------------------------------------------------
# The service core (transport-independent)
# ----------------------------------------------------------------------


@dataclass
class ServiceStats:
    """Request-lifecycle counters; all monotone, read via /v1/stats."""

    requests: int = 0
    warm_hits: int = 0
    computed: int = 0
    batched: int = 0
    singleflight_joined: int = 0
    shed: int = 0
    deadline_expired: int = 0
    bad_requests: int = 0
    compute_errors: int = 0
    store_failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class ServiceResponse:
    """Transport-independent response: HTTP status + JSON body."""

    status: int
    body: Dict
    retry_after_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass
class _BatchGroup:
    """One pending window of same-family cold misses for one op."""

    op: str
    with_dilation: bool
    items: List[Tuple[str, InstanceSpec, Dict, Future]] = field(
        default_factory=list
    )
    timer: Optional[threading.Timer] = None


class ShortcutService:
    """The transport-independent request broker.

    Wraps the operation registry with the persistent store, the
    single-flight table, the bounded compute pool, and the stats; the
    HTTP layer below (and the chaos harness, which drives this class
    directly) is a thin shim over :meth:`handle`.

    With ``batch_window_s > 0`` cold misses on the batchable ops
    (:data:`BATCHED_PAYLOADS`) are held for up to that window and
    grouped by ``(op, family, with_dilation)``; a group flushes early
    when it reaches ``batch_limit`` members.  The group's quality
    reports are computed in one :func:`repro.core.batch.measure_batch`
    call (the vector strategy when numpy is installed, the loop
    otherwise — both ==-identical to per-instance compute).
    """

    def __init__(
        self,
        store: Optional[PersistentStore] = None,
        *,
        workers: int = 4,
        queue_limit: int = 16,
        max_deadline_s: float = DEFAULT_DEADLINE_S,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        batch_window_s: float = 0.0,
        batch_limit: int = 8,
    ) -> None:
        # Recovery counters survive store restarts: the chaos harness
        # (and a real operator) reopens the store and reassigns
        # ``service.store``; the retired instance's quarantine and
        # eviction counts would otherwise vanish from /v1/stats.
        self._store: Optional[PersistentStore] = None
        self._stores_retired = 0
        self._retired_quarantined = 0
        self._retired_evictions = 0
        self.store = store
        self.stats = ServiceStats()
        self.queue_limit = queue_limit
        self.max_deadline_s = max_deadline_s
        self.retry_after_s = retry_after_s
        self.batch_window_s = batch_window_s
        self.batch_limit = max(1, batch_limit)
        self._batch_strategy = "vector" if numpy_available() else "loop"
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-svc"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._batch_groups: Dict[Tuple, _BatchGroup] = {}
        self._pending = 0

    # -- store access (degrades gracefully) ----------------------------

    @property
    def store(self) -> Optional[PersistentStore]:
        return self._store

    @store.setter
    def store(self, store: Optional[PersistentStore]) -> None:
        previous = self._store
        if previous is not None and previous is not store:
            self._stores_retired += 1
            self._retired_quarantined += previous.stats.quarantined
            self._retired_evictions += previous.stats.evictions
        self._store = store

    def _store_get(self, key: str) -> Optional[object]:
        if self.store is None:
            return None
        try:
            return self.store.get(key)
        except Exception:
            self.stats.store_failures += 1
            return None

    def _store_put(self, key: str, payload: object) -> None:
        if self.store is None:
            return
        try:
            if not self.store.put(key, payload):
                self.stats.store_failures += 1
        except Exception:
            self.stats.store_failures += 1

    # -- the request path ----------------------------------------------

    def handle(
        self, op: str, body: Dict, *, deadline_s: Optional[float] = None
    ) -> ServiceResponse:
        """Serve one request; never raises.

        Every outcome is a :class:`ServiceResponse`: ``200`` with the
        result, ``400`` (malformed), ``422`` (valid request whose
        computation legitimately fails, e.g. a disconnected-spec
        shortcut), ``503`` (shed, with ``Retry-After``), ``504``
        (deadline expired), or ``500`` (unexpected internal error).
        """
        self.stats.requests += 1
        try:
            spec, params = parse_request(op, body)
        except BadRequest as error:
            self.stats.bad_requests += 1
            return ServiceResponse(400, {"error": str(error), "kind": "bad-request"})
        if deadline_s is None:
            raw = body.get("deadline_s", self.max_deadline_s)
            try:
                deadline_s = float(raw)
            except (TypeError, ValueError):
                self.stats.bad_requests += 1
                return ServiceResponse(
                    400, {"error": "deadline_s must be a number", "kind": "bad-request"}
                )
        deadline_s = max(0.0, min(deadline_s, self.max_deadline_s))

        key = spec_key(op, spec, **params)
        cached = self._store_get(key)
        if cached is not None:
            self.stats.warm_hits += 1
            return ServiceResponse(
                200, {"result": cached, "key": key, "warm": True}
            )

        # Single-flight: join an identical in-progress computation, or
        # claim a work-queue slot for a new one.
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.stats.singleflight_joined += 1
            else:
                if self._pending >= self.queue_limit:
                    self.stats.shed += 1
                    return ServiceResponse(
                        503,
                        {"error": "work queue full", "kind": "overload"},
                        retry_after_s=self.retry_after_s,
                    )
                self._pending += 1
                if self.batch_window_s > 0 and op in BATCHED_PAYLOADS:
                    future = self._enqueue_batched(key, op, spec, params)
                else:
                    future = self._pool.submit(
                        self._compute, key, op, spec, params
                    )
                self._inflight[key] = future

        try:
            outcome = future.result(timeout=deadline_s)
        except FutureTimeout:
            # The computation keeps running and will populate the
            # store; the client's retry lands warm.
            self.stats.deadline_expired += 1
            return ServiceResponse(
                504, {"error": "deadline expired", "kind": "deadline", "key": key}
            )
        kind, payload = outcome
        if kind == "ok":
            return ServiceResponse(200, {"result": payload, "key": key, "warm": False})
        if kind == "invalid":
            return ServiceResponse(422, {"error": payload, "kind": "unprocessable"})
        return ServiceResponse(500, {"error": payload, "kind": "internal"})

    def _compute(
        self, key: str, op: str, spec: InstanceSpec, params: Dict
    ) -> Tuple[str, object]:
        """Worker-side computation; returns ``(kind, payload)``.

        Exceptions never escape (a poisoned future would wedge every
        single-flight joiner): domain errors become ``invalid``,
        anything else ``error``.  The in-flight slot is always
        released.
        """
        try:
            instance = hydrate(spec)
            result = OPERATIONS[op](instance, params)
            self.stats.computed += 1
            self._store_put(key, result)
            return ("ok", result)
        except ReproError as error:
            self.stats.compute_errors += 1
            return ("invalid", str(error))
        except Exception as error:  # noqa: BLE001 — clean error, never a wrong answer
            self.stats.compute_errors += 1
            return ("error", f"{type(error).__name__}: {error}")
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                self._pending -= 1

    # -- batched cold misses -------------------------------------------

    def _enqueue_batched(
        self, key: str, op: str, spec: InstanceSpec, params: Dict
    ) -> Future:
        """Join/open the pending-window group for this op + family.

        Called with ``self._lock`` held.  Returns the per-request
        future; the group computes when the window expires or the
        group reaches ``batch_limit`` members.
        """
        group_key = (op, spec.family, params["with_dilation"])
        group = self._batch_groups.get(group_key)
        if group is None:
            group = _BatchGroup(op=op, with_dilation=params["with_dilation"])
            group.timer = threading.Timer(
                self.batch_window_s, self._flush_group, args=(group_key, group)
            )
            group.timer.daemon = True
            self._batch_groups[group_key] = group
            group.timer.start()
        future: Future = Future()
        group.items.append((key, spec, params, future))
        if len(group.items) >= self.batch_limit:
            self._batch_groups.pop(group_key, None)
            group.timer.cancel()
            self._pool.submit(self._run_group, group)
        return future

    def _flush_group(self, group_key: Tuple, group: _BatchGroup) -> None:
        """Timer callback: compute the group if it is still pending."""
        with self._lock:
            if self._batch_groups.get(group_key) is not group:
                return  # already flushed by the size limit (or close)
            self._batch_groups.pop(group_key)
        try:
            self._pool.submit(self._run_group, group)
        except RuntimeError:  # pool shut down under the timer
            self._run_group(group)

    def _finish(self, key: str, future: Future, outcome: Tuple) -> None:
        with self._lock:
            self._inflight.pop(key, None)
            self._pending -= 1
        future.set_result(outcome)

    def _run_group(self, group: _BatchGroup) -> None:
        """Compute one pending-window group.

        Constructions stay per-instance (their seeded randomness is
        request-scoped); the quality reports of the whole group run
        through one batch-layer call.  A failure stays confined to its
        own item — on any batch-call error the group falls back to
        per-instance measurement so errors attribute exactly as on the
        unbatched path.
        """
        built = []
        for key, spec, params, future in group.items:
            try:
                instance = hydrate(spec)
                _require_partition(instance)
                outcome = find_shortcut_doubling(
                    instance.topology,
                    instance.tree,
                    instance.partition,
                    seed=params["seed"],
                    mode=params["mode"],
                )
            except ReproError as error:
                self.stats.compute_errors += 1
                self._finish(key, future, ("invalid", str(error)))
            except Exception as error:  # noqa: BLE001
                self.stats.compute_errors += 1
                self._finish(
                    key, future, ("error", f"{type(error).__name__}: {error}")
                )
            else:
                built.append((key, future, instance, outcome))
        if not built:
            return
        reports = None
        try:
            reports = measure_batch(
                [outcome.result.shortcut for _, _, _, outcome in built],
                [instance.topology for _, _, instance, _ in built],
                with_dilation=group.with_dilation,
                batch=self._batch_strategy,
            )
        except Exception:  # noqa: BLE001 — fall back to per-item measure
            reports = None
        payload_fn = BATCHED_PAYLOADS[group.op]
        for index, (key, future, instance, outcome) in enumerate(built):
            try:
                report = (
                    reports[index]
                    if reports is not None
                    else quality.measure(
                        outcome.result.shortcut,
                        instance.topology,
                        with_dilation=group.with_dilation,
                    )
                )
                result = payload_fn(outcome, report)
                self.stats.computed += 1
                self.stats.batched += 1
                self._store_put(key, result)
                self._finish(key, future, ("ok", result))
            except ReproError as error:
                self.stats.compute_errors += 1
                self._finish(key, future, ("invalid", str(error)))
            except Exception as error:  # noqa: BLE001
                self.stats.compute_errors += 1
                self._finish(
                    key, future, ("error", f"{type(error).__name__}: {error}")
                )

    def stats_payload(self) -> Dict:
        payload = {"service": self.stats.as_dict()}
        current = self.store.stats if self.store is not None else None
        if self.store is not None:
            payload["store"] = current.as_dict()
            payload["store_root"] = str(self.store.root)
        # Lifetime recovery counters: quarantines and LRU evictions
        # across every store this service has pointed at, including
        # instances retired by a restart.
        payload["recoveries"] = {
            "stores_retired": self._stores_retired,
            "quarantined": self._retired_quarantined
            + (current.quarantined if current is not None else 0),
            "evictions": self._retired_evictions
            + (current.evictions if current is not None else 0),
        }
        return payload

    def close(self) -> None:
        # Flush any pending batch windows so their futures resolve
        # before the pool drains (a cancelled timer must not strand a
        # waiting request).
        with self._lock:
            groups = list(self._batch_groups.items())
            self._batch_groups.clear()
        for _group_key, group in groups:
            if group.timer is not None:
                group.timer.cancel()
            self._pool.submit(self._run_group, group)
        self._pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    service: ShortcutService  # set by serve()
    protocol_version = "HTTP/1.1"

    # Silence per-request stderr logging (the service has /v1/stats).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_json(
        self, status: int, body: Dict, retry_after_s: Optional[float] = None
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{retry_after_s:.3f}")
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == f"/{API_VERSION}/stats":
            self._send_json(200, self.service.stats_payload())
        elif self.path == f"/{API_VERSION}/ops":
            self._send_json(
                200,
                {"operations": sorted(OPERATIONS), "defaults": PARAM_DEFAULTS},
            )
        else:
            self._send_json(404, {"error": "not found", "kind": "not-found"})

    def do_POST(self) -> None:  # noqa: N802
        prefix = f"/{API_VERSION}/"
        if not self.path.startswith(prefix):
            self._send_json(404, {"error": "not found", "kind": "not-found"})
            return
        op = self.path[len(prefix):]
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(
                400, {"error": "body is not valid JSON", "kind": "bad-request"}
            )
            return
        response = self.service.handle(op, body)
        self._send_json(response.status, response.body, response.retry_after_s)


@dataclass
class ServiceHandle:
    """A running HTTP service; close() is idempotent."""

    service: ShortcutService
    server: ThreadingHTTPServer
    thread: threading.Thread
    host: str
    port: int

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        self.service.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    store: Optional[PersistentStore] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    queue_limit: int = 16,
    max_deadline_s: float = DEFAULT_DEADLINE_S,
    retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    batch_window_s: float = 0.0,
    batch_limit: int = 8,
) -> ServiceHandle:
    """Start the HTTP service on a daemon thread; returns its handle.

    ``port=0`` binds an ephemeral port (the handle reports it) — the
    tests, chaos harness, and E20 all run hermetic in-process servers
    this way.
    """
    service = ShortcutService(
        store,
        workers=workers,
        queue_limit=queue_limit,
        max_deadline_s=max_deadline_s,
        retry_after_s=retry_after_s,
        batch_window_s=batch_window_s,
        batch_limit=batch_limit,
    )
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-svc-http", daemon=True
    )
    thread.start()
    return ServiceHandle(
        service=service,
        server=server,
        thread=thread,
        host=host,
        port=server.server_address[1],
    )
