"""Deterministic fault-injection harness for the shortcut service.

In the style of :mod:`repro.failures.scenarios`, every fault is drawn
from a seeded generator, so a chaos run is a *reproducible program*:
the same seed injects the same corruptions, IO errors, latencies, and
writer kills in the same order, and the suite's acceptance bar is
absolute —

    **under any injected fault the service returns either a correct
    result or a clean error; it never serves a wrong answer.**

"Correct" is differential: the expected payload for every
``(op, spec)`` pair is computed once through
:func:`repro.analysis.instances.reference_instance` — the validating
reference constructors, no cache, no store — and every ``200``
response must equal it exactly.  "Clean error" means a structured JSON
envelope with one of the service's declared kinds (overload, deadline,
bad-request, unprocessable, internal) — never a traceback, never a
half-written payload.

Fault classes
-------------

* **Entry corruption** — an existing store entry is flipped, truncated,
  or replaced with garbage on disk; the next read must quarantine and
  recompute.
* **IO errors** — store reads/writes raise ``OSError`` for a window;
  the service degrades to the cold path.
* **Latency** — store reads stall; combined with a zero deadline probe
  this exercises the ``504`` path.
* **Killed writer** — a commit dies between fsync and publish
  (:class:`~repro.service.store.KilledWriter`); the published entry
  must be byte-identical to the pre-kill state and the orphan temp
  file swept on the next store open.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.instances import (
    InstanceSpec,
    reference_instance,
)
from repro.congest.randomness import mix
from repro.errors import ReproError
from repro.service.client import ServiceClient, ServiceError, spec_to_json
from repro.service.server import (
    OPERATIONS,
    PARAM_DEFAULTS,
    ShortcutService,
    serve,
)
from repro.service.store import (
    KilledWriter,
    PersistentStore,
    _Hooks,
)

CHAOS_SALT = 0xC4A0

CLEAN_ERROR_KINDS = frozenset(
    {"overload", "deadline", "bad-request", "unprocessable", "internal"}
)

CORRUPTION_STYLES = ("flip", "truncate", "garbage", "empty")


class ChaosViolation(AssertionError):
    """The service served a wrong answer or an unclean error."""


def batched_chaos_specs() -> List[Tuple[str, InstanceSpec]]:
    """Same-family (grid) specs whose cold misses group in one window."""
    return [
        (
            "grid-a",
            InstanceSpec(
                "grid", (5, 5), weights=("unique", 3),
                partition=("voronoi", 5, 1),
            ),
        ),
        (
            "grid-b",
            InstanceSpec(
                "grid", (6, 4), weights=("unique", 6),
                partition=("voronoi", 4, 2),
            ),
        ),
        (
            "grid-c",
            InstanceSpec(
                "grid", (4, 6), weights=("unique", 7),
                partition=("voronoi", 6, 3),
            ),
        ),
    ]


def default_chaos_specs() -> List[Tuple[str, InstanceSpec]]:
    """Small weighted instances with reference twins for every op."""
    return [
        (
            "grid",
            InstanceSpec(
                "grid", (5, 5), weights=("unique", 3),
                partition=("voronoi", 5, 1),
            ),
        ),
        (
            "torus",
            InstanceSpec(
                "torus", (4, 4), weights=("unique", 4),
                partition=("voronoi", 4, 2),
            ),
        ),
        (
            "hub",
            InstanceSpec(
                "hub", (24, 4), weights=("unique", 5),
                partition=("arcs", 24, 4, 1),
            ),
        ),
    ]


# ----------------------------------------------------------------------
# The fault schedule
# ----------------------------------------------------------------------


@dataclass
class _HookState:
    """Mutable armed-fault flags consumed by the store hooks."""

    io_reads_left: int = 0
    io_writes_left: int = 0
    read_latency_s: float = 0.0
    kill_next_commit: bool = False


@dataclass
class FaultSchedule:
    """Seeded fault decisions; one instance drives one chaos run.

    Probabilities are per *request slot* in the suite loop.  The
    schedule also owns the hook state the store consults, so arming
    and consuming faults stays in one place.
    """

    seed: int = 0
    p_corrupt: float = 0.3
    p_io_error: float = 0.25
    p_kill: float = 0.2
    p_latency: float = 0.25
    latency_s: float = 0.002
    io_window: int = 2

    def __post_init__(self) -> None:
        self._rng = random.Random(mix(self.seed, CHAOS_SALT))
        self.state = _HookState()
        self.injected: Dict[str, int] = {
            "corruptions": 0,
            "io_errors": 0,
            "kills": 0,
            "latency": 0,
        }

    # -- store hooks ---------------------------------------------------

    def hooks(self) -> _Hooks:
        return _Hooks(
            before_read=self._before_read,
            before_write=self._before_write,
            during_commit=self._during_commit,
        )

    def _before_read(self, key: str, path: Path) -> None:
        if self.state.read_latency_s > 0:
            time.sleep(self.state.read_latency_s)
            self.state.read_latency_s = 0.0
        if self.state.io_reads_left > 0:
            self.state.io_reads_left -= 1
            raise OSError("chaos: injected read error")

    def _before_write(self, key: str, path: Path) -> None:
        if self.state.io_writes_left > 0:
            self.state.io_writes_left -= 1
            raise OSError("chaos: injected write error")

    def _during_commit(self, key: str, tmp: Path) -> None:
        if self.state.kill_next_commit:
            self.state.kill_next_commit = False
            raise KilledWriter(f"chaos: writer killed committing {key}")

    # -- per-slot decisions --------------------------------------------

    def corrupt_entry(self, store: PersistentStore) -> Optional[str]:
        """Maybe damage one committed entry on disk; returns its key."""
        if self._rng.random() >= self.p_corrupt:
            return None
        keys = sorted(store.keys())
        if not keys:
            return None
        key = self._rng.choice(keys)
        path = store.path_for(key)
        style = self._rng.choice(CORRUPTION_STYLES)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if style == "flip":
            index = self._rng.randrange(max(1, len(raw)))
            flipped = bytes([raw[index] ^ 0xFF])
            damaged = raw[:index] + flipped + raw[index + 1:]
        elif style == "truncate":
            damaged = raw[: len(raw) // 2]
        elif style == "garbage":
            damaged = bytes(
                self._rng.randrange(256) for _ in range(self._rng.randrange(1, 64))
            )
        else:
            damaged = b""
        path.write_bytes(damaged)
        # A real crash loses the process's memory layer with it; drop
        # the key so the next read goes through the damaged disk.
        store.forget_memory(key)
        self.injected["corruptions"] += 1
        return key

    def arm_io_errors(self) -> bool:
        if self._rng.random() >= self.p_io_error:
            return False
        if self._rng.random() < 0.5:
            self.state.io_reads_left = self.io_window
        else:
            self.state.io_writes_left = self.io_window
        self.injected["io_errors"] += 1
        return True

    def arm_latency(self) -> bool:
        if self._rng.random() >= self.p_latency:
            return False
        self.state.read_latency_s = self.latency_s
        self.injected["latency"] += 1
        return True

    def should_kill_writer(self) -> bool:
        if self._rng.random() >= self.p_kill:
            return False
        self.injected["kills"] += 1
        return True


def simulate_killed_writer(
    store: PersistentStore, schedule: FaultSchedule, key: str, payload: object
) -> None:
    """Run one commit that dies between fsync and publish.

    Asserts the atomic-commit contract afterwards: the published entry
    is byte-identical to its pre-kill state (or still absent), with
    only an orphan temp file left behind.
    """
    path = store.path_for(key)
    before = path.read_bytes() if path.exists() else None
    schedule.state.kill_next_commit = True
    try:
        # An armed IO-error window may abort the write before the kill
        # seam fires (put returns False); either way the commit must
        # never publish.
        completed = store.put(key, payload)
    except KilledWriter:
        completed = False
    finally:
        schedule.state.kill_next_commit = False
    if completed:
        raise ChaosViolation("killed writer completed its commit")
    after = path.read_bytes() if path.exists() else None
    if after != before:
        raise ChaosViolation(
            f"kill-mid-commit changed the published entry for {key[:12]}"
        )
    # The store's memory layer may now be ahead of disk (the payload
    # was never published); drop it, as a real process death would.
    store.forget_memory(key)


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Outcome counts of one chaos run; ``wrong`` must stay 0."""

    requests: int = 0
    correct: int = 0
    correct_warm: int = 0
    clean_errors: int = 0
    wrong: int = 0
    error_kinds: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    swept_tmp: int = 0
    store_intact: int = 0
    batched: int = 0
    http_requests: int = 0
    http_retries: int = 0

    def as_dict(self) -> Dict:
        return dict(self.__dict__)


def _expected_results(
    pairs: Sequence[Tuple[str, InstanceSpec]], ops: Sequence[str]
) -> Dict[Tuple[str, str], Dict]:
    """The differential anchor: every op on every spec, computed on
    reference-constructed instances with no cache and no store."""
    params = dict(PARAM_DEFAULTS)
    expected = {}
    for name, spec in pairs:
        instance = reference_instance(spec)
        for op in ops:
            expected[(name, op)] = OPERATIONS[op](instance, params)
    return expected


def _check_response(
    report: ChaosReport, response, expected: Dict, label: str
) -> None:
    """Classify one ServiceResponse: correct / clean error / wrong."""
    report.requests += 1
    if response.status == 200:
        if response.body["result"] == expected:
            report.correct += 1
            if response.body.get("warm"):
                report.correct_warm += 1
        else:
            report.wrong += 1
            raise ChaosViolation(
                f"{label}: served a WRONG result: "
                f"{response.body['result']} != {expected}"
            )
        return
    kind = response.body.get("kind")
    if kind not in CLEAN_ERROR_KINDS or "error" not in response.body:
        report.wrong += 1
        raise ChaosViolation(
            f"{label}: unclean error envelope {response.status}: {response.body}"
        )
    report.clean_errors += 1
    report.error_kinds[kind] = report.error_kinds.get(kind, 0) + 1


def run_chaos_suite(
    store_root: os.PathLike,
    *,
    seed: int = 0,
    rounds: int = 4,
    specs: Optional[Sequence[Tuple[str, InstanceSpec]]] = None,
    ops: Sequence[str] = ("shortcut", "mst", "connectivity"),
    schedule: Optional[FaultSchedule] = None,
    use_http: bool = False,
    memory_entries: int = 4,
    batched_round: bool = True,
) -> ChaosReport:
    """Drive the service through a seeded fault storm.

    Each round walks every ``(spec, op)`` pair; before each request the
    schedule may corrupt a store entry, arm an IO-error window, arm
    read latency, or kill a writer mid-commit; a zero-deadline probe
    runs once per round.  Every response is differentially checked (see
    module docstring).  Between rounds the store is *reopened* —
    sweeping orphan temp files like a restarted process — and at the
    end a full :meth:`~repro.service.store.PersistentStore.verify`
    sweep must leave every surviving entry intact.

    With ``use_http`` the final round additionally replays the suite
    through a real HTTP server and the retrying
    :class:`~repro.service.client.ServiceClient`, so transport, load
    shedding (tiny queue), and backoff run under fault too.

    After the storm a **batched round** (``batched_round=True``) fires
    same-family cold misses concurrently at a service with a pending
    window open: the grouped responses must go through the batch layer
    (``report.batched``) and still ==-match their
    :func:`~repro.analysis.instances.reference_instance` results —
    fault state left armed by the storm may degrade the store under
    the group, never the answers.

    Raises :class:`ChaosViolation` on any wrong answer; returns the
    :class:`ChaosReport` otherwise.
    """
    pairs = list(specs) if specs is not None else default_chaos_specs()
    schedule = schedule or FaultSchedule(seed=seed)
    expected = _expected_results(pairs, ops)
    report = ChaosReport()

    store = PersistentStore(
        store_root, memory_entries=memory_entries, hooks=schedule.hooks()
    )
    service = ShortcutService(store, workers=2, queue_limit=8)
    quarantined = 0
    swept = store.stats.swept_tmp
    try:
        for round_index in range(rounds):
            for name, spec in pairs:
                for op in ops:
                    label = f"round {round_index}: {op}/{name}"
                    # Fault roulette for this slot.
                    schedule.corrupt_entry(store)
                    schedule.arm_io_errors()
                    schedule.arm_latency()
                    if schedule.should_kill_writer():
                        keys = sorted(store.keys())
                        key = keys[round_index % len(keys)] if keys else (
                            hashlib.sha256(
                                f"chaos-kill-{round_index}".encode()
                            ).hexdigest()
                        )
                        simulate_killed_writer(
                            store, schedule, key, {"killed-round": round_index}
                        )
                    body = {"spec": spec_to_json(spec)}
                    response = service.handle(op, body)
                    _check_response(report, response, expected[(name, op)], label)

            # One zero-deadline probe per round, on a fresh seed (never
            # cached): a clean 504 is the expected outcome; a 200 means
            # the pool won the race, which is also fine — anything else
            # is a violation.
            name, spec = pairs[round_index % len(pairs)]
            probe = service.handle(
                ops[0],
                {"spec": spec_to_json(spec), "seed": 10_000 + round_index},
                deadline_s=0.0,
            )
            report.requests += 1
            if probe.status == 504 and probe.body.get("kind") == "deadline":
                report.clean_errors += 1
                report.error_kinds["deadline"] = (
                    report.error_kinds.get("deadline", 0) + 1
                )
            elif probe.status == 200:
                report.correct += 1
            else:
                raise ChaosViolation(
                    f"zero-deadline probe: unexpected {probe.status}: {probe.body}"
                )

            # Restart: reopen the store (sweeps killed writers' temp
            # files, drops the memory layer) and point the service at
            # the fresh instance.  Stats are per-open; accumulate.
            quarantined += store.stats.quarantined
            store = PersistentStore(
                store_root, memory_entries=memory_entries, hooks=schedule.hooks()
            )
            swept += store.stats.swept_tmp
            service.store = store
    finally:
        service.close()

    # Post-storm audit: every surviving entry must decode cleanly.
    intact, _ = store.verify()
    report.store_intact = intact
    report.quarantined = quarantined + store.stats.quarantined
    report.swept_tmp = swept
    report.injected = dict(schedule.injected)

    # /v1/stats must not lose recovery counters across the restarts the
    # storm forced: the service's lifetime quarantine count has to
    # match what the harness itself accumulated store-by-store.
    recoveries = service.stats_payload()["recoveries"]
    if recoveries["quarantined"] != report.quarantined:
        raise ChaosViolation(
            f"stats lost quarantines across store restarts: "
            f"/v1/stats reports {recoveries['quarantined']}, "
            f"harness counted {report.quarantined}"
        )

    if batched_round:
        _batched_round(store, report, seed)

    if use_http:
        _http_storm(store_root, pairs, ops, expected, schedule, report, seed)
    return report


def _batched_round(
    store: PersistentStore, report: ChaosReport, seed: int
) -> None:
    """Fire same-family cold misses into an open pending window.

    Every request must be served through the service's batch layer and
    its payload must still equal the reference-instance result exactly
    — grouping is a throughput optimisation, never an answer change.
    """
    pairs = batched_chaos_specs()
    params = dict(PARAM_DEFAULTS)
    params["seed"] = 20_000 + seed  # fresh seed: every key is cold
    expected = {
        name: OPERATIONS["shortcut"](reference_instance(spec), params)
        for name, spec in pairs
    }
    service = ShortcutService(
        store,
        workers=2,
        queue_limit=16,
        batch_window_s=0.25,
        batch_limit=len(pairs),
    )
    responses: Dict[str, object] = {}

    def fire(name: str, spec: InstanceSpec) -> None:
        responses[name] = service.handle(
            "shortcut", {"spec": spec_to_json(spec), "seed": params["seed"]}
        )

    try:
        threads = [
            threading.Thread(target=fire, args=(name, spec))
            for name, spec in pairs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        service.close()

    for name, _spec in pairs:
        _check_response(
            report, responses[name], expected[name],
            f"batched round: shortcut/{name}",
        )
    if service.stats.batched < len(pairs):
        raise ChaosViolation(
            "batched round: cold misses bypassed the batch layer "
            f"(batched={service.stats.batched}, expected {len(pairs)})"
        )
    report.batched = service.stats.batched


def _http_storm(
    store_root: os.PathLike,
    pairs: Sequence[Tuple[str, InstanceSpec]],
    ops: Sequence[str],
    expected: Dict[Tuple[str, str], Dict],
    schedule: FaultSchedule,
    report: ChaosReport,
    seed: int,
) -> None:
    """Replay the suite over real HTTP with a tiny queue and retries."""
    store = PersistentStore(store_root, memory_entries=2, hooks=schedule.hooks())
    with serve(store, workers=2, queue_limit=2) as handle:
        client = ServiceClient(
            handle.base_url,
            timeout_s=30.0,
            max_retries=5,
            backoff_base_s=0.01,
            backoff_cap_s=0.1,
            jitter_seed=mix(seed, 1),
        )
        for name, spec in pairs:
            for op in ops:
                schedule.corrupt_entry(store)
                schedule.arm_io_errors()
                try:
                    result = client.request(op, spec)
                except ServiceError as error:
                    if error.kind not in CLEAN_ERROR_KINDS | {"transport"}:
                        raise ChaosViolation(
                            f"http {op}/{name}: unclean client error {error.kind}"
                        )
                    report.clean_errors += 1
                else:
                    if result.result != expected[(name, op)]:
                        raise ChaosViolation(
                            f"http {op}/{name}: served a WRONG result"
                        )
                    report.correct += 1
                report.http_requests += 1
        report.http_retries = client.retries_used
