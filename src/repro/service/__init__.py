"""Long-lived shortcut service: persistent store, server, client, chaos.

The fast-path era made one construction cheap; this package makes *many
requests* cheap by promoting the per-process instance cache
(:mod:`repro.analysis.instances`) to a crash-safe persistent layer and
serving the whole application stack over HTTP/JSON:

* :mod:`repro.service.store` — content-addressed on-disk result store
  (atomic commits, per-entry checksums, corruption quarantine, bounded
  LRU in front);
* :mod:`repro.service.server` — thread-pool HTTP/JSON API with
  per-request deadlines, single-flight deduplication, bounded queue
  load-shedding, and graceful degradation to the cold path;
* :mod:`repro.service.client` — SDK with timeouts and capped
  exponential backoff + jitter on idempotent retries;
* :mod:`repro.service.chaos` — deterministic fault-injection harness
  (seeded, in the style of :mod:`repro.failures.scenarios`) asserting
  the service never serves a wrong answer.

Experiment E20 (``benchmarks/bench_e20_service.py``) tracks cold vs
warm requests/sec and recovery-after-corruption latency in
``BENCH_service.json``.
"""

from repro.service.chaos import ChaosReport, FaultSchedule, run_chaos_suite
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    OPERATIONS,
    ServiceHandle,
    ShortcutService,
    serve,
)
from repro.service.store import PersistentStore, StoreStats, spec_key

__all__ = [
    "ChaosReport",
    "FaultSchedule",
    "OPERATIONS",
    "PersistentStore",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ShortcutService",
    "StoreStats",
    "run_chaos_suite",
    "serve",
    "spec_key",
]
