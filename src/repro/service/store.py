"""Crash-safe persistent result store.

The on-disk promotion of the per-process instance cache: computed
service results (shortcut constructions, MSTs, min-cuts, connectivity
labellings, quality reports) are cached by the content address of the
request that produced them, so a warm store answers repeat requests
without touching the construction stack at all.

Durability contract
-------------------

* **Atomic commits.**  Every write goes to a temporary file in the same
  directory, is flushed and fsynced, then published with
  ``os.replace`` — a reader never observes a half-written entry, and a
  writer killed mid-commit leaves only a stale ``*.tmp`` file (swept on
  the next store open).
* **Self-verifying entries.**  Each entry file carries a schema-version
  header and a SHA-256 checksum of its canonical payload bytes.  A read
  that finds anything wrong — unparsable JSON, wrong schema, key
  mismatch, checksum mismatch, truncation — never raises into the
  caller: the file is *quarantined* (moved into ``quarantine/`` for
  post-mortem) and the read reports a miss, so the service transparently
  recomputes and repopulates.
* **Bounded memory.**  An LRU layer in front of the disk keeps the last
  ``memory_entries`` payloads hot; the disk itself is the capacity
  layer.
* **Multi-process safety.**  Commits and the orphan sweep serialize on
  an advisory ``fcntl`` file lock in the store root, so a store opening
  in one process (whose sweep deletes stale ``*.tmp`` files) can never
  race a writer in another process between writing its temp file and
  publishing it.  The lock is advisory and held only across those two
  critical sections; plain reads never take it.  On platforms without
  ``fcntl`` the inter-process lock degrades to a no-op (the in-process
  ``threading.Lock`` still applies).

Fault injection
---------------

All filesystem access funnels through ``_read_bytes`` / ``_commit``
hook points that a :class:`~repro.service.chaos.FaultSchedule` can
wrap (IO errors, latency, kill-mid-commit).  The store's observable
contract under any such fault is *miss, never corruption*: either the
old entry survives intact or the entry is gone/quarantined.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.analysis.instances import InstanceSpec
from repro.errors import ReproError

try:  # POSIX only; elsewhere the inter-process lock is a no-op.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

STORE_SCHEMA = "repro.store.v1"

# A writer is killed between creating its temp file and publishing it;
# anything with this suffix is garbage by construction and swept.
TMP_SUFFIX = ".tmp"
ENTRY_SUFFIX = ".json"
QUARANTINE_DIR = "quarantine"
LOCK_FILE = ".lock"


class StoreError(ReproError):
    """Raised when the store cannot operate at all (not per-entry)."""


def canonical_json(payload: object) -> bytes:
    """Canonical bytes of a JSON payload (sorted keys, no whitespace).

    The checksum and the content address are both computed over this
    encoding, so equality of payloads is equality of bytes.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def spec_key(op: str, spec: InstanceSpec, **params: object) -> str:
    """Content address of one request: ``sha256(op, spec, params)``.

    Two requests naming the same operation on the same instance spec
    with the same parameters hash identically — across processes,
    machines, and store generations (the digest covers only values, no
    object identities).
    """
    record = {
        "op": op,
        "family": spec.family,
        "params": list(spec.params),
        "weights": list(spec.weights) if spec.weights is not None else None,
        "partition": (
            list(spec.partition) if spec.partition is not None else None
        ),
        "tree_root": spec.tree_root,
        "extra": {k: params[k] for k in sorted(params)},
    }
    return hashlib.sha256(canonical_json(record)).hexdigest()


@dataclass
class StoreStats:
    """Observable store behaviour, for tests, /stats, and E20."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    quarantined: int = 0
    io_errors: int = 0
    swept_tmp: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Hooks:
    """Fault-injection seams; identity by default (see chaos.py)."""

    before_read: Optional[Callable[[str, Path], None]] = None
    before_write: Optional[Callable[[str, Path], None]] = None
    during_commit: Optional[Callable[[str, Path], None]] = None
    mutate_bytes: Optional[Callable[[str, bytes], bytes]] = None


class KilledWriter(BaseException):
    """Simulated process death mid-commit (chaos only).

    Derives from ``BaseException`` so no ``except Exception`` recovery
    path can accidentally "survive" the kill — exactly like a real
    ``SIGKILL``, the commit simply never finishes.
    """


@dataclass
class _Entry:
    payload: object
    checksum: str


class PersistentStore:
    """Content-addressed crash-safe result store with an LRU front.

    Parameters
    ----------
    root:
        Directory holding the entries (created if missing).  Entries
        are sharded by the first two hex digits of their key to keep
        directory fan-out bounded.
    memory_entries:
        Size of the in-memory LRU layer (``0`` disables it).
    hooks:
        Fault-injection seams used by :mod:`repro.service.chaos`.
    """

    def __init__(
        self,
        root: os.PathLike,
        *,
        memory_entries: int = 256,
        hooks: Optional[_Hooks] = None,
    ) -> None:
        self.root = Path(root)
        self.memory_entries = memory_entries
        self.stats = StoreStats()
        self.hooks = hooks or _Hooks()
        self._memory: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / QUARANTINE_DIR).mkdir(exist_ok=True)
        except OSError as error:
            raise StoreError(f"cannot create store at {self.root}: {error}")
        self.sweep_tmp()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Entry file for a key (two-hex-digit shard directory)."""
        return self.root / key[:2] / f"{key}{ENTRY_SUFFIX}"

    @contextmanager
    def _process_lock(self):
        """Advisory inter-process lock over commit/sweep critical sections.

        An exclusive ``flock`` on ``<root>/.lock``: a sweep in one
        process cannot interleave with another process's
        write-temp-then-publish window, so it never unlinks a temp file
        that is about to be published.  A real ``SIGKILL`` while the
        lock is held releases it with the process; the simulated
        :class:`KilledWriter` releases it through ``finally``.
        """
        if fcntl is None:
            yield
            return
        handle = open(self.root / LOCK_FILE, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    def sweep_tmp(self) -> int:
        """Remove temp files left by writers killed mid-commit.

        Safe at any time: a ``*.tmp`` file is by construction
        unpublished — in-flight commits of live writers are excluded by
        the advisory lock — so deleting one can only discard an
        incomplete commit whose request will recompute.
        """
        swept = 0
        try:
            with self._process_lock():
                for tmp in self.root.glob(f"*/*{TMP_SUFFIX}"):
                    try:
                        tmp.unlink()
                        swept += 1
                    except OSError:
                        pass
        except OSError:
            pass
        self.stats.swept_tmp += swept
        return swept

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[object]:
        """The payload stored under ``key``, or ``None`` on miss.

        Never raises on a damaged entry: corruption of any kind
        quarantines the file and reports a miss; IO errors report a
        miss (counted in ``stats.io_errors``).
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.hits_memory += 1
                return entry.payload
        path = self.path_for(key)
        try:
            if self.hooks.before_read is not None:
                self.hooks.before_read(key, path)
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.io_errors += 1
            self.stats.misses += 1
            return None
        if self.hooks.mutate_bytes is not None:
            raw = self.hooks.mutate_bytes(key, raw)
        entry = self._decode(key, raw)
        if entry is None:
            self._quarantine(key, path)
            self.stats.misses += 1
            return None
        self.stats.hits_disk += 1
        self._remember(key, entry)
        return entry.payload

    def _decode(self, key: str, raw: bytes) -> Optional[_Entry]:
        """Parse + verify an entry file; ``None`` means corrupt."""
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema") != STORE_SCHEMA:
            return None
        if envelope.get("key") != key:
            return None
        if "payload" not in envelope or "sha256" not in envelope:
            return None
        payload = envelope["payload"]
        checksum = hashlib.sha256(canonical_json(payload)).hexdigest()
        if checksum != envelope["sha256"]:
            return None
        return _Entry(payload=payload, checksum=checksum)

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a damaged entry aside so the next read is a clean miss."""
        target = self.root / QUARANTINE_DIR / path.name
        try:
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError:
            # Fall back to deletion; the entry must not stay readable.
            try:
                path.unlink()
                self.stats.quarantined += 1
            except OSError:
                self.stats.io_errors += 1

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, key: str, payload: object) -> bool:
        """Persist ``payload`` under ``key``; returns ``False`` on IO error.

        The commit is atomic: temp file in the entry's directory,
        flush + fsync, ``os.replace``.  A failure at any point leaves
        the previous entry (if any) untouched.
        """
        body = canonical_json(payload)
        checksum = hashlib.sha256(body).hexdigest()
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "sha256": checksum,
            "payload": payload,
        }
        data = json.dumps(envelope, sort_keys=True, indent=1).encode("utf-8")
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}{TMP_SUFFIX}")
        try:
            if self.hooks.before_write is not None:
                self.hooks.before_write(key, path)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Hold the advisory lock across the whole temp-then-publish
            # window so another process's orphan sweep cannot unlink
            # the temp file before os.replace publishes it.
            with self._process_lock():
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                    if self.hooks.during_commit is not None:
                        # The kill-mid-commit seam: raising KilledWriter
                        # here models a writer dying after writing bytes
                        # but before publishing.
                        self.hooks.during_commit(key, tmp)
                os.replace(tmp, path)
        except KilledWriter:
            raise
        except OSError:
            self.stats.io_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stats.writes += 1
        self._remember(key, _Entry(payload=payload, checksum=checksum))
        return True

    def _remember(self, key: str, entry: _Entry) -> None:
        if self.memory_entries <= 0:
            return
        with self._lock:
            self._memory[key] = entry
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def forget_memory(self, key: Optional[str] = None) -> None:
        """Drop the in-memory layer (or one key) — chaos/tests use this
        to force the next read through the disk path."""
        with self._lock:
            if key is None:
                self._memory.clear()
            else:
                self._memory.pop(key, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All committed entry keys currently on disk."""
        for path in sorted(self.root.glob(f"*/*{ENTRY_SUFFIX}")):
            if path.parent.name == QUARANTINE_DIR:
                continue
            yield path.stem

    def entry_count(self) -> int:
        return sum(1 for _ in self.keys())

    def verify(self) -> Tuple[int, int]:
        """Scan every entry through the checked read path.

        Returns ``(intact, quarantined)``; after a verify, every
        remaining entry decodes cleanly.  Chaos sweeps call this to
        assert a faulted store converges back to a fully-intact state.
        """
        intact = 0
        quarantined_before = self.stats.quarantined
        for key in list(self.keys()):
            self.forget_memory(key)
            if self.get(key) is not None:
                intact += 1
        return intact, self.stats.quarantined - quarantined_before
