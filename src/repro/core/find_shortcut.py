"""FindShortcut — the main construction (Theorem 3).

Repeat until every part is *good*:

1. run a core subroutine (CoreFast by default, CoreSlow for the
   deterministic variant) on the not-yet-good parts — it produces a
   tentative shortcut with congestion O(c) in which at least half of
   the participating parts have block parameter at most ``3b``;
2. run Verification with threshold ``3b``; freeze the subgraphs of the
   parts that pass and remove them.

Each iteration halves the number of unfinished parts (w.h.p. for
CoreFast, deterministically for CoreSlow), so there are O(log N)
iterations; the frozen subgraphs accumulate congestion O(c log N)
while every part's block parameter is at most ``3b`` — Theorem 3.

The round cost — O(D log n log N + bD log N + bc log N) — is recorded
phase by phase on a :class:`~repro.congest.trace.RoundLedger`.  The
whole pipeline runs in one of two modes (see
:mod:`repro.core.construct_fast`): ``mode="simulate"`` executes every
phase as a node program on the CONGEST simulator, ``mode="direct"``
computes the bit-for-bit identical outputs with centralized array
kernels and charges the ledger from the analytic cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.congest.randomness import (
    draw_shared_seed,
    mix,
    share_randomness,
)
from repro.congest.topology import Edge, Topology
from repro.congest.trace import RoundLedger
from repro.core.construct_fast import (
    resolve_mode,
    share_randomness_cost,
)
from repro.core.core_fast import core_fast
from repro.core.core_slow import core_slow
from repro.core.shortcut import TreeRestrictedShortcut
from repro.core.verification import verification
from repro.errors import ConstructionFailedError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


@dataclass(frozen=True)
class ConstructionState:
    """Partial progress of an interrupted FindShortcut run.

    Carried on :class:`~repro.errors.ConstructionFailedError` so the
    Appendix A doubling driver can warm-start the next trial: the parts
    in ``remaining`` are still bad, while every other part's subgraph
    is already frozen inside ``shortcut``.
    """

    remaining: FrozenSet[int]
    shortcut: TreeRestrictedShortcut
    good_history: Tuple[FrozenSet[int], ...]

    def revalidated_for(
        self,
        topology: Topology,
        tree: SpanningTree,
        partition: Partition,
    ) -> "ConstructionState":
        """Re-anchor this state on the given topology/tree/partition.

        A frozen good part is only reusable if its guarantees still
        hold where the warm start is about to run: its members must be
        unchanged and still induce a connected subgraph of
        ``topology``, and every edge of its frozen ``H_i`` must exist
        both in ``topology`` and in ``tree``.  Parts failing any check
        are demoted back into ``remaining`` with an empty subgraph —
        silently reusing them would smuggle invalid shortcuts (e.g.
        over failed edges) past Verification, which only ever re-checks
        *remaining* parts.

        The returned state's shortcut is rebuilt over the *given* tree
        and partition objects so the construction's ``merged_with``
        identity checks hold.  The unchanged-instance case (the
        Appendix A doubling loop) passes every check and degrades to a
        pure re-wrap.  Incompatible partition shapes raise
        :class:`~repro.errors.ShortcutError` — the caller must re-derive
        a state aligned with its partition (see
        :func:`repro.failures.repair.repair_shortcut`).
        """
        from repro.errors import ShortcutError
        from repro.graphs.partitions import _is_connected_subset

        old = self.shortcut
        if old.partition.n != partition.n or old.partition.size != partition.size:
            raise ShortcutError(
                f"warm-start state is over {old.partition.size} parts / "
                f"{old.partition.n} nodes, construction over "
                f"{partition.size} parts / {partition.n} nodes; re-derive "
                f"the state for the new partition instead of reusing it"
            )
        tree_edges = tree.edges
        remaining = set(self.remaining)
        subgraphs: List[FrozenSet[Edge]] = []
        for index in range(partition.size):
            if index in remaining:
                subgraphs.append(frozenset())
                continue
            subgraph = old.subgraph(index)
            valid = all(
                edge in tree_edges and topology.has_edge(*edge)
                for edge in subgraph
            )
            if valid and old.partition.members(index) != partition.members(index):
                valid = False
            if valid and not _is_connected_subset(
                topology, partition.members(index)
            ):
                valid = False
            if valid:
                subgraphs.append(subgraph)
            else:
                remaining.add(index)
                subgraphs.append(frozenset())
        return ConstructionState(
            remaining=frozenset(remaining),
            shortcut=TreeRestrictedShortcut(tree, partition, subgraphs),
            good_history=self.good_history,
        )


@dataclass(frozen=True)
class FindShortcutResult:
    """Outcome of the Theorem 3 construction."""

    shortcut: TreeRestrictedShortcut
    c: int
    b: int
    iterations: int
    good_history: Tuple[FrozenSet[int], ...]
    ledger: RoundLedger

    @property
    def rounds(self) -> int:
        """Total rounds including synchronisation barriers."""
        return self.ledger.total_rounds


def default_iteration_limit(n_parts: int) -> int:
    """Iteration budget before the construction declares failure.

    Theorem 3 halves the unfinished parts per iteration w.h.p., so
    O(log N) iterations suffice; the constant-4 slack makes a w.h.p.
    statement into a practically-never-failing one while still letting
    the doubling driver (Appendix A) detect hopeless parameter guesses
    quickly.
    """
    return 4 * max(1, math.ceil(math.log2(n_parts + 1))) + 4


def find_shortcut(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    c: int,
    b: int,
    *,
    use_fast: bool = True,
    seed: int = 0,
    shared_seed: Optional[int] = None,
    gamma: float = 2.0,
    max_iterations: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    mode: Optional[str] = None,
    warm_start: Optional[ConstructionState] = None,
) -> FindShortcutResult:
    """Construct a T-restricted shortcut given the existential (c, b).

    Parameters
    ----------
    c, b:
        The promised congestion and block parameter: a T-restricted
        shortcut with these parameters must exist (certify one with
        :mod:`repro.core.existence`, use Theorem 1's bound on a
        bounded-genus graph, or let :mod:`repro.core.doubling` search).
    use_fast:
        CoreFast (randomized, O(D log n + c) per iteration) vs CoreSlow
        (deterministic, O(D c) per iteration).
    shared_seed:
        The shared-randomness seed; when ``None`` and CoreFast is used,
        the seed is distributed over the network first (O(D + log n)
        rounds, charged on the ledger).
    mode:
        ``"simulate"`` (default) runs every phase as a CONGEST node
        program; ``"direct"`` computes identical outputs with the array
        kernels of :mod:`repro.core.construct_fast`.  ``None`` uses the
        process-wide default (:func:`~repro.core.construct_fast.using_mode`).
    warm_start:
        A :class:`ConstructionState` from a previous failed run: only
        its ``remaining`` parts are constructed for, on top of its
        already-frozen subgraphs.  Used by the doubling driver so a
        doubled-parameter retry does not redo finished parts, and by
        incremental repair (:mod:`repro.failures.repair`).  The state
        is always revalidated against the given topology/tree/partition
        first (:meth:`ConstructionState.revalidated_for`), so frozen
        parts invalidated by topology changes are reconstructed rather
        than reused.

    Ledger cost model
    -----------------
    In simulate mode every phase record carries the measured rounds and
    messages of its simulation.  In direct mode the ledger is charged
    from the analytic per-phase cost model of
    :mod:`repro.core.construct_fast`: *exact* closed forms for
    ``share-randomness`` (pipelined chunk broadcast: ``D + ceil(log2 n)
    - 1`` rounds), ``core-slow``/``core-fast/sample`` (the Algorithm 1
    streaming recurrence) and ``core-fast/flood`` (a centralized replay
    of the min-first flood), plus the Lemma 3 *upper bound*
    ``1 + 2(6b' + 4)(D + c + 2) + (4b' + 1)`` rounds for each
    ``verification`` with threshold ``b'``; ``termination-check``
    charges ``2 depth(T) + 1`` per iteration in both modes.  The
    differential suite cross-checks the model against the simulated
    engines' actual counts (exact phases to the round, the verification
    bound as a dominating estimate).

    Raises
    ------
    ConstructionFailedError
        If parts remain bad after the iteration budget — the failure
        signal consumed by the Appendix A doubling mechanism.  The
        error carries the iterations consumed and a
        :class:`ConstructionState` snapshot of the frozen progress.
    """
    mode = resolve_mode(mode)
    if ledger is None:
        ledger = RoundLedger(barrier_depth=tree.height)
    if max_iterations is None:
        max_iterations = default_iteration_limit(partition.size)
    if use_fast and shared_seed is None:
        if mode == "direct":
            shared_seed = draw_shared_seed(topology.n, seed)
            rounds, messages = share_randomness_cost(topology.n, tree.height)
            ledger.charge_phase("share-randomness", rounds, messages)
        else:
            shared_seed, _result = share_randomness(
                topology, tree, seed=seed, ledger=ledger
            )

    if warm_start is not None:
        # Never trust a carried state blindly: the topology may have
        # changed under it (edge failures, repair).  Revalidation
        # demotes any frozen part whose guarantees no longer hold.
        warm_start = warm_start.revalidated_for(topology, tree, partition)
        remaining = set(warm_start.remaining)
        accumulated = warm_start.shortcut
    else:
        remaining = set(range(partition.size))
        accumulated = TreeRestrictedShortcut.empty(tree, partition)
    good_history: List[FrozenSet[int]] = []
    iteration = 0
    while remaining:
        if iteration >= max_iterations:
            raise ConstructionFailedError(
                f"FindShortcut(c={c}, b={b}): {len(remaining)} parts still "
                f"bad after {iteration} iterations — parameters too small?",
                iterations=iteration,
                state=ConstructionState(
                    remaining=frozenset(remaining),
                    shortcut=accumulated,
                    good_history=tuple(good_history),
                ),
            )
        iteration += 1
        if use_fast:
            outcome = core_fast(
                topology,
                tree,
                partition,
                c,
                mix(shared_seed, iteration),
                gamma=gamma,
                participating=remaining,
                seed=mix(seed, iteration),
                ledger=ledger,
                mode=mode,
            )
        else:
            outcome = core_slow(
                topology,
                tree,
                partition,
                c,
                participating=remaining,
                seed=mix(seed, iteration),
                ledger=ledger,
                mode=mode,
            )
        verdict = verification(
            topology,
            outcome.shortcut,
            3 * b,
            consider=remaining,
            seed=mix(seed, iteration, 1),
            ledger=ledger,
            mode=mode,
        )
        good = verdict.good_parts
        good_history.append(good)
        # The "all parts good?" global check: one convergecast over T.
        ledger.charge_phase("termination-check", 2 * tree.height + 1)
        if good:
            accumulated = accumulated.merged_with(
                outcome.shortcut.restricted_to(good)
            )
            remaining -= good

    return FindShortcutResult(
        shortcut=accumulated,
        c=c,
        b=b,
        iterations=iteration,
        good_history=tuple(good_history),
        ledger=ledger,
    )
