"""FindShortcut — the main construction (Theorem 3).

Repeat until every part is *good*:

1. run a core subroutine (CoreFast by default, CoreSlow for the
   deterministic variant) on the not-yet-good parts — it produces a
   tentative shortcut with congestion O(c) in which at least half of
   the participating parts have block parameter at most ``3b``;
2. run Verification with threshold ``3b``; freeze the subgraphs of the
   parts that pass and remove them.

Each iteration halves the number of unfinished parts (w.h.p. for
CoreFast, deterministically for CoreSlow), so there are O(log N)
iterations; the frozen subgraphs accumulate congestion O(c log N)
while every part's block parameter is at most ``3b`` — Theorem 3.

The round cost — O(D log n log N + bD log N + bc log N) — is recorded
phase by phase on a :class:`~repro.congest.trace.RoundLedger`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.congest.randomness import mix, share_randomness
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.core_fast import core_fast
from repro.core.core_slow import core_slow
from repro.core.shortcut import TreeRestrictedShortcut
from repro.core.verification import verification
from repro.errors import ConstructionFailedError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


@dataclass(frozen=True)
class FindShortcutResult:
    """Outcome of the Theorem 3 construction."""

    shortcut: TreeRestrictedShortcut
    c: int
    b: int
    iterations: int
    good_history: Tuple[FrozenSet[int], ...]
    ledger: RoundLedger

    @property
    def rounds(self) -> int:
        """Total rounds including synchronisation barriers."""
        return self.ledger.total_rounds


def default_iteration_limit(n_parts: int) -> int:
    """Iteration budget before the construction declares failure.

    Theorem 3 halves the unfinished parts per iteration w.h.p., so
    O(log N) iterations suffice; the constant-4 slack makes a w.h.p.
    statement into a practically-never-failing one while still letting
    the doubling driver (Appendix A) detect hopeless parameter guesses
    quickly.
    """
    return 4 * max(1, math.ceil(math.log2(n_parts + 1))) + 4


def find_shortcut(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    c: int,
    b: int,
    *,
    use_fast: bool = True,
    seed: int = 0,
    shared_seed: Optional[int] = None,
    gamma: float = 2.0,
    max_iterations: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
) -> FindShortcutResult:
    """Construct a T-restricted shortcut given the existential (c, b).

    Parameters
    ----------
    c, b:
        The promised congestion and block parameter: a T-restricted
        shortcut with these parameters must exist (certify one with
        :mod:`repro.core.existence`, use Theorem 1's bound on a
        bounded-genus graph, or let :mod:`repro.core.doubling` search).
    use_fast:
        CoreFast (randomized, O(D log n + c) per iteration) vs CoreSlow
        (deterministic, O(D c) per iteration).
    shared_seed:
        The shared-randomness seed; when ``None`` and CoreFast is used,
        the seed is distributed over the network first (O(D + log n)
        rounds, charged on the ledger).

    Raises
    ------
    ConstructionFailedError
        If parts remain bad after the iteration budget — the failure
        signal consumed by the Appendix A doubling mechanism.
    """
    if ledger is None:
        ledger = RoundLedger(barrier_depth=tree.height)
    if max_iterations is None:
        max_iterations = default_iteration_limit(partition.size)
    if use_fast and shared_seed is None:
        shared_seed, _result = share_randomness(
            topology, tree, seed=seed, ledger=ledger
        )

    remaining = set(range(partition.size))
    accumulated = TreeRestrictedShortcut.empty(tree, partition)
    good_history: List[FrozenSet[int]] = []
    iteration = 0
    while remaining:
        if iteration >= max_iterations:
            raise ConstructionFailedError(
                f"FindShortcut(c={c}, b={b}): {len(remaining)} parts still "
                f"bad after {iteration} iterations — parameters too small?"
            )
        iteration += 1
        if use_fast:
            outcome = core_fast(
                topology,
                tree,
                partition,
                c,
                mix(shared_seed, iteration),
                gamma=gamma,
                participating=remaining,
                seed=mix(seed, iteration),
                ledger=ledger,
            )
        else:
            outcome = core_slow(
                topology,
                tree,
                partition,
                c,
                participating=remaining,
                seed=mix(seed, iteration),
                ledger=ledger,
            )
        verdict = verification(
            topology,
            outcome.shortcut,
            3 * b,
            consider=remaining,
            seed=mix(seed, iteration, 1),
            ledger=ledger,
        )
        good = verdict.good_parts
        good_history.append(good)
        # The "all parts good?" global check: one convergecast over T.
        ledger.charge_phase("termination-check", 2 * tree.height + 1)
        if good:
            accumulated = accumulated.merged_with(
                outcome.shortcut.restricted_to(good)
            )
            remaining -= good

    return FindShortcutResult(
        shortcut=accumulated,
        c=c,
        b=b,
        iterations=iteration,
        good_history=tuple(good_history),
        ledger=ledger,
    )
