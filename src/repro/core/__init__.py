"""The paper's contribution: tree-restricted shortcuts and their construction.

Layout mirrors the paper:

* :mod:`repro.core.shortcut`, :mod:`repro.core.quality` — Definitions
  1-3 and Lemma 1;
* :mod:`repro.core.tree_routing` — Lemma 2 (pipelined subtree routing);
* :mod:`repro.core.partwise`, :mod:`repro.core.verification` —
  Theorem 2 and Lemmas 3/6 (part-parallel primitives);
* :mod:`repro.core.existence` — Theorem 1 (genus bound) and certified
  existential inputs;
* :mod:`repro.core.core_slow`, :mod:`repro.core.core_fast` —
  Algorithms 1 and 2 (Lemmas 7 and 5);
* :mod:`repro.core.find_shortcut` — Theorem 3;
* :mod:`repro.core.doubling` — Appendix A;
* :mod:`repro.core.construct_fast` — the simulation-free direct
  kernels for the whole construction stack (``mode="direct"``);
* :mod:`repro.core.partwise_fast` — the simulation-free backend for
  the Theorem 2 partwise engine (``backend="direct"``).
"""

from repro.core.shortcut import GeneralShortcut, TreeRestrictedShortcut
from repro.core.quality import (
    KERNELS,
    BlockComponent,
    QualityReport,
    block_components,
    block_counts,
    block_parameter,
    congestion,
    dilation,
    get_default_kernel,
    lemma1_bound,
    measure,
    set_default_kernel,
    shortcut_congestion,
    using_kernel,
)
from repro.core import quality_fast
from repro.core.existence import (
    CertifiedPoint,
    best_certified,
    certify_frontier,
    empty_shortcut,
    full_ancestor_shortcut,
    genus_bound,
    greedy_capped_shortcut,
)
from repro.core.tree_routing import (
    SubtreeTask,
    broadcast,
    convergecast,
    make_task,
    task_edge_congestion,
)
from repro.core.partwise import PartwiseEngine
from repro.core.partwise_fast import (
    BACKENDS,
    backend_parameter,
    get_default_backend,
    set_default_backend,
    using_backend,
)
from repro.core.core_slow import CoreOutcome, core_slow, core_slow_reference
from repro.core.core_fast import (
    active_parts,
    core_fast,
    core_fast_reference,
    sampling_parameters,
)
from repro.core.verification import VerificationOutcome, verification
from repro.core.batch import (
    BATCHES,
    PipelineResult,
    batch_parameter,
    core_slow_batch,
    get_default_batch,
    measure_batch,
    run_pipeline,
    set_default_batch,
    using_batch,
    verification_batch,
)
from repro.core.construct_fast import (
    MODES,
    construct_mode_parameter,
    get_default_mode,
    set_default_mode,
    using_mode,
)
from repro.core.find_shortcut import (
    ConstructionState,
    FindShortcutResult,
    default_iteration_limit,
    find_shortcut,
)
from repro.core.doubling import DoublingResult, Trial, find_shortcut_doubling

__all__ = [
    "GeneralShortcut",
    "TreeRestrictedShortcut",
    "KERNELS",
    "BlockComponent",
    "QualityReport",
    "get_default_kernel",
    "set_default_kernel",
    "using_kernel",
    "quality_fast",
    "block_components",
    "block_counts",
    "block_parameter",
    "congestion",
    "dilation",
    "lemma1_bound",
    "measure",
    "shortcut_congestion",
    "CertifiedPoint",
    "best_certified",
    "certify_frontier",
    "empty_shortcut",
    "full_ancestor_shortcut",
    "genus_bound",
    "greedy_capped_shortcut",
    "SubtreeTask",
    "broadcast",
    "convergecast",
    "make_task",
    "task_edge_congestion",
    "PartwiseEngine",
    "BACKENDS",
    "backend_parameter",
    "get_default_backend",
    "set_default_backend",
    "using_backend",
    "CoreOutcome",
    "core_slow",
    "core_slow_reference",
    "active_parts",
    "core_fast",
    "core_fast_reference",
    "sampling_parameters",
    "VerificationOutcome",
    "verification",
    "BATCHES",
    "PipelineResult",
    "batch_parameter",
    "core_slow_batch",
    "get_default_batch",
    "measure_batch",
    "run_pipeline",
    "set_default_batch",
    "using_batch",
    "verification_batch",
    "MODES",
    "construct_mode_parameter",
    "get_default_mode",
    "set_default_mode",
    "using_mode",
    "ConstructionState",
    "FindShortcutResult",
    "default_iteration_limit",
    "find_shortcut",
    "DoublingResult",
    "Trial",
    "find_shortcut_doubling",
]
