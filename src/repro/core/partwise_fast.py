"""Simulation-free backend for the Theorem 2 partwise engine.

The part-parallel primitives of :class:`repro.core.partwise.PartwiseEngine`
(block aggregation, part-internal exchange, leader election, broadcast,
Lemma 3 block counting) are deterministic functions of the instance: no
node program in the stack ever consults its RNG.  This module mirrors —
at the application layer — the engine split of
:mod:`repro.congest.engine` and the construction split of
:mod:`repro.core.construct_fast`:

* ``backend="simulate"`` (default) runs every superstep as a node
  program on the CONGEST simulator — the executable specification;
* ``backend="direct"`` computes the same results as centralized passes
  over the cached CSR/:class:`~repro.graphs.csr.TreeArrays` structures
  and charges the :class:`~repro.congest.trace.RoundLedger` with the
  *exact* rounds and messages the simulated program consumes.

Selection mirrors ``engine=`` / ``kernel=`` / ``mode=``: a ``backend=``
keyword per call site (``PartwiseEngine``, ``exchange_labels``,
``fragment_aggregate``, every app entry point), a process-wide default
(:func:`set_default_backend`), and a scoped override
(:func:`using_backend` / :func:`backend_parameter`).

Equivalence contract
--------------------

Unlike the construction kernels — whose Verification phase is charged
from a Lemma 3 *upper bound* — the direct partwise backend is exact on
the ledger too: every phase record (name, rounds, messages, barrier)
matches the simulated run bit-for-bit, because the primitives replay
the same deterministic dynamics without the engine machinery:

``subtree convergecast / broadcast`` (Lemma 2)
    The pipelined schedule (one send per node per round, root-depth
    priority) has no closed form, so — exactly like the
    ``core-fast/flood`` kernel of :mod:`repro.core.construct_fast` —
    the replay is a centralized per-round event loop over int heaps:
    identical forwarding order, identical rounds, identical messages.

``part exchange`` / ``label exchange``
    One round; messages are the closed form (``Σ deg_P(v)`` over
    payload-carrying nodes, resp. ``2m``).

``fragment flood / tree aggregate`` (the no-shortcut baselines)
    The flood is replayed round by round (improvement-triggered
    re-sends included); the claim/convergecast/broadcast tree pass has
    a closed form: a node ``v`` sends up at round ``2 + height(v)``, so
    one fragment finishes at ``2 + 2·height(root)`` and messages are
    ``3·(covered − #fragments)``.

``bfs-tree`` / ``share-randomness``
    Closed forms (see :func:`repro.congest.bfs.build_bfs_tree_direct`
    and :func:`repro.core.construct_fast.share_randomness_cost`).

The differential suite in ``tests/apps/test_app_equivalence.py``
asserts all of this — outputs *and* ledgers — across the grid, torus,
hub, and Delaunay families; ``tests/properties/test_prop_apps.py``
checks the end-to-end applications against centralized oracles over
random instances in every backend × mode × engine combination.

The Lemma 2/3 superstep cost model
----------------------------------

The replayed rounds always respect the paper's accounting, which the
tests cross-check: one *block step* (intra-block convergecast +
broadcast over all blocks at once) takes at most ``2 (D + c + 2)``
rounds where ``c`` is the per-tree-edge task congestion (Lemma 2 plus
constant start-up), and one *exchange* over part-internal edges takes
exactly 1 round; a Theorem 2 operation with ``b`` supersteps therefore
costs at most ``b (2 (D + c + 2) + 1)`` rounds — the
:func:`superstep_cost_bound` below.
"""

from __future__ import annotations

import functools
import heapq
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.congest.topology import Topology
from repro.core.tree_routing import SubtreeTask, TaskKey, _combine, _task_children
from repro.errors import ShortcutError
from repro.graphs.csr import adjacency_csr, tree_arrays
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

# ----------------------------------------------------------------------
# Backend registry (simulate vs direct), mirroring engines/kernels/modes
# ----------------------------------------------------------------------

BACKENDS: Tuple[str, ...] = ("simulate", "direct")

DEFAULT_BACKEND = "simulate"

_default_backend = DEFAULT_BACKEND


def get_default_backend() -> str:
    """Name of the partwise backend used when none is specified."""
    return _default_backend


def set_default_backend(backend: Optional[str]) -> str:
    """Set the process-wide default backend; returns the previous name."""
    global _default_backend
    previous = _default_backend
    _default_backend = resolve_backend(backend)
    return previous


@contextmanager
def using_backend(backend: Optional[str]) -> Iterator[str]:
    """Temporarily override the default backend (``None`` is a no-op)."""
    if backend is None:
        yield _default_backend
        return
    previous = set_default_backend(backend)
    try:
        yield _default_backend
    finally:
        set_default_backend(previous)


def resolve_backend(backend: Optional[str]) -> str:
    """Validate a backend name (``None`` means the current default)."""
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ShortcutError(
            f"unknown partwise backend {backend!r}; available: {sorted(BACKENDS)}"
        )
    return backend


def backend_parameter(func):
    """Give an entry point a ``backend=`` keyword.

    For the duration of the call the given backend becomes the process
    default, so every partwise engine the function constructs — however
    deeply nested (including the Verification runs inside FindShortcut)
    — uses it.  The application-layer twin of
    :func:`repro.congest.engine.engine_parameter` and
    :func:`repro.core.construct_fast.construct_mode_parameter`.
    """

    @functools.wraps(func)
    def wrapper(*args, backend: Optional[str] = None, **kwargs):
        with using_backend(backend):
            return func(*args, **kwargs)

    return wrapper


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


def superstep_cost_bound(height: int, task_congestion: int, supersteps: int) -> int:
    """Upper bound on the rounds of ``supersteps`` Theorem 2 supersteps.

    One block step is a Lemma 2 convergecast plus broadcast —
    ``<= 2 (D + c + 2)`` rounds with tree depth ``D`` and per-edge task
    congestion ``c`` — and each superstep adds one exchange round.  The
    replayed ledgers are exact; this bound is what the differential
    suite checks them against.
    """
    return supersteps * (2 * (height + task_congestion + 2) + 1)


def bfs_and_shared_randomness(
    topology: Topology,
    seed: int,
    ledger,
    backend: Optional[str] = None,
) -> Tuple[SpanningTree, int]:
    """The BFS-tree + shared-randomness preamble of every application.

    Returns ``(tree, shared_seed)``.  In simulate mode both run as node
    programs; in direct mode the closed-form twins
    (:func:`repro.congest.bfs.build_bfs_tree_direct`,
    :func:`repro.core.construct_fast.share_randomness_cost`) produce
    the identical tree, seed, and ledger charges.  Shared by the MST
    and connectivity drivers so the two backends' ledger-exactness
    contract has a single implementation.
    """
    from repro.congest.bfs import build_bfs_tree, build_bfs_tree_direct
    from repro.congest.randomness import draw_shared_seed, share_randomness
    from repro.core.construct_fast import share_randomness_cost

    if resolve_backend(backend) == "direct":
        tree = build_bfs_tree_direct(topology, 0, ledger=ledger)
        shared_seed = draw_shared_seed(topology.n, seed)
        rounds, messages = share_randomness_cost(topology.n, tree.height)
        ledger.charge_phase("share-randomness", rounds, messages)
    else:
        tree, _bfs_result = build_bfs_tree(topology, 0, seed=seed, ledger=ledger)
        shared_seed, _rand_result = share_randomness(
            topology, tree, seed=seed, ledger=ledger
        )
    return tree, shared_seed


def part_neighbors_cached(
    topology: Topology, partition: Partition
) -> Dict[int, Tuple[int, ...]]:
    """Per-node same-part neighbor tuples, cached per (topology, labels).

    The neighbor-discovery scan of the partwise engine depends only on
    the topology and the partition's label array — not on the shortcut
    — so successive engines over the same fragment partition (every
    Verification iteration inside one FindShortcut run, both engines of
    one Borůvka phase) reuse one scan.  Only the most recent partition's
    scan is retained: accesses are temporally clustered per phase, and
    Borůvka produces a fresh label array every phase, so a per-labels
    map would grow for the topology's lifetime.  The *ledger* charge
    for the discovery round is unaffected: each engine still records it.
    """
    cache = topology._kernels
    entry = cache.get("part_neighbors")
    if entry is not None and entry[0] == partition.labels:
        return entry[1]
    csr = adjacency_csr(topology)
    labels = partition.labels
    indptr, indices = csr.indptr, csr.indices
    neighbors: Dict[int, Tuple[int, ...]] = {}
    for v in topology.nodes:
        part = labels[v]
        if part < 0:
            neighbors[v] = ()
        else:
            neighbors[v] = tuple(
                w for w in indices[indptr[v] : indptr[v + 1]] if labels[w] == part
            )
    cache["part_neighbors"] = (labels, neighbors)
    return neighbors


# ----------------------------------------------------------------------
# Lemma 2 routing replays (exact rounds and messages)
# ----------------------------------------------------------------------


def convergecast_direct(
    tree: SpanningTree,
    tasks: Iterable[SubtreeTask],
    values: Mapping[TaskKey, Mapping[int, int]],
    combine: str = "min",
) -> Tuple[Dict[TaskKey, Optional[int]], int, int]:
    """Centralized replay of
    :class:`~repro.core.tree_routing.SubtreeConvergecastAlgorithm`.

    Returns ``(combined, rounds, messages)`` — the per-task values at
    the task roots and the exact cost a simulated run reports: per
    round every participating node forwards the highest-priority
    (minimum root depth, then task id) completed task to its tree
    parent and re-wakes while more remain.
    """
    parent = tree_arrays(tree).parent
    task_list = list(tasks)
    acc: Dict[Tuple[int, int, int], Optional[int]] = {}
    pending: Dict[Tuple[int, int, int], int] = {}
    root_depth: Dict[TaskKey, int] = {}
    results: Dict[TaskKey, Optional[int]] = {}
    heaps: Dict[int, List[Tuple[int, int, int]]] = {}
    next_arrivals: Dict[int, List[Tuple[int, int, Optional[int]]]] = {}
    next_woken: set = set()
    messages = 0

    for task in task_list:
        tid, root = task.key
        root_depth[task.key] = task.root_depth
        task_values = values.get(task.key, {})
        counts: Dict[int, int] = {}
        for v in task.nodes:
            if v != root:
                counts[parent[v]] = counts.get(parent[v], 0) + 1
        for v in task.nodes:
            acc[(v, tid, root)] = task_values.get(v)
            n_children = counts.get(v, 0)
            pending[(v, tid, root)] = n_children
            if n_children == 0:
                if v == root:
                    results[task.key] = acc[(v, tid, root)]
                else:
                    heapq.heappush(
                        heaps.setdefault(v, []), (task.root_depth, tid, root)
                    )
    # Round 0: one pump per node with a ready task.
    for v, heap in heaps.items():
        if heap:
            _depth, tid, root = heapq.heappop(heap)
            next_arrivals.setdefault(parent[v], []).append(
                (tid, root, acc[(v, tid, root)])
            )
            if heap:
                next_woken.add(v)

    rounds = 0
    r = 0
    while next_arrivals or next_woken:
        r += 1
        arrivals, next_arrivals = next_arrivals, {}
        woken, next_woken = next_woken, set()
        for v, incoming in arrivals.items():
            messages += len(incoming)
            for tid, root, value in incoming:
                slot = (v, tid, root)
                acc[slot] = _combine(combine, acc[slot], value)
                pending[slot] -= 1
                if pending[slot] == 0:
                    if v == root:
                        results[(tid, root)] = acc[slot]
                    else:
                        heapq.heappush(
                            heaps.setdefault(v, []),
                            (root_depth[(tid, root)], tid, root),
                        )
        for v in set(arrivals) | woken:
            heap = heaps.get(v)
            if heap:
                _depth, tid, root = heapq.heappop(heap)
                next_arrivals.setdefault(parent[v], []).append(
                    (tid, root, acc[(v, tid, root)])
                )
                if heap:
                    next_woken.add(v)
        rounds = r

    combined = {task.key: results[task.key] for task in task_list}
    return combined, rounds, messages


def broadcast_direct(
    tree: SpanningTree,
    tasks: Iterable[SubtreeTask],
    root_values: Mapping[TaskKey, int],
) -> Tuple[Dict[TaskKey, Dict[int, int]], int, int]:
    """Centralized replay of
    :class:`~repro.core.tree_routing.SubtreeBroadcastAlgorithm`.

    Returns ``(delivered, rounds, messages)``: per round every node
    forwards, per child edge, the highest-priority pending task value.
    """
    task_list = list(tasks)
    received: Dict[Tuple[int, int, int], int] = {}
    children_of: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
    # node -> child -> heap of (root_depth, tid, root, value)
    queues: Dict[int, Dict[int, List[Tuple[int, int, int, int]]]] = {}
    next_arrivals: Dict[int, List[Tuple[int, int, int, int]]] = {}
    next_woken: set = set()
    messages = 0

    def enqueue(v: int, tid: int, root: int, depth: int, value: int) -> None:
        for child in children_of[(v, tid, root)]:
            heapq.heappush(
                queues.setdefault(v, {}).setdefault(child, []),
                (depth, tid, root, value),
            )

    def pump(v: int) -> None:
        node_queues = queues.get(v)
        if not node_queues:
            return
        more = False
        for child, queue in node_queues.items():
            if queue:
                depth, tid, root, value = heapq.heappop(queue)
                next_arrivals.setdefault(child, []).append(
                    (depth, tid, root, value)
                )
                if queue:
                    more = True
        if more:
            next_woken.add(v)

    depth_of: Dict[TaskKey, int] = {}
    for task in task_list:
        tid, root = task.key
        depth_of[task.key] = task.root_depth
        children = _task_children(tree, task)
        for v in task.nodes:
            children_of[(v, tid, root)] = children[v]
        value = root_values.get(task.key)
        if value is not None:
            received[(root, tid, root)] = value
            enqueue(root, tid, root, task.root_depth, value)
    for v in list(queues):
        pump(v)

    rounds = 0
    r = 0
    while next_arrivals or next_woken:
        r += 1
        arrivals, next_arrivals = next_arrivals, {}
        woken, next_woken = next_woken, set()
        for v, incoming in arrivals.items():
            messages += len(incoming)
            for depth, tid, root, value in incoming:
                slot = (v, tid, root)
                if slot not in received:
                    received[slot] = value
                    enqueue(v, tid, root, depth, value)
        for v in set(arrivals) | woken:
            pump(v)
        rounds = r

    delivered = {
        task.key: {
            v: received[(v,) + task.key]
            for v in task.nodes
            if (v,) + task.key in received
        }
        for task in task_list
    }
    return delivered, rounds, messages


# ----------------------------------------------------------------------
# Single-round exchanges
# ----------------------------------------------------------------------


def exchange_direct(
    nodes: Iterable[int],
    part_neighbors: Mapping[int, Tuple[int, ...]],
    payloads: Mapping[int, Optional[tuple]],
) -> Tuple[Dict[int, List[Tuple[int, tuple]]], int, int]:
    """Direct twin of one :class:`~repro.core.partwise.PartExchangeAlgorithm`
    round: every payload-carrying node sends to all same-part neighbors.

    Returns ``(received, rounds, messages)``; received lists are in
    ascending sender order, exactly as the engine contract delivers.
    """
    received: Dict[int, List[Tuple[int, tuple]]] = {}
    messages = 0
    for v in nodes:
        inbox: List[Tuple[int, tuple]] = []
        for w in part_neighbors.get(v, ()):
            payload = payloads.get(w)
            if payload is not None:
                inbox.append((w, payload))
        messages += len(inbox)
        received[v] = inbox
    return received, (1 if messages else 0), messages


def neighbor_labels_direct(
    topology: Topology, labels: Mapping[int, Optional[int]]
) -> Tuple[Dict[int, Dict[int, Optional[int]]], int, int]:
    """Direct twin of
    :class:`~repro.apps.aggregation.NeighborLabelExchangeAlgorithm`:
    one broadcast round in which every node learns every neighbor's
    label.  Exactly ``2m`` messages in one round.
    """
    csr = adjacency_csr(topology)
    indptr, indices = csr.indptr, csr.indices
    out: Dict[int, Dict[int, Optional[int]]] = {}
    for v in topology.nodes:
        out[v] = {w: labels.get(w) for w in indices[indptr[v] : indptr[v + 1]]}
    messages = 2 * topology.m
    return out, (1 if messages else 0), messages


# ----------------------------------------------------------------------
# Fragment (no-shortcut baseline) replays
# ----------------------------------------------------------------------


def fragment_flood_direct(
    topology: Topology,
    fragment_neighbors: Mapping[int, Tuple[int, ...]],
    values: Mapping[int, Optional[int]],
) -> Tuple[Dict[int, Optional[int]], Dict[int, Optional[int]], int, int]:
    """Centralized replay of
    :class:`~repro.apps.fragment_comm.FragmentFloodAlgorithm`.

    Returns ``(best, parents, rounds, messages)`` with the exact
    improvement-triggered re-send dynamics: a node whose best value
    drops re-broadcasts to every fragment neighbor, and the parent
    pointer is the smallest-id sender of the round's minimal improving
    value — identical to processing arrivals in ascending sender order.
    """
    best: Dict[int, Optional[int]] = {}
    parents: Dict[int, Optional[int]] = {}
    next_arrivals: Dict[int, List[Tuple[int, int]]] = {}
    messages = 0
    for v in topology.nodes:
        best[v] = values.get(v)
        parents[v] = None
        if best[v] is not None:
            for w in fragment_neighbors.get(v, ()):
                next_arrivals.setdefault(w, []).append((v, best[v]))

    rounds = 0
    r = 0
    while next_arrivals:
        r += 1
        arrivals, next_arrivals = next_arrivals, {}
        for v, incoming in arrivals.items():
            messages += len(incoming)
            minimum = min(value for _sender, value in incoming)
            if best[v] is None or minimum < best[v]:
                best[v] = minimum
                parents[v] = min(
                    sender for sender, value in incoming if value == minimum
                )
                for w in fragment_neighbors.get(v, ()):
                    next_arrivals.setdefault(w, []).append((v, minimum))
        rounds = r
    return best, parents, rounds, messages


def fragment_tree_aggregate_direct(
    topology: Topology,
    parents: Mapping[int, Optional[int]],
    values: Mapping[int, Optional[int]],
    combine: str = "min",
) -> Tuple[Dict[int, Optional[int]], int, int]:
    """Closed-form twin of
    :class:`~repro.apps.fragment_comm.FragmentTreeAggregateAlgorithm`.

    The timing is exact: children are claimed in round 1, every node
    learns its child count at the round-2 wake-up, node ``v`` sends up
    at round ``2 + height(v)`` (leaves at 2), the root's result floods
    down one level per round — so one fragment finishes at
    ``2 + 2·height(root)``, the whole phase at the maximum over
    fragments (never below the round-2 wake-up every node takes), and
    messages are exactly ``3·#non-root-members`` (claim + up + down).
    """
    children: Dict[int, List[int]] = {}
    non_roots = 0
    for v in topology.nodes:
        p = parents.get(v)
        if p is not None:
            children.setdefault(p, []).append(v)
            non_roots += 1

    # Bottom-up heights and combines over the parent forest.
    height: Dict[int, int] = {}
    acc: Dict[int, Optional[int]] = {v: values.get(v) for v in topology.nodes}
    order: List[int] = []
    state: List[Tuple[int, bool]] = [
        (v, False) for v in topology.nodes if parents.get(v) is None
    ]
    while state:
        v, expanded = state.pop()
        if expanded:
            order.append(v)
            continue
        state.append((v, True))
        for child in children.get(v, ()):
            state.append((child, False))
    for v in order:  # children before parents
        kids = children.get(v, ())
        height[v] = 1 + max((height[c] for c in kids), default=-1)
        for child in kids:
            acc[v] = _combine(combine, acc[v], acc[child])

    results: Dict[int, Optional[int]] = {}
    rounds = 2  # the unconditional round-2 wake-up of every node
    stack: List[Tuple[int, Optional[int]]] = []
    for v in topology.nodes:
        if parents.get(v) is None:
            if children.get(v):
                rounds = max(rounds, 2 + 2 * height[v])
            stack.append((v, acc[v]))
    while stack:
        v, value = stack.pop()
        results[v] = value
        for child in children.get(v, ()):
            stack.append((child, value))
    return results, rounds, 3 * non_roots
