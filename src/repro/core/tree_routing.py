"""Deterministic routing on families of subtrees (Lemma 2).

Given a depth-``D`` tree ``T`` and a family of subtrees such that every
tree edge lies in at most ``c`` subtrees, Lemma 2 gives a simple
deterministic pipelined schedule performing a convergecast or broadcast
on *all* subtrees in ``O(D + c)`` rounds: when several messages contend
for an edge, forward the one whose subtree root has the smallest depth,
breaking ties by subtree id.

These two node programs are the communication workhorse of the whole
paper: block components of a tree-restricted shortcut are subtrees of
``T``, so every part-parallel primitive (Theorem 2) and the final
routing step of CoreFast reduce to them.

A subtree task is identified on the wire by ``(tid, root)`` — two
O(log n)-bit integers — and every participating node locally knows its
children within the task and the root's depth, matching the paper's
"distributed representation" (Section 4.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import RunResult, Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.errors import ShortcutError
from repro.graphs.spanning_trees import SpanningTree

TaskKey = Tuple[int, int]  # (tid, root)

CC_TOKEN = "cc"
BC_TOKEN = "bc"


@dataclass(frozen=True)
class SubtreeTask:
    """One subtree of ``T`` taking part in a routing operation."""

    tid: int
    root: int
    root_depth: int
    nodes: FrozenSet[int]

    @property
    def key(self) -> TaskKey:
        return (self.tid, self.root)

    @property
    def priority(self) -> Tuple[int, int, int]:
        """Lemma 2 forwarding priority: root depth, then task id."""
        return (self.root_depth, self.tid, self.root)


def make_task(tree: SpanningTree, tid: int, nodes: Iterable[int]) -> SubtreeTask:
    """Validate that ``nodes`` induce a subtree of ``T`` and wrap them.

    The root is the unique minimum-depth node; every other member's
    tree parent must also be a member.
    """
    node_set = frozenset(nodes)
    if not node_set:
        raise ShortcutError("a subtree task needs at least one node")
    root = min(node_set, key=lambda v: (tree.depth(v), v))
    for v in node_set:
        if v != root and tree.parent(v) not in node_set:
            raise ShortcutError(
                f"task {tid}: nodes do not form a connected subtree "
                f"(node {v}'s parent is missing)"
            )
    return SubtreeTask(
        tid=tid, root=root, root_depth=tree.depth(root), nodes=node_set
    )


def task_edge_congestion(tree: SpanningTree, tasks: Iterable[SubtreeTask]) -> int:
    """Max number of tasks sharing one tree edge (Lemma 2's ``c``)."""
    load: Dict[Tuple[int, int], int] = {}
    for task in tasks:
        for v in task.nodes:
            if v == task.root:
                continue
            edge = tree.parent_edge(v)
            load[edge] = load.get(edge, 0) + 1
    return max(load.values()) if load else 0


def _combine(op: str, left: Optional[int], right: Optional[int]) -> Optional[int]:
    if left is None:
        return right
    if right is None:
        return left
    if op == "min":
        return left if left <= right else right
    if op == "max":
        return left if left >= right else right
    if op == "sum":
        return left + right
    raise ShortcutError(f"unknown combine op {op!r}")


class SubtreeConvergecastAlgorithm(NodeAlgorithm):
    """Pipelined convergecast on all subtrees at once (Lemma 2).

    Per-node inputs (installed via ``inputs``):

    * ``tree_parent`` — the node's parent in ``T`` (``None`` at the
      tree root);
    * ``cc_tasks`` — mapping ``(tid, root) -> (root_depth, n_children,
      is_root, value)`` describing the tasks the node participates in
      (``value`` may be ``None`` for relay-only members).

    Outputs: ``cc_results`` — at each task root, the combined value.
    """

    name = "subtree-convergecast"

    def __init__(self, inputs, combine: str):
        super().__init__(inputs)
        self.combine = combine

    def on_start(self, node) -> None:
        state = node.state
        state.cc_acc = {}
        state.cc_pending = {}
        state.cc_results = {}
        state.cc_heap = []
        for key, (root_depth, n_children, is_root, value) in state.cc_tasks.items():
            state.cc_acc[key] = value
            state.cc_pending[key] = n_children
            if n_children == 0:
                self._finish(node, key, root_depth, is_root)
        self._pump(node)

    def on_round(self, node, messages) -> None:
        state = node.state
        for _sender, payload in messages:
            _tag, tid, root, value = payload
            key = (tid, root)
            root_depth, _n_children, is_root, _own = state.cc_tasks[key]
            state.cc_acc[key] = _combine(self.combine, state.cc_acc[key], value)
            state.cc_pending[key] -= 1
            if state.cc_pending[key] == 0:
                self._finish(node, key, root_depth, is_root)
        self._pump(node)

    def _finish(self, node, key: TaskKey, root_depth: int, is_root: bool) -> None:
        state = node.state
        if is_root:
            state.cc_results[key] = state.cc_acc[key]
        else:
            heapq.heappush(state.cc_heap, (root_depth, key[0], key[1]))

    def _pump(self, node) -> None:
        state = node.state
        if state.cc_heap:
            _depth, tid, root = heapq.heappop(state.cc_heap)
            value = state.cc_acc[(tid, root)]
            node.send(state.tree_parent, (CC_TOKEN, tid, root, value))
            if state.cc_heap:
                node.wake_after(1)


class SubtreeBroadcastAlgorithm(NodeAlgorithm):
    """Pipelined broadcast on all subtrees at once (Lemma 2, downward).

    Per-node inputs:

    * ``bc_tasks`` — mapping ``(tid, root) -> (root_depth, children,
      initial_value)`` where ``children`` is the tuple of the node's
      task children and ``initial_value`` is the broadcast value at the
      task root (``None`` elsewhere).

    Outputs: ``bc_received`` — at every participant, the task's value.
    """

    name = "subtree-broadcast"

    def __init__(self, inputs):
        super().__init__(inputs)

    def on_start(self, node) -> None:
        state = node.state
        state.bc_received = {}
        state.bc_queues = {}
        for key, (root_depth, children, value) in state.bc_tasks.items():
            if value is not None:
                state.bc_received[key] = value
                self._enqueue(node, key, root_depth, children, value)
        self._pump(node)

    def on_round(self, node, messages) -> None:
        state = node.state
        for _sender, payload in messages:
            _tag, tid, root, value = payload
            key = (tid, root)
            root_depth, children, _initial = state.bc_tasks[key]
            if key not in state.bc_received:
                state.bc_received[key] = value
                self._enqueue(node, key, root_depth, children, value)
        self._pump(node)

    def _enqueue(self, node, key, root_depth, children, value) -> None:
        for child in children:
            queue = node.state.bc_queues.setdefault(child, [])
            heapq.heappush(queue, (root_depth, key[0], key[1], value))

    def _pump(self, node) -> None:
        more = False
        for child, queue in node.state.bc_queues.items():
            if queue:
                root_depth, tid, root, value = heapq.heappop(queue)
                node.send(child, (BC_TOKEN, tid, root, value))
                if queue:
                    more = True
        if more:
            node.wake_after(1)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def _task_children(
    tree: SpanningTree, task: SubtreeTask
) -> Dict[int, Tuple[int, ...]]:
    children: Dict[int, List[int]] = {v: [] for v in task.nodes}
    for v in task.nodes:
        if v != task.root:
            children[tree.parent(v)].append(v)
    return {v: tuple(sorted(c)) for v, c in children.items()}


def convergecast(
    topology: Topology,
    tree: SpanningTree,
    tasks: Iterable[SubtreeTask],
    values: Mapping[TaskKey, Mapping[int, int]],
    combine: str = "min",
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    phase_name: str = "subtree-convergecast",
    engine: EngineLike = None,
) -> Tuple[Dict[TaskKey, Optional[int]], RunResult]:
    """Run Lemma 2 convergecast over ``tasks``.

    ``values[key][v]`` is node ``v``'s contribution to task ``key``
    (nodes without an entry relay but contribute nothing).  Returns the
    per-task combined values (as computed at the task roots) and the
    simulation result.
    """
    inputs: Dict[int, Dict] = {}
    task_list = list(tasks)
    for task in task_list:
        children = _task_children(tree, task)
        task_values = values.get(task.key, {})
        for v in task.nodes:
            entry = inputs.setdefault(
                v, {"tree_parent": tree.parent(v), "cc_tasks": {}}
            )
            entry["cc_tasks"][task.key] = (
                task.root_depth,
                len(children[v]),
                v == task.root,
                task_values.get(v),
            )
    for v in topology.nodes:
        inputs.setdefault(v, {"tree_parent": tree.parent(v), "cc_tasks": {}})
    algorithm = SubtreeConvergecastAlgorithm(inputs, combine)
    result = Simulator(topology, algorithm, seed=seed, engine=engine).run()
    combined: Dict[TaskKey, Optional[int]] = {}
    for task in task_list:
        combined[task.key] = result.states[task.root].cc_results[task.key]
    if ledger is not None:
        ledger.charge(phase_name, result.rounds, result.messages)
    return combined, result


def broadcast(
    topology: Topology,
    tree: SpanningTree,
    tasks: Iterable[SubtreeTask],
    root_values: Mapping[TaskKey, int],
    *,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    phase_name: str = "subtree-broadcast",
    engine: EngineLike = None,
) -> Tuple[Dict[TaskKey, Dict[int, int]], RunResult]:
    """Run Lemma 2 broadcast over ``tasks``.

    ``root_values[key]`` is injected at the task root and delivered to
    every member.  Returns per-task delivery maps and the simulation
    result.
    """
    inputs: Dict[int, Dict] = {}
    task_list = list(tasks)
    for task in task_list:
        children = _task_children(tree, task)
        for v in task.nodes:
            entry = inputs.setdefault(v, {"bc_tasks": {}})
            entry["bc_tasks"][task.key] = (
                task.root_depth,
                children[v],
                root_values.get(task.key) if v == task.root else None,
            )
    for v in topology.nodes:
        inputs.setdefault(v, {"bc_tasks": {}})
    algorithm = SubtreeBroadcastAlgorithm(inputs)
    result = Simulator(topology, algorithm, seed=seed, engine=engine).run()
    delivered: Dict[TaskKey, Dict[int, int]] = {}
    for task in task_list:
        delivered[task.key] = {
            v: result.states[v].bc_received[task.key] for v in task.nodes
        }
    if ledger is not None:
        ledger.charge(phase_name, result.rounds, result.messages)
    return delivered, result
