"""CoreSlow — Algorithm 1 / Lemma 7 (deterministic, O(D · c) rounds).

Each part tries to claim all tree ancestors of its nodes; an edge that
would be claimed by more than ``2c`` parts is marked *unusable* and
claimed by nobody.  Lemma 7 shows the result has congestion at most
``2c`` and at least half of the parts end up with block parameter at
most ``3b`` — provided a shortcut with congestion ``c`` and block
parameter ``b`` exists at all.

The node program is message-driven: a node waits for a ``done`` marker
from every child, merges the received part-id lists with its own id,
then either declares its parent edge unusable (too many ids) or streams
the ids up one per round — the serial transmission that makes this the
O(D · c) variant.  The centralized twin :func:`core_slow_reference`
computes the identical assignment offline; the two are compared
bit-for-bit in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import RunResult, Simulator
from repro.congest.topology import Edge, Topology
from repro.congest.trace import RoundLedger
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

ID_TOKEN = "id"
DONE_TOKEN = "done"


@dataclass(frozen=True)
class CoreOutcome:
    """Result of one core subroutine invocation."""

    shortcut: TreeRestrictedShortcut
    unusable: FrozenSet[Edge]
    rounds: int
    messages: int


class CoreSlowAlgorithm(NodeAlgorithm):
    """The Algorithm 1 node program.

    Per-node inputs: ``part`` (id or ``None``), ``tree_parent``,
    ``tree_children``, ``cap`` (the ``2c`` threshold).

    Outputs: ``edge_parts`` — sorted tuple of part ids assigned to the
    node's parent edge (``None`` when the edge is unusable or absent),
    and ``unusable`` — whether the parent edge was marked unusable.
    """

    name = "core-slow"

    def on_start(self, node) -> None:
        state = node.state
        state.ids: Set[int] = set()
        if state.part is not None:
            state.ids.add(state.part)
        state.done_children = 0
        state.unusable = False
        state.sealed = False
        state.done_sent = False
        state.edge_parts = None
        state.send_queue: List[int] = []
        if not state.tree_children:
            self._seal(node)
            self._pump(node)

    def on_round(self, node, messages) -> None:
        state = node.state
        for _sender, payload in messages:
            if payload[0] == ID_TOKEN:
                state.ids.add(payload[1])
            elif payload[0] == DONE_TOKEN:
                state.done_children += 1
        if state.done_children == len(state.tree_children) and not state.sealed:
            self._seal(node)
        self._pump(node)

    def _seal(self, node) -> None:
        """All children reported: decide usability and queue the stream."""
        state = node.state
        state.sealed = True
        if state.tree_parent is None:
            return
        if len(state.ids) > state.cap:
            state.unusable = True
        else:
            state.edge_parts = tuple(sorted(state.ids))
            state.send_queue = list(state.edge_parts)

    def _pump(self, node) -> None:
        """Send at most one message up the parent edge this round."""
        state = node.state
        if not state.sealed or state.tree_parent is None or state.done_sent:
            return
        if state.send_queue:
            node.send(state.tree_parent, (ID_TOKEN, state.send_queue.pop(0)))
            node.wake_after(1)  # stream the next id (or the done marker)
        else:
            node.send(state.tree_parent, (DONE_TOKEN,))
            state.done_sent = True


def _make_inputs(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    cap: int,
    participating: Optional[Set[int]],
) -> Dict[int, Dict]:
    inputs = {}
    for v in topology.nodes:
        part = partition.part_of(v)
        if participating is not None and part not in participating:
            part = None
        inputs[v] = {
            "part": part,
            "tree_parent": tree.parent(v),
            "tree_children": tree.children(v),
            "cap": cap,
        }
    return inputs


def _extract_outcome(
    tree: SpanningTree,
    partition: Partition,
    result: RunResult,
) -> CoreOutcome:
    edge_map: Dict[Edge, Tuple[int, ...]] = {}
    unusable: Set[Edge] = set()
    for v in range(tree.n):
        edge = tree.parent_edge(v)
        if edge is None:
            continue
        state = result.states[v]
        if state.unusable:
            unusable.add(edge)
        elif state.edge_parts:
            edge_map[edge] = state.edge_parts
    shortcut = TreeRestrictedShortcut.from_edge_map(tree, partition, edge_map)
    return CoreOutcome(
        shortcut=shortcut,
        unusable=frozenset(unusable),
        rounds=result.rounds,
        messages=result.messages,
    )


def core_slow(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    c: int,
    *,
    participating: Optional[Iterable[int]] = None,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    engine: EngineLike = None,
    mode: Optional[str] = None,
) -> CoreOutcome:
    """Run the CoreSlow subroutine (cap ``2c``).

    ``participating`` restricts the construction to a subset of part
    ids (FindShortcut re-runs the core only on still-bad parts); other
    parts' nodes behave as relays.  ``mode`` selects the execution
    path: ``"simulate"`` runs the node program on the CONGEST engine,
    ``"direct"`` computes the identical outcome — including exact
    rounds and messages — with the array kernels of
    :mod:`repro.core.construct_fast`.
    """
    if c < 1:
        raise ShortcutError("congestion parameter c must be >= 1")
    from repro.core.construct_fast import core_slow_direct, resolve_mode

    if resolve_mode(mode) == "direct":
        return core_slow_direct(
            topology, tree, partition, c,
            participating=participating, ledger=ledger,
        )
    participating_set = set(participating) if participating is not None else None
    inputs = _make_inputs(topology, tree, partition, 2 * c, participating_set)
    result = Simulator(topology, CoreSlowAlgorithm(inputs), seed=seed, engine=engine).run()
    outcome = _extract_outcome(tree, partition, result)
    if ledger is not None:
        ledger.charge_phase("core-slow", outcome.rounds, outcome.messages)
    return outcome


def core_slow_reference(
    tree: SpanningTree,
    partition: Partition,
    c: int,
    participating: Optional[Iterable[int]] = None,
) -> Tuple[Dict[Edge, Tuple[int, ...]], FrozenSet[Edge]]:
    """Centralized twin of :func:`core_slow` (identical output).

    Processes tree edges bottom-up with cap ``2c``; returns the edge
    assignment and the unusable edge set.
    """
    cap = 2 * c
    participating_set = set(participating) if participating is not None else None
    visible: Dict[int, Set[int]] = {}
    edge_map: Dict[Edge, Tuple[int, ...]] = {}
    unusable: Set[Edge] = set()
    for v in tree.order_bottom_up():
        ids: Set[int] = set()
        own = partition.part_of(v)
        if own is not None and (
            participating_set is None or own in participating_set
        ):
            ids.add(own)
        for child in tree.children(v):
            ids |= visible.get(child, set())
        edge = tree.parent_edge(v)
        if edge is None:
            continue
        if len(ids) > cap:
            unusable.add(edge)
            visible[v] = set()
        else:
            if ids:
                edge_map[edge] = tuple(sorted(ids))
            visible[v] = ids
    return edge_map, frozenset(unusable)
