"""The Verification subroutine (Lemmas 3 and 6).

Given a tentative ``T``-restricted shortcut with congestion ``c``, the
subroutine inspects every part's shortcut subgraph in parallel and
finds exactly those whose number of block components is at most a
threshold ``b_limit`` — the *good* parts whose subgraphs FindShortcut
freezes.  Runs in ``O(b_limit (D + c))`` rounds via the supergraph
protocol of :class:`repro.core.partwise.PartwiseEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.partwise import PartwiseEngine
from repro.core.shortcut import TreeRestrictedShortcut


@dataclass(frozen=True)
class VerificationOutcome:
    """Parts that passed the block-count check."""

    good_parts: FrozenSet[int]
    counts: Dict[int, Optional[int]]
    b_limit: int


def verification(
    topology: Topology,
    shortcut: TreeRestrictedShortcut,
    b_limit: int,
    *,
    consider: Optional[Iterable[int]] = None,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    mode: Optional[str] = None,
) -> VerificationOutcome:
    """Find all parts whose shortcut subgraph has <= ``b_limit`` blocks.

    ``consider`` restricts the answer to a subset of part ids (the
    still-unfinished parts during FindShortcut); other parts are
    reported as not-good regardless of their structure.

    Upon completion every node knows its part's verdict — here exposed
    as the returned outcome; per-node knowledge is the ``verdict`` map
    of :meth:`PartwiseEngine.count_blocks`.

    ``mode="direct"`` computes the identical counts with the
    union-find kernel of
    :func:`repro.core.construct_fast.verification_counts_direct` and
    charges the ledger from the Lemma 3 analytic cost model instead of
    simulating the supergraph protocol.
    """
    from repro.core.construct_fast import (
        charge_verification_model,
        resolve_mode,
        verification_counts_direct,
    )

    if resolve_mode(mode) == "direct":
        counts = verification_counts_direct(topology, shortcut, b_limit)
        charge_verification_model(ledger, topology, shortcut, b_limit)
    else:
        engine = PartwiseEngine(topology, shortcut, seed=seed, ledger=ledger)
        counts, _verdict = engine.count_blocks(b_limit)
    considered = (
        set(consider) if consider is not None else set(range(shortcut.size))
    )
    good = frozenset(
        index
        for index, count in counts.items()
        if index in considered and count is not None and count <= b_limit
    )
    return VerificationOutcome(good_parts=good, counts=counts, b_limit=b_limit)
