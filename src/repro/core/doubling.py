"""Parameter-oblivious construction by doubling (Appendix A).

FindShortcut needs upper bounds on ``b`` and ``c``.  Appendix A
observes that the construction *detects its own failure* (parts remain
bad after the iteration budget), enabling a doubling search: start with
small estimates, and on failure double them and retry.  This removes
the knowledge requirement at the cost of an extra ``log(bc)`` factor —
and, as the paper notes, it can find *much better* shortcuts than the
theoretical bound whenever they happen to exist.

Failed trials are not thrown away: a trial freezes every part that
passed Verification before the budget ran out, and the next trial
*warm-starts* from that :class:`~repro.core.find_shortcut.ConstructionState`
— only the still-bad parts are constructed for with the doubled
estimates, and the iterations the failed trial consumed are recorded
on its :class:`Trial`.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.congest.randomness import draw_shared_seed, mix, share_randomness
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.construct_fast import resolve_mode, share_randomness_cost
from repro.core.find_shortcut import (
    ConstructionState,
    FindShortcutResult,
    find_shortcut,
)
from repro.errors import ConstructionFailedError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


@dataclass(frozen=True)
class Trial:
    """One doubling attempt.

    ``iterations`` counts the core/verification iterations the trial
    consumed — the full budget for a failed trial, the actual number
    needed for the successful one.  ``rounds`` and ``messages`` are the
    ledger deltas this rung charged (share-randomness, charged once per
    search before the first rung, is not attributed to any rung), so
    callers can break a ladder's cost down rung by rung; they default
    to 0 for hand-built trials.
    """

    c: int
    b: int
    succeeded: bool
    iterations: int
    rounds: int = 0
    messages: int = 0

    @property
    def signature(self) -> Tuple[int, int, bool, int]:
        """Mode-independent projection ``(c, b, succeeded, iterations)``.

        The cross-mode conformance key: simulate and direct runs agree
        on it exactly, while ``rounds``/``messages`` are per-mode costs
        (measured vs the analytic model) and only match within one
        mode — e.g. between ``batch="loop"`` and ``batch="vector"``.
        """
        return (self.c, self.b, self.succeeded, self.iterations)


@dataclass(frozen=True)
class DoublingResult:
    """Outcome of the Appendix A search."""

    result: FindShortcutResult
    trials: Tuple[Trial, ...]
    ledger: RoundLedger

    @property
    def c(self) -> int:
        return self.result.c

    @property
    def b(self) -> int:
        return self.result.b

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def find_shortcut_doubling(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    *,
    c_start: int = 1,
    b_start: int = 1,
    use_fast: bool = True,
    seed: int = 0,
    shared_seed: Optional[int] = None,
    gamma: float = 2.0,
    max_trials: int = 64,
    ledger: Optional[RoundLedger] = None,
    mode: Optional[str] = None,
    warm_start: bool = True,
    initial_state: Optional[ConstructionState] = None,
) -> DoublingResult:
    """Construct a shortcut with no prior knowledge of (c, b).

    Doubles both parameter estimates on every failed trial.  The search
    always terminates: once ``2c`` exceeds the number of parts no edge
    is ever unusable, every part receives its full-ancestor subgraph
    (one block), and the first iteration succeeds.

    With ``warm_start`` (the default) each failed trial's frozen good
    parts carry forward: the doubled retry only constructs for the
    parts that are still bad.  ``warm_start=False`` restores the
    restart-from-scratch behaviour for comparisons.  ``mode`` selects
    simulate vs direct execution exactly as in
    :func:`~repro.core.find_shortcut.find_shortcut`.

    ``initial_state`` seeds the *first* trial with an externally built
    :class:`~repro.core.find_shortcut.ConstructionState` — the
    incremental-repair entry point (:mod:`repro.failures.repair`): parts
    untouched by an edge-failure set stay frozen and only the broken
    ones are constructed for.  Like every warm start it is revalidated
    against the actual topology/tree/partition before use.
    """
    mode = resolve_mode(mode)
    if ledger is None:
        ledger = RoundLedger(barrier_depth=tree.height)
    if use_fast and shared_seed is None:
        if mode == "direct":
            shared_seed = draw_shared_seed(topology.n, seed)
            rounds, messages = share_randomness_cost(topology.n, tree.height)
            ledger.charge_phase("share-randomness", rounds, messages)
        else:
            shared_seed, _result = share_randomness(
                topology, tree, seed=seed, ledger=ledger
            )
    trials: List[Trial] = []
    carried: Optional[ConstructionState] = initial_state
    c, b = max(1, c_start), max(1, b_start)
    # A tight per-trial budget: the halving argument needs ~log2 N
    # iterations when the estimates are adequate, so a trial that
    # exceeds log2 N + 2 is declared failed and the estimates double.
    trial_budget = max(3, math.ceil(math.log2(partition.size + 1)) + 2)
    for trial_index in range(max_trials):
        rounds_before = ledger.total_rounds
        messages_before = ledger.total_messages
        try:
            result = find_shortcut(
                topology,
                tree,
                partition,
                c,
                b,
                use_fast=use_fast,
                seed=mix(seed, 1000 + trial_index),
                shared_seed=shared_seed,
                gamma=gamma,
                max_iterations=trial_budget,
                ledger=ledger,
                mode=mode,
                warm_start=carried,
            )
        except ConstructionFailedError as error:
            trials.append(
                Trial(
                    c=c,
                    b=b,
                    succeeded=False,
                    iterations=error.iterations,
                    rounds=ledger.total_rounds - rounds_before,
                    messages=ledger.total_messages - messages_before,
                )
            )
            if warm_start and error.state is not None:
                carried = error.state
            c *= 2
            b *= 2
            continue
        trials.append(
            Trial(
                c=c,
                b=b,
                succeeded=True,
                iterations=result.iterations,
                rounds=ledger.total_rounds - rounds_before,
                messages=ledger.total_messages - messages_before,
            )
        )
        return DoublingResult(result=result, trials=tuple(trials), ledger=ledger)
    raise ConstructionFailedError(
        f"doubling search failed after {max_trials} trials "
        f"(last estimates c={c // 2}, b={b // 2})"
    )
