"""Direct construction kernels — the simulation-free Theorem 3 stack.

The FindShortcut pipeline (CoreFast/CoreSlow → Verification → freeze,
looped O(log N) times, wrapped by the Appendix A doubling search) is a
deterministic function of ``(topology, tree, partition, seeds)``: every
simulated phase computes a quantity that a centralized bottom-up pass
over the cached CSR/Euler-tour arrays (:mod:`repro.graphs.csr`) can
reproduce bit-for-bit.  This module mirrors — one layer up — the
engine split of :mod:`repro.congest.engine` and the quality-kernel
split of :mod:`repro.core.quality_fast`:

* ``mode="simulate"`` (default) runs the node programs on the CONGEST
  simulator — the executable specification;
* ``mode="direct"`` computes the same outputs at array speed and
  charges the :class:`~repro.congest.trace.RoundLedger` from the
  analytic cost model below.

Selection is threaded through :func:`~repro.core.find_shortcut.find_shortcut`,
:func:`~repro.core.doubling.find_shortcut_doubling`,
:func:`~repro.core.verification.verification`,
:func:`~repro.core.core_slow.core_slow` and
:func:`~repro.core.core_fast.core_fast` exactly like ``engine=`` and
``kernel=``: a ``mode=`` keyword per call site, a process-wide default
(:func:`set_default_mode`), and a scoped override (:func:`using_mode`).

Equivalence contract
--------------------

Direct mode reproduces the simulated pipeline *bit-for-bit* on every
combinatorial output: shortcut edge maps, unusable edge sets,
``good_history``, iteration counts, verification count maps, and the
doubling ``trials`` tuple.  The differential suite in
``tests/core/test_construct_equivalence.py`` enforces this across the
planar, torus, hub, and Delaunay families, exactly as the
engine-equivalence suite licenses the batched engine.

The analytic round ledger
-------------------------

Direct mode charges the ledger per phase from a documented cost model,
cross-checked in the same differential suite against the simulated
engines' actual round/message counts:

``share-randomness``
    Exact.  Pipelining ``k = max(1, ceil(log2 n))`` chunks down a
    depth-``D`` tree delivers the last chunk at round ``D + k - 1``;
    every non-root node receives each chunk once (``k(n-1)``
    messages).

``core-slow`` / ``core-fast/sample``
    Exact.  The streaming recurrence of Algorithm 1 is closed-form:
    a node seals one round after the last child's ``done`` marker
    (``S(v) = max_child(done(child) + 1)``, 0 at leaves), streams its
    ``Q(v)`` ids (0 when the edge is unusable), and sends ``done`` at
    ``done(v) = S(v) + Q(v)``.  Total rounds are the root's last
    ``done`` delivery; messages are ``sum(Q(v) + 1)`` over non-root
    nodes.

``core-fast/flood``
    Exact.  The min-first flood of Algorithm 2 steps 3–5 has no closed
    form (forwarding order depends on arrival order), so the kernel
    replays it as a centralized per-round event loop over int heaps —
    identical dynamics, none of the engine machinery.

``verification``
    Analytic upper bound (the Lemma 3 accounting).  One run of the
    supergraph protocol is ``A = 6·b' + 4`` block aggregates (each one
    convergecast + one broadcast, Lemma 2: ``<= D + c + 2`` rounds and
    ``<= Σ|H_i|`` messages each), ``X = 4·b' + 1`` one-round exchanges
    (``<=`` the part-internal directed edge count in messages), plus
    one neighbor-discovery round (``2m`` messages):

    ``rounds <= 1 + 2A(D + c + 2) + X``

    where ``c`` is the tentative shortcut's edge congestion.  The
    differential suite asserts the bound dominates the simulated
    totals on every family while the exact phases match to the round.

``termination-check``
    Identical in both modes: one convergecast/broadcast barrier over
    ``T``, ``2·depth(T) + 1`` rounds per iteration.

Everything here is plain Python over flat arrays — the same trade the
batched engine and the quality kernels make.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.congest.randomness import seed_chunk_count
from repro.congest.topology import Edge, Topology
from repro.congest.trace import RoundLedger
from repro.core.core_slow import CoreOutcome
from repro.core.quality_fast import _find
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.csr import adjacency_csr, tree_arrays
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

# ----------------------------------------------------------------------
# Mode registry (simulate vs direct), mirroring engines and kernels
# ----------------------------------------------------------------------

MODES: Tuple[str, ...] = ("simulate", "direct")

DEFAULT_MODE = "simulate"

_default_mode = DEFAULT_MODE


def get_default_mode() -> str:
    """Name of the construction mode used when none is specified."""
    return _default_mode


def set_default_mode(mode: Optional[str]) -> str:
    """Set the process-wide default mode; returns the previous name."""
    global _default_mode
    previous = _default_mode
    _default_mode = resolve_mode(mode)
    return previous


@contextmanager
def using_mode(mode: Optional[str]) -> Iterator[str]:
    """Temporarily override the default mode (``None`` is a no-op)."""
    if mode is None:
        yield _default_mode
        return
    previous = set_default_mode(mode)
    try:
        yield _default_mode
    finally:
        set_default_mode(previous)


def resolve_mode(mode: Optional[str]) -> str:
    """Validate a mode name (``None`` means the current default)."""
    if mode is None:
        return _default_mode
    if mode not in MODES:
        raise ShortcutError(
            f"unknown construction mode {mode!r}; available: {sorted(MODES)}"
        )
    return mode


def construct_mode_parameter(func):
    """Give an entry point a ``construct_mode=`` keyword.

    For the duration of the call the given mode becomes the process
    default, so every construction the function runs — however deeply
    nested — uses it.  The decorated twin of
    :func:`repro.congest.engine.engine_parameter`.
    """
    import functools

    @functools.wraps(func)
    def wrapper(*args, construct_mode: Optional[str] = None, **kwargs):
        with using_mode(construct_mode):
            return func(*args, **kwargs)

    return wrapper


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


def share_randomness_cost(n: int, height: int) -> Tuple[int, int]:
    """Exact (rounds, messages) of the shared-seed broadcast."""
    chunks = seed_chunk_count(n)
    if n <= 1:
        return 0, 0
    return height + chunks - 1, chunks * (n - 1)


def verification_cost(
    b_limit: int,
    height: int,
    task_congestion: int,
    edge_slots: int,
    part_edges: int,
    m: int,
) -> Tuple[int, int]:
    """Modeled (rounds, messages) upper bound of one Verification run.

    ``task_congestion`` is the tentative shortcut's edge congestion
    (blocks per tree edge), ``edge_slots`` its total assigned edge
    slots ``Σ|H_i|``, ``part_edges`` the directed part-internal edge
    count, ``m`` the topology's edge count.  See the module docstring
    for the derivation.
    """
    if b_limit < 1:
        return 1, 2 * m
    aggregates = 6 * b_limit + 4
    exchanges = 4 * b_limit + 1
    rounds = 1 + aggregates * 2 * (height + task_congestion + 2) + exchanges
    messages = 2 * m + aggregates * 2 * edge_slots + exchanges * part_edges
    return rounds, messages


def part_internal_edges(topology: Topology, partition: Partition) -> int:
    """Directed edges with both endpoints in the same part.

    The per-instance constant feeding the exchange term of
    :func:`verification_cost`; read off the same-part neighbor scan of
    :func:`repro.core.partwise_fast.part_neighbors_cached` (one cached
    scan per (topology, labels) serves both layers).
    """
    from repro.core.partwise_fast import part_neighbors_cached

    neighbors = part_neighbors_cached(topology, partition)
    return sum(len(same_part) for same_part in neighbors.values())


# ----------------------------------------------------------------------
# Upward streaming sweep (CoreSlow / CoreFast Phase A)
# ----------------------------------------------------------------------


def _upward_sweep(
    tree: SpanningTree,
    own: List[Optional[int]],
    cap: int,
) -> Tuple[Dict[Edge, Tuple[int, ...]], Set[Edge], List[bool], int, int]:
    """One Algorithm 1 sweep: bottom-up id counting with a cap.

    ``own[v]`` is the id node ``v`` injects (``None`` to relay only).
    Returns ``(edge_map, unusable_edges, unusable_by_node, rounds,
    messages)`` where rounds/messages are the *exact* cost of the
    simulated streaming program (see the module docstring's recurrence).
    """
    arrays = tree_arrays(tree)
    parent = arrays.parent
    n = arrays.n
    visible: List[Optional[Set[int]]] = [None] * n
    done: List[int] = [0] * n
    seal: List[int] = [0] * n
    unusable_by_node = [False] * n
    edge_map: Dict[Edge, Tuple[int, ...]] = {}
    unusable: Set[Edge] = set()
    messages = 0

    for v in arrays.bottom_up():
        ids: Set[int] = set()
        if own[v] is not None:
            ids.add(own[v])
        s = 0
        for child in tree.children(v):
            child_visible = visible[child]
            if child_visible:
                ids |= child_visible
            visible[child] = None  # free as we go
            arrival = done[child] + 1
            if arrival > s:
                s = arrival
        seal[v] = s
        if parent[v] < 0:
            continue
        if len(ids) > cap:
            unusable_by_node[v] = True
            unusable.add(tree.parent_edge(v))
            visible[v] = set()
            q = 0
        else:
            q = len(ids)
            visible[v] = ids
            if ids:
                edge_map[tree.parent_edge(v)] = tuple(sorted(ids))
        done[v] = s + q
        messages += q + 1  # the streamed ids plus the done marker

    root_children = tree.children(tree.root)
    rounds = max((done[c] + 1 for c in root_children), default=0)
    return edge_map, unusable, unusable_by_node, rounds, messages


def core_slow_direct(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    c: int,
    *,
    participating: Optional[Iterable[int]] = None,
    ledger: Optional[RoundLedger] = None,
) -> CoreOutcome:
    """Direct twin of :func:`repro.core.core_slow.core_slow`.

    Identical outputs *and* identical rounds/messages: the streaming
    recurrence is exact, so the ledger entry matches what the simulated
    program would have charged.
    """
    if c < 1:
        raise ShortcutError("congestion parameter c must be >= 1")
    participating_set = set(participating) if participating is not None else None
    labels = partition.labels
    own: List[Optional[int]] = [None] * topology.n
    for v in range(topology.n):
        part = labels[v]
        if part >= 0 and (participating_set is None or part in participating_set):
            own[v] = part
    edge_map, unusable, _by_node, rounds, messages = _upward_sweep(
        tree, own, 2 * c
    )
    shortcut = TreeRestrictedShortcut.from_edge_map(tree, partition, edge_map)
    if ledger is not None:
        ledger.charge_phase("core-slow", rounds, messages)
    return CoreOutcome(
        shortcut=shortcut,
        unusable=frozenset(unusable),
        rounds=rounds,
        messages=messages,
    )


# ----------------------------------------------------------------------
# Min-first flood (CoreFast Phase B)
# ----------------------------------------------------------------------


def _flood_up(
    tree: SpanningTree,
    own: List[Optional[int]],
    usable: List[bool],
) -> Tuple[List[Set[int]], int, int]:
    """Centralized replay of :class:`~repro.core.core_fast.FloodUpAlgorithm`.

    ``usable[v]`` says whether ``v`` may forward over its parent edge.
    Returns ``(q_ids per node, rounds, messages)`` — the exact values a
    simulated run produces: per round every forwarding node sends its
    smallest not-yet-forwarded id and re-wakes while more remain.
    """
    arrays = tree_arrays(tree)
    parent = arrays.parent
    n = arrays.n
    q_ids: List[Set[int]] = [set() for _ in range(n)]
    heaps: List[List[int]] = [[] for _ in range(n)]
    messages = 0

    # Round 0 (on_start): inject own ids and pump once.
    next_arrivals: Dict[int, List[int]] = {}
    next_woken: Set[int] = set()
    for v in range(n):
        part = own[v]
        if part is None:
            continue
        q_ids[v].add(part)
        if usable[v]:
            # The only pending id; forwarded immediately, no wake-up.
            next_arrivals.setdefault(parent[v], []).append(part)
            messages += 1

    rounds = 0
    current_round = 0
    while next_arrivals or next_woken:
        current_round += 1
        arrivals, next_arrivals = next_arrivals, {}
        woken, next_woken = next_woken, set()
        active = woken.union(arrivals)
        for v in active:
            pending = heaps[v]
            seen = q_ids[v]
            if v in arrivals:
                if usable[v]:
                    for incoming in arrivals[v]:
                        if incoming not in seen:
                            seen.add(incoming)
                            heapq.heappush(pending, incoming)
                else:
                    seen.update(arrivals[v])
            if usable[v] and pending:
                smallest = heapq.heappop(pending)
                next_arrivals.setdefault(parent[v], []).append(smallest)
                messages += 1
                if pending:
                    next_woken.add(v)
        rounds = current_round
    return q_ids, rounds, messages


def core_fast_direct(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    c: int,
    shared_seed: int,
    *,
    gamma: float = 2.0,
    participating: Optional[Iterable[int]] = None,
    ledger: Optional[RoundLedger] = None,
) -> CoreOutcome:
    """Direct twin of :func:`repro.core.core_fast.core_fast`.

    Phase A is the sampled upward sweep (exact recurrence), Phase B the
    centralized flood replay; outputs, rounds, and messages all match
    the simulated run bit-for-bit.
    """
    from repro.core.core_fast import active_parts, sampling_parameters

    p, tau = sampling_parameters(topology.n, c, gamma)
    participating_set = (
        set(participating) if participating is not None else set(range(partition.size))
    )
    active = active_parts(partition, shared_seed, p) & participating_set
    labels = partition.labels
    n = topology.n

    own_active: List[Optional[int]] = [None] * n
    own_all: List[Optional[int]] = [None] * n
    for v in range(n):
        part = labels[v]
        if part < 0:
            continue
        if part in active:
            own_active[v] = part
        if part in participating_set:
            own_all[v] = part
    _map_a, unusable, unusable_by_node, rounds_a, messages_a = _upward_sweep(
        tree, own_active, tau - 1
    )

    arrays = tree_arrays(tree)
    usable = [
        arrays.parent[v] >= 0 and not unusable_by_node[v] for v in range(n)
    ]
    q_ids, rounds_b, messages_b = _flood_up(tree, own_all, usable)

    edge_map: Dict[Edge, Tuple[int, ...]] = {}
    for v in range(n):
        if not usable[v]:
            continue
        ids = q_ids[v]
        if ids:
            edge_map[tree.parent_edge(v)] = tuple(sorted(ids))
    shortcut = TreeRestrictedShortcut.from_edge_map(tree, partition, edge_map)
    if ledger is not None:
        ledger.charge_phase("core-fast/sample", rounds_a, messages_a)
        ledger.charge_phase("core-fast/flood", rounds_b, messages_b)
    return CoreOutcome(
        shortcut=shortcut,
        unusable=frozenset(unusable),
        rounds=rounds_a + rounds_b,
        messages=messages_a + messages_b,
    )


# ----------------------------------------------------------------------
# Verification (Lemma 3) — union-find block/component counting
# ----------------------------------------------------------------------


def verification_counts_direct(
    topology: Topology,
    shortcut: TreeRestrictedShortcut,
    b_limit: int,
) -> Dict[int, Optional[int]]:
    """Direct twin of :meth:`~repro.core.partwise.PartwiseEngine.count_blocks`.

    Reproduces the simulated protocol's per-part answer exactly: a part
    whose communication subgraph ``G[P_i] + H_i`` splits into several
    components gets each component's block count delivered to that
    component's members only (the supergraph protocol cannot bridge
    components), and a component with more than ``b_limit`` blocks
    withholds its verdict — both collapse to the same reduction the
    simulated engine applies over per-member verdicts.
    """
    partition = shortcut.partition
    if b_limit < 1:
        return {index: None for index in range(partition.size)}
    csr = adjacency_csr(topology)
    labels = partition.labels
    indptr, indices = csr.indptr, csr.indices
    block_parent = list(range(partition.n))
    comp_parent = list(range(partition.n))
    per_part: Dict[int, Optional[int]] = {}

    for index in range(partition.size):
        members = partition.members(index)
        touched: List[int] = []
        # Block structure: components of (V, H_i).
        for u, v in shortcut.subgraph(index):
            touched.append(u)
            touched.append(v)
            ru, rv = _find(block_parent, u), _find(block_parent, v)
            if ru != rv:
                block_parent[ru] = rv
        # Communication components: part-internal edges + co-blocked
        # members (a block's members are one supernode).
        block_rep: Dict[int, int] = {}
        for v in members:
            for w in indices[indptr[v] : indptr[v + 1]]:
                if labels[w] == index and w > v:
                    ru, rv = _find(comp_parent, v), _find(comp_parent, w)
                    if ru != rv:
                        comp_parent[ru] = rv
            root = _find(block_parent, v)
            rep = block_rep.get(root)
            if rep is None:
                block_rep[root] = v
            else:
                ru, rv = _find(comp_parent, rep), _find(comp_parent, v)
                if ru != rv:
                    comp_parent[ru] = rv
        # Count distinct blocks per component.
        comp_blocks: Dict[int, Set[int]] = {}
        for v in members:
            comp_blocks.setdefault(_find(comp_parent, v), set()).add(
                _find(block_parent, v)
            )
        verdict: Dict[int, Optional[int]] = {}
        for v in members:
            count = len(comp_blocks[_find(comp_parent, v)])
            verdict[v] = count if count <= b_limit else None
        # The exact reduction the simulated engine applies.
        member_verdicts = {verdict.get(v) for v in members}
        if None in member_verdicts or not member_verdicts:
            per_part[index] = None
        else:
            per_part[index] = member_verdicts.pop()
        # Reset the shared arrays (writes only happen at touched
        # entries and at members, as in quality_fast.block_counts).
        for v in touched:
            block_parent[v] = v
        for v in members:
            block_parent[v] = v
            comp_parent[v] = v
    return per_part


def charge_verification_terms(
    ledger: Optional[RoundLedger],
    b_limit: int,
    height: int,
    task_congestion: int,
    edge_slots: int,
    part_edges: int,
    m: int,
) -> None:
    """Charge :func:`verification_cost` from precomputed terms.

    Split out of :func:`charge_verification_model` so array-native
    callers (the batch ladder) can charge the identical bound without
    materialising a tentative shortcut object per iteration.
    """
    if ledger is None:
        return
    rounds, messages = verification_cost(
        b_limit, height, task_congestion, edge_slots, part_edges, m
    )
    ledger.charge("verification", rounds, messages)


def charge_verification_model(
    ledger: Optional[RoundLedger],
    topology: Topology,
    shortcut: TreeRestrictedShortcut,
    b_limit: int,
) -> None:
    """Charge the Lemma 3 cost-model bound for one Verification run."""
    if ledger is None:
        return
    from repro.core.quality_fast import shortcut_congestion

    edge_slots = sum(len(subgraph) for subgraph in shortcut.subgraphs)
    charge_verification_terms(
        ledger,
        b_limit,
        shortcut.tree.height,
        shortcut_congestion(shortcut),
        edge_slots,
        part_internal_edges(topology, shortcut.partition),
        topology.m,
    )
