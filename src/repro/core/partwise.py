"""Part-parallel primitives on a tree-restricted shortcut.

Implements Theorem 2 and Lemma 3: leader election, convergecast,
broadcast, and block counting *for all parts in parallel*, each in
``O(b (D + c))`` rounds.

The engine follows the paper's supergraph view: contract every block
component of ``H_i`` into a supernode; ``G[P_i]``'s connectivity makes
the supergraph connected, with at most ``b`` supernodes.  One
**superstep** is

1. an intra-block convergecast + broadcast (Lemma 2 routing over all
   blocks of all parts at once — ``O(D + c)`` rounds), and
2. one **exchange** round over part-internal edges (``G[P_i]``).

Every higher-level operation is a fixed number of supersteps with
purely node-local state updates between them, so the round accounting
(recorded on the ledger) matches the paper's analysis exactly while the
information flow stays faithful to the CONGEST model: a node only ever
uses values it received through simulated messages or could derive
locally.

The engine runs on one of two *backends* (see
:mod:`repro.core.partwise_fast`): ``backend="simulate"`` (default)
executes every superstep as a node program on the CONGEST simulator,
``backend="direct"`` replays the identical deterministic dynamics as
centralized array passes — bit-for-bit equal results *and* ledger
charges, at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import EngineLike
from repro.congest.simulator import Simulator
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.quality import BlockComponent
from repro.core.quality_fast import block_components
from repro.core.shortcut import TreeRestrictedShortcut
from repro.core.tree_routing import (
    SubtreeTask,
    broadcast as subtree_broadcast,
    convergecast as subtree_convergecast,
    make_task,
)
from repro.graphs.spanning_trees import SpanningTree

Values = Dict[int, Optional[int]]

EXCHANGE_TOKEN = "x"


class PartExchangeAlgorithm(NodeAlgorithm):
    """One round of message exchange over part-internal edges.

    Per-node inputs: ``part_neighbors`` (neighbors in the same part)
    and ``payload`` (a flat tuple of small ints, or ``None`` to stay
    silent).  Outputs: ``received`` — list of ``(sender, payload)``.
    """

    name = "part-exchange"

    def on_start(self, node) -> None:
        node.state.received = []
        if node.state.payload is not None:
            for neighbor in node.state.part_neighbors:
                node.send(neighbor, (EXCHANGE_TOKEN,) + node.state.payload)

    def on_round(self, node, messages) -> None:
        for sender, payload in messages:
            node.state.received.append((sender, payload[1:]))


class PartwiseEngine:
    """Runs Theorem 2 / Lemma 3 operations over one shortcut.

    Parameters
    ----------
    topology, tree, partition:
        The instance.  ``partition`` is taken from the shortcut.
    shortcut:
        The tree-restricted shortcut to route on.
    seed:
        Simulation seed.
    ledger:
        Optional ledger accumulating round costs (one entry per
        simulated phase).
    backend:
        ``"simulate"`` runs every superstep on the CONGEST simulator;
        ``"direct"`` computes identical results (and identical ledger
        charges) with the replay kernels of
        :mod:`repro.core.partwise_fast`.  ``None`` uses the
        process-wide default
        (:func:`~repro.core.partwise_fast.using_backend`).
    """

    def __init__(
        self,
        topology: Topology,
        shortcut: TreeRestrictedShortcut,
        *,
        seed: int = 0,
        ledger: Optional[RoundLedger] = None,
        engine: EngineLike = None,
        backend: Optional[str] = None,
    ) -> None:
        from repro.core.partwise_fast import resolve_backend

        self.topology = topology
        self.sim_engine = engine
        self.backend = resolve_backend(backend)
        self.tree: SpanningTree = shortcut.tree
        self.partition = shortcut.partition
        self.shortcut = shortcut
        self.seed = seed
        self.ledger = ledger if ledger is not None else RoundLedger()
        self._step = 0

        # Block structure.  Distributively this is local knowledge: a
        # node knows which parts use its parent edge (the construction
        # outputs) plus the block-root depth from the paper's
        # "distributed representation" (Section 4.1).
        self.blocks: List[BlockComponent] = []
        self.block_of: Dict[int, BlockComponent] = {}  # Pi member -> its block
        for index in range(self.partition.size):
            for block in block_components(shortcut, index):
                self.blocks.append(block)
                for v in block.nodes & self.partition.members(index):
                    self.block_of[v] = block
        self.tasks: Dict[Tuple[int, int], SubtreeTask] = {
            (blk.part, blk.root): make_task(self.tree, blk.part, blk.nodes)
            for blk in self.blocks
        }
        self.max_blocks = max(
            (sum(1 for b in self.blocks if b.part == i) for i in range(self.partition.size)),
            default=0,
        )

        # Part-internal neighborhood (one round of neighbor discovery,
        # charged up front).  The scan depends only on (topology,
        # labels), so it is computed once per fragment partition and
        # shared by every engine over it — the round itself is still
        # charged per engine, as each would pay it distributively.
        from repro.core.partwise_fast import part_neighbors_cached

        self.part_neighbors: Dict[int, Tuple[int, ...]] = part_neighbors_cached(
            topology, self.partition
        )
        self.ledger.charge("partwise/neighbor-discovery", 1, 2 * topology.m)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def block_aggregate(self, values: Values, combine: str = "min") -> Values:
        """One intra-block convergecast + broadcast (<= 2(D + c) rounds).

        ``values[v]`` is the contribution of part member ``v`` (``None``
        contributes nothing).  Returns, for every part member, the
        combined value over its block; ``None`` for nodes outside all
        parts.
        """
        task_values: Dict[Tuple[int, int], Dict[int, int]] = {}
        for v, block in self.block_of.items():
            value = values.get(v)
            if value is not None:
                task_values.setdefault((block.part, block.root), {})[v] = value
        self._step += 1
        if self.backend == "direct":
            from repro.core.partwise_fast import convergecast_direct

            combined, rounds, messages = convergecast_direct(
                self.tree, self.tasks.values(), task_values, combine
            )
            self.ledger.charge(
                f"partwise/convergecast#{self._step}", rounds, messages
            )
        else:
            combined, _cc_result = subtree_convergecast(
                self.topology,
                self.tree,
                self.tasks.values(),
                task_values,
                combine,
                seed=self.seed + self._step,
                ledger=self.ledger,
                phase_name=f"partwise/convergecast#{self._step}",
                engine=self.sim_engine,
            )
        root_values = {key: val for key, val in combined.items() if val is not None}
        self._step += 1
        if self.backend == "direct":
            from repro.core.partwise_fast import broadcast_direct

            delivered, rounds, messages = broadcast_direct(
                self.tree, [self.tasks[key] for key in root_values], root_values
            )
            self.ledger.charge(
                f"partwise/broadcast#{self._step}", rounds, messages
            )
        else:
            delivered, _bc_result = subtree_broadcast(
                self.topology,
                self.tree,
                [self.tasks[key] for key in root_values],
                root_values,
                seed=self.seed + self._step,
                ledger=self.ledger,
                phase_name=f"partwise/broadcast#{self._step}",
                engine=self.sim_engine,
            )
        out: Values = {}
        for v, block in self.block_of.items():
            out[v] = delivered.get((block.part, block.root), {}).get(v)
        return out

    def exchange(self, payloads: Dict[int, Optional[tuple]]) -> Dict[int, List[Tuple[int, tuple]]]:
        """One round of exchange over part-internal edges."""
        self._step += 1
        if self.backend == "direct":
            from repro.core.partwise_fast import exchange_direct

            received, rounds, messages = exchange_direct(
                self.topology.nodes, self.part_neighbors, payloads
            )
            self.ledger.charge(
                f"partwise/exchange#{self._step}", max(1, rounds), messages
            )
            return received
        inputs = {
            v: {
                "part_neighbors": self.part_neighbors[v],
                "payload": payloads.get(v),
            }
            for v in self.topology.nodes
        }
        result = Simulator(
            self.topology,
            PartExchangeAlgorithm(inputs),
            seed=self.seed + self._step,
            engine=self.sim_engine,
        ).run()
        self.ledger.charge(
            f"partwise/exchange#{self._step}", max(1, result.rounds), result.messages
        )
        return {v: result.states[v].received for v in self.topology.nodes}

    # ------------------------------------------------------------------
    # Theorem 2 operations
    # ------------------------------------------------------------------

    def minimum_per_part(self, values: Values, iterations: int) -> Values:
        """Part-global semilattice aggregation (Theorem 2 ii, min form).

        After ``iterations >= supergraph diameter`` flooding rounds,
        every member of every part holds the part-wide minimum.  With
        block parameter ``b`` the supergraph has at most ``b``
        supernodes, so ``iterations = b`` always suffices.
        """
        current = self.block_aggregate(values, "min")
        for _ in range(iterations):
            received = self.exchange(
                {
                    v: (current[v],) if current.get(v) is not None else None
                    for v in self.block_of
                }
            )
            merged: Values = {}
            for v in self.block_of:
                best = current.get(v)
                for _sender, payload in received[v]:
                    incoming = payload[0]
                    if best is None or (incoming is not None and incoming < best):
                        best = incoming
                merged[v] = best
            current = self.block_aggregate(merged, "min")
        return current

    def elect_leaders(self, iterations: int) -> Tuple[Dict[int, int], Values]:
        """Leader election for all parts in parallel (Theorem 2 i).

        The leader is the minimum node id of the part.  Returns
        ``(per-part leader, per-node leader knowledge)``.
        """
        values = {v: v for v in self.block_of}
        knowledge = self.minimum_per_part(values, iterations)
        leaders: Dict[int, int] = {}
        for v, leader in knowledge.items():
            if leader is not None:
                leaders[self.partition.part_of(v)] = leader
        return leaders, knowledge

    def broadcast_from_leaders(
        self, leader_values: Dict[int, int], iterations: int
    ) -> Values:
        """Broadcast one value per part from its leader (Theorem 2 iii).

        ``leader_values`` maps *node ids* (the leaders) to values; the
        value floods the part in at most ``iterations`` supersteps.
        """
        values: Values = {
            v: leader_values.get(v) for v in self.block_of
        }
        # Flooding with 'min' is value-preserving: only one node per
        # part injects a value, so the minimum is that value.
        return self.minimum_per_part(values, iterations)

    # ------------------------------------------------------------------
    # Lemma 3: block counting via a supergraph BFS
    # ------------------------------------------------------------------

    def count_blocks(
        self, b_limit: int, values: Optional[Values] = None
    ) -> Tuple[Dict[int, Optional[int]], Values]:
        """Find all parts with at most ``b_limit`` block components.

        Runs the Lemma 3 protocol: flood leader candidates for
        ``b_limit`` supersteps, build a BFS tree over the supergraph,
        detect conflicts (multiple leaders / unreached supernodes),
        convergecast the supernode count (or the sum of ``values``)
        level by level, and broadcast the verdict back down.  A part
        whose nodes receive no verdict by the deadline is *bad*.

        Returns ``(per-part count, per-node count)``; the count is
        ``None`` exactly for parts with more than ``b_limit`` blocks.
        O(b_limit · (D + c)) rounds.
        """
        if b_limit < 1:
            return {i: None for i in range(self.partition.size)}, {}
        node_ids = {v: v for v in self.block_of}
        leader_of = self.minimum_per_part(node_ids, b_limit)

        # --- Supergraph BFS from the leader's block -------------------
        # Level 0: the block containing the leader (its block-min equals
        # the flooded leader).
        block_min = self.block_aggregate(node_ids, "min")
        depth: Values = {}
        parent_root: Values = {}
        for v in self.block_of:
            if block_min.get(v) is not None and block_min[v] == leader_of.get(v):
                depth[v] = 0
        for level in range(1, b_limit + 1):
            payloads = {}
            for v in self.block_of:
                if depth.get(v) is not None:
                    payloads[v] = (depth[v], self.block_of[v].root)
            received = self.exchange(payloads)
            candidate: Values = {}
            for v in self.block_of:
                if depth.get(v) is not None:
                    continue
                best = None
                for _sender, payload in received[v]:
                    nbr_depth, nbr_root = payload
                    if nbr_depth == level - 1:
                        if best is None or nbr_root < best:
                            best = nbr_root
                candidate[v] = best
            adopted = self.block_aggregate(candidate, "min")
            for v in self.block_of:
                if depth.get(v) is None and adopted.get(v) is not None:
                    depth[v] = level
                    parent_root[v] = adopted[v]

        # --- Conflict detection ---------------------------------------
        # A part is inconsistent if two neighboring members disagree on
        # the leader or one of them was never reached by the BFS.
        flag_payloads = {}
        for v in self.block_of:
            reached = 1 if depth.get(v) is not None else 0
            leader = leader_of.get(v)
            flag_payloads[v] = (reached, leader if leader is not None else -1)
        received = self.exchange(flag_payloads)
        conflict: Values = {}
        for v in self.block_of:
            my_leader = leader_of.get(v)
            bad = depth.get(v) is None
            for _sender, payload in received[v]:
                nbr_reached, nbr_leader = payload
                if not nbr_reached or nbr_leader != (my_leader if my_leader is not None else -1):
                    bad = True
            conflict[v] = 1 if bad else 0

        # --- Level-by-level count convergecast ------------------------
        # Each block's base contribution: 1 (count) or the sum of the
        # caller's values over its members.
        if values is None:
            # One designated member per block contributes 1: each node
            # knows whether it is the block minimum from `block_min`.
            base = {
                v: (1 if block_min.get(v) == v else 0) for v in self.block_of
            }
            block_base = self.block_aggregate(base, "sum")
        else:
            block_base = self.block_aggregate(values, "sum")
        acc: Values = dict(block_base)
        conflict = self.block_aggregate(conflict, "max")

        n = self.topology.n
        for level in range(b_limit, 0, -1):
            # Blocks at this BFS depth pick one uplink edge to their
            # parent block (minimum encoded (member, neighbor) pair).
            encode: Values = {}
            for v in self.block_of:
                if depth.get(v) != level:
                    continue
                pr = parent_root.get(v)
                for w in self.part_neighbors[v]:
                    wb = self.block_of.get(w)
                    if wb is not None and wb.root == pr:
                        code = v * n + w
                        if encode.get(v) is None or code < encode[v]:
                            encode[v] = code
            uplink = self.block_aggregate(encode, "min")
            payloads = {}
            for v in self.block_of:
                if depth.get(v) == level and uplink.get(v) is not None:
                    sender, target = divmod(uplink[v], n)
                    if sender == v:
                        payloads[v] = (
                            target,
                            acc.get(v) or 0,
                            conflict.get(v) or 0,
                        )
            received = self.exchange(payloads)
            incoming: Values = {}
            conflict_in: Values = {}
            for v in self.block_of:
                if depth.get(v) != level - 1:
                    continue
                total = None
                flag = None
                for _sender, payload in received[v]:
                    target, amount, child_flag = payload
                    if target == v:
                        total = (total or 0) + amount
                        flag = max(flag or 0, child_flag)
                incoming[v] = total
                conflict_in[v] = flag
            gathered = self.block_aggregate(incoming, "sum")
            flagged = self.block_aggregate(conflict_in, "max")
            for v in self.block_of:
                if depth.get(v) == level - 1:
                    if gathered.get(v) is not None:
                        acc[v] = (acc.get(v) or 0) + gathered[v]
                    if flagged.get(v):
                        conflict[v] = 1

        # --- Verdict broadcast ----------------------------------------
        verdict: Values = {}
        for v in self.block_of:
            if depth.get(v) == 0 and not conflict.get(v):
                count = acc.get(v) or 0
                if count <= b_limit or values is not None:
                    verdict[v] = count
        for level in range(b_limit):
            payloads = {}
            for v in self.block_of:
                if depth.get(v) == level and verdict.get(v) is not None:
                    payloads[v] = (self.block_of[v].root, verdict[v])
            received = self.exchange(payloads)
            adopted: Values = {}
            for v in self.block_of:
                if verdict.get(v) is not None or depth.get(v) != level + 1:
                    continue
                for _sender, payload in received[v]:
                    sender_root, value = payload
                    if sender_root == parent_root.get(v):
                        adopted[v] = value
                        break
            spread = self.block_aggregate(adopted, "min")
            for v in self.block_of:
                if verdict.get(v) is None and spread.get(v) is not None:
                    verdict[v] = spread[v]

        per_part: Dict[int, Optional[int]] = {}
        for index in range(self.partition.size):
            members = self.partition.members(index)
            member_verdicts = {verdict.get(v) for v in members}
            if None in member_verdicts or not member_verdicts:
                per_part[index] = None
            else:
                per_part[index] = member_verdicts.pop()
        return per_part, verdict
