"""Existential shortcuts: witnesses, certification, and the genus bound.

Theorem 3 takes as *input* the promise that a ``T``-restricted shortcut
with congestion ``c`` and block parameter ``b`` exists.  This module
provides that promise three ways:

1. **Trivial witnesses** — the full-ancestor shortcut (every part gets
   all tree ancestors of its nodes; block parameter exactly 1, possibly
   huge congestion) and the empty shortcut (congestion 0, block
   parameter = largest part size).  Between them a congestion/block
   trade-off frontier always exists.
2. **Certification** — :func:`certify_frontier` sweeps congestion caps
   through a centralized greedy (the offline twin of CoreSlow) and
   *measures* the achieved (congestion, block) pairs on the concrete
   instance.  Feeding a certified point into the distributed
   construction exactly matches the paper's interface, with no
   topology assumption.
3. **The genus bound** (Theorem 1, from Ghaffari–Haeupler [7]) — for a
   genus-``g`` graph and any depth-``D`` tree, a shortcut with
   congestion ``O(gD log D)`` and block parameter ``O(log D)`` exists.
   :func:`genus_bound` evaluates those formulas with unit constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.topology import Edge
from repro.core.quality_fast import block_counts, shortcut_congestion
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


def full_ancestor_shortcut(
    tree: SpanningTree, partition: Partition
) -> TreeRestrictedShortcut:
    """``H_i`` = every tree edge on a member-to-root path.

    Each ``H_i`` is one subtree containing the root, so the block
    parameter is exactly 1; congestion can reach ``N`` at the root.
    This is the universal existence witness: *some* (c, b) pair always
    exists.
    """
    subgraphs: List[Set[Edge]] = [set() for _ in range(partition.size)]
    for index in range(partition.size):
        for member in partition.members(index):
            for edge in tree.path_to_root_edges(member):
                if edge in subgraphs[index]:
                    break  # the rest of the path is already present
                subgraphs[index].add(edge)
    return TreeRestrictedShortcut(tree, partition, subgraphs)


def empty_shortcut(
    tree: SpanningTree, partition: Partition
) -> TreeRestrictedShortcut:
    """``H_i = ∅``: congestion 0, block parameter = largest part size."""
    return TreeRestrictedShortcut.empty(tree, partition)


def greedy_capped_shortcut(
    tree: SpanningTree, partition: Partition, cap: int
) -> Tuple[TreeRestrictedShortcut, Set[Edge]]:
    """Centralized congestion-capped ancestor assignment.

    The offline twin of CoreSlow's sweep: process tree edges bottom-up;
    an edge is assigned every part id visible below it through usable
    edges, unless more than ``cap`` ids arrive — then the edge becomes
    *unusable* and gets nothing.  Returns the shortcut and the unusable
    edge set.
    """
    if cap < 0:
        raise ShortcutError("congestion cap must be non-negative")
    visible: Dict[int, Set[int]] = {}
    edge_map: Dict[Edge, Set[int]] = {}
    unusable: Set[Edge] = set()
    for v in tree.order_bottom_up():
        ids: Set[int] = set()
        own = partition.part_of(v)
        if own is not None:
            ids.add(own)
        for child in tree.children(v):
            ids |= visible.get(child, set())
        edge = tree.parent_edge(v)
        if edge is None:
            continue
        if len(ids) > cap:
            unusable.add(edge)
            visible[v] = set()
        else:
            edge_map[edge] = ids
            visible[v] = ids
    shortcut = TreeRestrictedShortcut.from_edge_map(tree, partition, edge_map)
    return shortcut, unusable


@dataclass(frozen=True)
class CertifiedPoint:
    """One certified existential quality point on a concrete instance."""

    cap: int
    congestion: int
    block: int

    def routing_cost(self, depth: int) -> int:
        """The Theorem 2 routing bound b(D + c) this point implies."""
        return self.block * (depth + self.congestion)


def certify_frontier(
    tree: SpanningTree,
    partition: Partition,
    caps: Optional[Sequence[int]] = None,
) -> List[CertifiedPoint]:
    """Measure the (congestion, block) frontier of the greedy sweep.

    Sweeps congestion caps (powers of two up to ``N`` by default) and
    records the achieved quality of each greedy shortcut.  Every
    returned point is a *constructive existence proof* of a
    ``T``-restricted shortcut with those exact parameters on this
    instance.
    """
    if caps is None:
        caps = []
        cap = 1
        while cap < 2 * partition.size:
            caps.append(cap)
            cap *= 2
    points = []
    for cap in caps:
        shortcut, _unusable = greedy_capped_shortcut(tree, partition, cap)
        counts = block_counts(shortcut)
        points.append(
            CertifiedPoint(
                cap=cap,
                congestion=max(1, shortcut_congestion(shortcut)),
                block=max(1, max(counts) if counts else 1),
            )
        )
    return points


def best_certified(
    tree: SpanningTree,
    partition: Partition,
    caps: Optional[Sequence[int]] = None,
) -> CertifiedPoint:
    """The frontier point minimising the routing cost ``b (D + c)``.

    This is the natural scalarisation: Theorem 2 routes in
    ``O(b (D + c))`` rounds, so the best existential promise to hand to
    FindShortcut is the one minimising that product.
    """
    points = certify_frontier(tree, partition, caps)
    depth = max(1, tree.height)
    return min(points, key=lambda p: (p.routing_cost(depth), p.congestion))


def genus_bound(genus: int, depth: int) -> Tuple[int, int]:
    """Theorem 1 parameters for a genus-``g`` graph and depth-``D`` tree.

    Returns ``(c, b)`` with ``c = max(1, g) * D * ceil(log2(D + 2))``
    and ``b = ceil(log2(D + 2))`` — the paper's ``O(gD log D)`` and
    ``O(log D)`` with unit constants (planar graphs use ``g = 0`` and
    get the ``O(D log D)`` bound of [7]).
    """
    if genus < 0:
        raise ShortcutError("genus must be non-negative")
    if depth < 0:
        raise ShortcutError("tree depth must be non-negative")
    log_term = max(1, math.ceil(math.log2(depth + 2)))
    c = max(1, genus) * max(1, depth) * log_term
    return c, log_term
