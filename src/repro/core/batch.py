"""Vectorized batch kernels — amortize the fast stack across instances.

Every fast path of PRs 1–5 (engine, quality kernels, direct
construction, direct backends, array-native instances) is per-instance
Python over flat arrays; the experiment grids and the shortcut service
both run thousands of *similar* instances.  This module adds the sixth
selection axis, ``batch=``, mirroring ``engine=`` / ``kernel=`` /
``mode=`` / ``backend=``:

* ``batch="loop"`` (default) runs the existing per-instance kernels in
  a Python loop — the executable reference for the batch layer, and
  the only choice when numpy is absent;
* ``batch="vector"`` packs a whole batch into one
  :class:`~repro.graphs.batch_csr.BatchCSR` /
  :class:`~repro.graphs.batch_csr.ShortcutPack` and computes the same
  quantities in single numpy ops over the concatenation.

The vectorized twins cover the hottest per-instance kernels:

* **block counts** (:func:`block_counts_batch`) — the per-part
  union-find of :func:`repro.core.quality_fast.block_counts` becomes
  pointer jumping over the clone table: ``H_i`` edges are tree edges
  oriented child → parent, so the block structure is a functional
  forest and one ``p = p[p]`` fixpoint roots every clone at once;
* **congestion** (:func:`congestion_batch`,
  :func:`shortcut_congestion_batch`) — the counting arrays of
  :func:`repro.core.quality_fast.congestion` become one
  :func:`numpy.bincount` over global dense edge ids plus a segmented
  max per instance;
* **dilation** (:func:`dilation_batch`) — the frontier BFS with
  eccentricity bounding becomes
  :func:`repro.graphs.batch_csr.bounded_diameter_batch`: every
  communication subgraph advances the same exact scan, all of them in
  lockstep, one vectorized gather per BFS level;
* **the Algorithm 1 upward sweep** (:func:`core_slow_batch`) — the
  bottom-up id-counting recurrence of
  :func:`repro.core.construct_fast._upward_sweep` becomes a
  level-synchronous pass: BFS-tree parents sit exactly one level up,
  so each depth's merge of forwarded id sets is one
  :func:`numpy.unique` over ``node * P + id`` keys, and the
  ``done``/``seal`` round recurrence scatters with ``maximum.at``;
* **verification block counts** (:func:`verification_counts_batch`) —
  the per-part union-finds of
  :func:`repro.core.construct_fast.verification_counts_direct` become
  pointer jumping (blocks) plus min-label propagation (communication
  components) over the member subspace.

Equivalence contract
--------------------

``batch="vector"`` reproduces the per-instance loop **bit-for-bit**:
identical :class:`~repro.core.quality.QualityReport` fields (plain
Python ints, never numpy scalars), identical verification count maps
including the reference's set-reduction corner case, identical
:class:`~repro.core.core_slow.CoreOutcome` edge maps / unusable sets /
rounds / messages, and the same :class:`~repro.errors.ShortcutError`
on the first disconnected communication subgraph in loop order.  The
differential suite in ``tests/core/test_batch_equivalence.py`` and the
property suite in ``tests/properties/test_prop_batch.py`` enforce it,
exactly as every prior fast path is licensed.

numpy is optional (the ``fast-math`` extra): selecting ``"vector"``
without numpy raises the install-hint error of
:func:`repro.graphs.batch_csr.require_numpy`; the default stays
``"loop"`` so nothing in the base install changes behavior.
"""

from __future__ import annotations

import functools
import math
from contextlib import contextmanager
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.congest.randomness import draw_shared_seed, mix
from repro.congest.topology import Topology
from repro.congest.trace import RoundLedger
from repro.core.core_slow import CoreOutcome
from repro.core.quality import QualityReport
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.batch_csr import (
    BatchCSR,
    ShortcutPack,
    bounded_diameter_batch,
    numpy_available,
    pointer_jump,
    require_numpy,
    segment_max,
    segment_min,
    segment_sum,
)
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

# ----------------------------------------------------------------------
# Batch registry (loop vs vector), mirroring engines/kernels/modes
# ----------------------------------------------------------------------

BATCHES: Tuple[str, ...] = ("loop", "vector")

DEFAULT_BATCH = "loop"

_default_batch = DEFAULT_BATCH


def get_default_batch() -> str:
    """Name of the batch strategy used when none is specified."""
    return _default_batch


def set_default_batch(batch: Optional[str]) -> str:
    """Set the process-wide default batch strategy; returns the previous."""
    global _default_batch
    previous = _default_batch
    _default_batch = resolve_batch(batch)
    return previous


@contextmanager
def using_batch(batch: Optional[str]) -> Iterator[str]:
    """Temporarily override the default batch strategy (``None`` no-op)."""
    if batch is None:
        yield _default_batch
        return
    previous = set_default_batch(batch)
    try:
        yield _default_batch
    finally:
        set_default_batch(previous)


def resolve_batch(batch: Optional[str]) -> str:
    """Validate a batch strategy name (``None`` means the default)."""
    if batch is None:
        return _default_batch
    if batch not in BATCHES:
        raise ShortcutError(
            f"unknown batch strategy {batch!r}; available: {sorted(BATCHES)}"
        )
    return batch


def batch_parameter(func):
    """Give an entry point a ``batch=`` keyword.

    For the duration of the call the given strategy becomes the
    process default, so every batched computation the function runs —
    however deeply nested — uses it.  The decorated twin of
    :func:`repro.congest.engine.engine_parameter`.
    """

    @functools.wraps(func)
    def wrapper(*args, batch: Optional[str] = None, **kwargs):
        with using_batch(batch):
            return func(*args, **kwargs)

    return wrapper


# ----------------------------------------------------------------------
# Packing helpers
# ----------------------------------------------------------------------


def pack_batch(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
) -> BatchCSR:
    """Pack ``(topology, tree, partition)`` triples into one batch."""
    return BatchCSR(topologies, trees, partitions)


def pack_shortcuts(
    shortcuts: Sequence[TreeRestrictedShortcut],
    topologies: Sequence[Topology],
    *,
    batch: Optional[BatchCSR] = None,
) -> ShortcutPack:
    """Pack shortcuts (with their trees/partitions) over topologies.

    Pass a prebuilt ``batch`` to reuse its packed arrays (the caller
    guarantees it was built from the same shortcuts' trees/partitions).
    """
    if batch is None:
        batch = BatchCSR(
            topologies,
            [shortcut.tree for shortcut in shortcuts],
            [shortcut.partition for shortcut in shortcuts],
        )
    return ShortcutPack(batch, shortcuts)


def _block_root_pointer(np, pack: ShortcutPack):
    """Root of every clone in the ``H_i`` block forest (pointer jumping).

    Each ``(part, child)`` clone has at most one outgoing tree edge, so
    the block structure is a functional forest and the union-find of
    the per-instance kernels collapses to one pointer-jump fixpoint.
    Memoized on the pack — the quality and verification kernels share
    one batch's roots.
    """
    roots = pack._block_roots
    if roots is None:
        pointer = np.arange(len(pack.clone_part), dtype=np.int64)
        pointer[pack.h_child_clone] = pack.h_parent_clone
        roots = pointer_jump(np, pointer)
        pack._block_roots = roots
    return roots


# ----------------------------------------------------------------------
# Quality kernels
# ----------------------------------------------------------------------


def block_counts_batch(pack: ShortcutPack) -> List[List[int]]:
    """Per-instance block counts — batch twin of
    :func:`repro.core.quality_fast.block_counts`."""
    np = require_numpy()
    batch = pack.batch
    roots = _block_root_pointer(np, pack)[pack.member_clone]
    distinct = np.unique(roots)
    counts = np.bincount(pack.clone_part[distinct], minlength=batch.p_total)
    return [
        counts[batch.part_offsets[b] : batch.part_offsets[b + 1]].tolist()
        for b in range(batch.size)
    ]


def shortcut_congestion_batch(pack: ShortcutPack) -> List[int]:
    """Per-instance shortcut congestion (max ``H_i`` per tree edge)."""
    np = require_numpy()
    batch = pack.batch
    count = np.bincount(pack.h_edge, minlength=batch.m_total).astype(np.int64)
    return segment_max(np, count, batch.edge_offsets, empty=0).tolist()


def congestion_batch(pack: ShortcutPack) -> List[int]:
    """Per-instance Definition 1 congestion — batch twin of
    :func:`repro.core.quality_fast.congestion`."""
    np = require_numpy()
    batch = pack.batch
    count = np.bincount(pack.h_edge, minlength=batch.m_total).astype(np.int64)
    owner_u = batch.labels[batch.edge_u]
    both = (owner_u >= 0) & (owner_u == batch.labels[batch.edge_v])
    # At most one part contains both endpoints; it uses the edge
    # through G[P_i] unless the edge already sits in its own H_i.
    in_owner = np.zeros(batch.m_total, dtype=bool)
    if pack.h_edge.size:
        owner = np.where(both, owner_u, -1)
        hit = owner[pack.h_edge] == pack.h_part
        in_owner[pack.h_edge[hit]] = True
    users = count + (both & ~in_owner)
    return segment_max(np, users, batch.edge_offsets, empty=0).tolist()


def dilation_batch(pack: ShortcutPack) -> List[int]:
    """Per-instance Definition 1 dilation — batch twin of
    :func:`repro.core.quality_fast.dilation`.

    Raises :class:`ShortcutError` for the first disconnected
    ``G[P_i] + H_i`` in per-instance loop order (smallest global part).
    """
    np = require_numpy()
    batch = pack.batch
    clone_count = len(pack.clone_part)

    owner_u = batch.labels[batch.edge_u]
    both = (owner_u >= 0) & (owner_u == batch.labels[batch.edge_v])
    mu = batch.edge_u[both]
    mv = batch.edge_v[both]
    # Both endpoints of a part-internal edge are covered members of
    # that part, so their clone ids come from the member table by two
    # gathers — no key search needed.
    inverse = pack.member_inverse()
    a = pack.member_clone[inverse[mu]]
    b = pack.member_clone[inverse[mv]]
    src = np.concatenate([a, b, pack.h_child_clone, pack.h_parent_clone])
    dst = np.concatenate([b, a, pack.h_parent_clone, pack.h_child_clone])
    indices = dst[np.argsort(src, kind="stable")]
    indptr = np.zeros(clone_count + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=clone_count), out=indptr[1:])

    diameters = bounded_diameter_batch(np, indptr, indices, pack.clone_starts)
    bad = np.flatnonzero(diameters < 0)
    if bad.size:
        part = int(bad[0])
        instance = int(batch.instance_of_part[part])
        local = part - int(batch.part_offsets[instance])
        raise ShortcutError(
            f"G[P_{local}] + H_{local} is disconnected; dilation is infinite"
        )
    return segment_max(np, diameters, batch.part_offsets, empty=0).tolist()


def measure_batch_vector(
    shortcuts: Optional[Sequence[TreeRestrictedShortcut]],
    topologies: Optional[Sequence[Topology]],
    *,
    with_dilation: bool = True,
    pack: Optional[ShortcutPack] = None,
) -> List[QualityReport]:
    """One :class:`QualityReport` per instance, vectorized.

    Bit-identical to ``[quality.measure(s, t) for s, t in zip(...)]``;
    all report fields are plain Python ints.  Pass a prebuilt ``pack``
    (over the same shortcuts/topologies) to amortize packing with other
    batch kernels, e.g. a verification pass sharing the clone table;
    ``shortcuts`` / ``topologies`` may then be ``None`` (the pack
    already carries everything, including array-native packs without
    shortcut objects).
    """
    if pack is None:
        pack = pack_shortcuts(shortcuts, topologies)
    counts = block_counts_batch(pack)
    congestions = congestion_batch(pack)
    shortcut_congestions = shortcut_congestion_batch(pack)
    dilations = dilation_batch(pack) if with_dilation else None
    reports = []
    for index, tree in enumerate(pack.batch.trees):
        per_part = tuple(counts[index])
        reports.append(
            QualityReport(
                congestion=congestions[index],
                shortcut_congestion=shortcut_congestions[index],
                block_parameter=max(per_part) if per_part else 0,
                dilation=None if dilations is None else dilations[index],
                block_counts=per_part,
                tree_depth=tree.height,
            )
        )
    return reports


def measure_batch(
    shortcuts: Sequence[TreeRestrictedShortcut],
    topologies: Sequence[Topology],
    *,
    with_dilation: bool = True,
    kernel: Optional[str] = None,
    batch: Optional[str] = None,
) -> List[QualityReport]:
    """One :class:`QualityReport` per ``(shortcut, topology)`` pair.

    The batch-axis entry point of :func:`repro.core.quality.measure`:
    ``batch="loop"`` (the default) calls ``measure`` per instance with
    the selected per-instance ``kernel``; ``batch="vector"`` packs the
    whole batch and runs the vectorized twins — which implement the
    fast kernels, so ``kernel`` does not apply to it (both kernels are
    bit-identical anyway).  Reports match the loop bit-for-bit.
    """
    if len(shortcuts) != len(topologies):
        raise ShortcutError(
            f"expected {len(shortcuts)} topologies, got {len(topologies)}"
        )
    if resolve_batch(batch) == "vector":
        return measure_batch_vector(
            shortcuts, topologies, with_dilation=with_dilation
        )
    from repro.core.quality import measure

    return [
        measure(shortcut, topology, with_dilation=with_dilation, kernel=kernel)
        for shortcut, topology in zip(shortcuts, topologies)
    ]


# ----------------------------------------------------------------------
# Verification kernel
# ----------------------------------------------------------------------


def verification_counts_batch(
    pack: ShortcutPack, b_limits: Sequence[int]
) -> List[Dict[int, Optional[int]]]:
    """Per-instance verification count maps — batch twin of
    :func:`repro.core.construct_fast.verification_counts_direct`.

    Blocks root by pointer jumping; communication components come from
    min-label propagation over part-internal edges plus co-block member
    links.  The per-part reduction replicates the reference exactly,
    including the rare several-distinct-verdicts case, where the same
    Python set is rebuilt in the same member order so that ``set.pop``
    returns the identical element.
    """
    np = require_numpy()
    batch = pack.batch
    if len(b_limits) != batch.size:
        raise ShortcutError(
            f"expected {batch.size} b_limits, got {len(b_limits)}"
        )
    limits = np.asarray([int(limit) for limit in b_limits], dtype=np.int64)
    member_count = len(pack.member_node)

    roots = _block_root_pointer(np, pack)[pack.member_clone]

    # Member-subspace index of every covered node.
    inverse = pack.member_inverse()

    owner_u = batch.labels[batch.edge_u]
    both = (owner_u >= 0) & (owner_u == batch.labels[batch.edge_v])
    edge_a = inverse[batch.edge_u[both]]
    edge_b = inverse[batch.edge_v[both]]
    if member_count:
        # Co-block links: all members sharing a block root join the
        # group's first member (any representative yields the same
        # components, as in the reference's block_rep linking).
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        new_group = np.empty(member_count, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_roots[1:] != sorted_roots[:-1]
        group_of = np.cumsum(new_group) - 1
        representative = order[np.flatnonzero(new_group)][group_of]
        linked = representative != order
        edge_a = np.concatenate([edge_a, representative[linked]])
        edge_b = np.concatenate([edge_b, order[linked]])

    # Connected components: min-label propagation + pointer doubling.
    component = np.arange(member_count, dtype=np.int64)
    if edge_a.size:
        while True:
            before = component.copy()
            low = np.minimum(component[edge_a], component[edge_b])
            np.minimum.at(component, edge_a, low)
            np.minimum.at(component, edge_b, low)
            component = pointer_jump(np, component)
            if np.array_equal(component, before):
                break

    # Distinct blocks per component: unique (component, block root)
    # pairs, counted at the component's label.
    if member_count:
        clone_count = max(len(pack.clone_part), 1)
        pairs = np.unique(component * clone_count + roots)
        blocks_of_component = np.bincount(
            pairs // clone_count, minlength=member_count
        )
        count = blocks_of_component[component]
    else:
        count = component
    member_limit = limits[batch.instance_of_part[pack.member_part]]
    verdict = np.where(count <= member_limit, count, -1)
    verdict_min = segment_min(np, verdict, pack.member_starts, empty=0)
    verdict_max = segment_max(np, verdict, pack.member_starts, empty=0)

    results: List[Dict[int, Optional[int]]] = []
    for b in range(batch.size):
        p0, p1 = int(batch.part_offsets[b]), int(batch.part_offsets[b + 1])
        if limits[b] < 1:
            results.append({index: None for index in range(p1 - p0)})
            continue
        n0 = int(batch.node_offsets[b])
        per_part: Dict[int, Optional[int]] = {}
        for local, part in enumerate(range(p0, p1)):
            low, high = int(verdict_min[part]), int(verdict_max[part])
            if low < 0:
                per_part[local] = None
            elif low == high:
                per_part[local] = low
            else:
                # Several components with distinct <= b_limit counts:
                # rebuild the reference's verdict set in the same
                # member-frozenset order so .pop() matches bit-for-bit.
                s0 = int(pack.member_starts[part])
                s1 = int(pack.member_starts[part + 1])
                verdict_of = {
                    int(node) - n0: int(value)
                    for node, value in zip(
                        pack.member_node[s0:s1], verdict[s0:s1]
                    )
                }
                members = batch.partitions[b].members(local)
                per_part[local] = {verdict_of[v] for v in members}.pop()
        results.append(per_part)
    return results


def verification_batch(
    topologies: Sequence[Topology],
    shortcuts: Sequence[TreeRestrictedShortcut],
    b_limits: Sequence[int],
    *,
    consider: Optional[Sequence[Optional[Iterable[int]]]] = None,
    seed: int = 0,
    ledgers: Optional[Sequence[Optional[RoundLedger]]] = None,
    mode: Optional[str] = None,
    batch: Optional[str] = None,
) -> List["VerificationOutcome"]:
    """Batch-axis entry point of :func:`repro.core.verification.verification`.

    ``batch="loop"`` (the default) runs the per-instance subroutine
    with the selected ``mode``; ``batch="vector"`` computes every
    instance's count map in one vectorized pass — the batch twin of
    ``mode="direct"``, charging ledgers from the same Lemma 3 analytic
    cost model (``mode`` does not apply to it).  Outcomes match the
    loop bit-for-bit.
    """
    from repro.core.verification import VerificationOutcome, verification

    size = len(shortcuts)
    if len(topologies) != size or len(b_limits) != size:
        raise ShortcutError(
            f"expected {size} topologies and b_limits, got "
            f"{len(topologies)} and {len(b_limits)}"
        )
    consider_list = list(consider) if consider is not None else [None] * size
    ledger_list = list(ledgers) if ledgers is not None else [None] * size
    if resolve_batch(batch) != "vector":
        return [
            verification(
                topology,
                shortcut,
                int(limit),
                consider=allowed,
                seed=seed,
                ledger=ledger,
                mode=mode,
            )
            for topology, shortcut, limit, allowed, ledger in zip(
                topologies, shortcuts, b_limits, consider_list, ledger_list
            )
        ]
    from repro.core.construct_fast import charge_verification_model

    pack = pack_shortcuts(shortcuts, topologies)
    count_maps = verification_counts_batch(pack, b_limits)
    outcomes = []
    for topology, shortcut, limit, allowed, ledger, counts in zip(
        topologies, shortcuts, b_limits, consider_list, ledger_list, count_maps
    ):
        charge_verification_model(ledger, topology, shortcut, int(limit))
        considered = (
            set(allowed) if allowed is not None else set(range(shortcut.size))
        )
        good = frozenset(
            index
            for index, count in counts.items()
            if index in considered and count is not None and count <= int(limit)
        )
        outcomes.append(
            VerificationOutcome(
                good_parts=good, counts=counts, b_limit=int(limit)
            )
        )
    return outcomes


# ----------------------------------------------------------------------
# Algorithm 1 upward sweep (CoreSlow)
# ----------------------------------------------------------------------


def _c_list(size: int, cs: Union[int, Sequence[int]]) -> List[int]:
    """Broadcast / validate per-instance congestion parameters."""
    if isinstance(cs, int):
        c_list = [cs] * size
    else:
        c_list = [int(c) for c in cs]
        if len(c_list) != size:
            raise ShortcutError(
                f"expected {size} congestion parameters, got {len(c_list)}"
            )
    for c in c_list:
        if c < 1:
            raise ShortcutError("congestion parameter c must be >= 1")
    return c_list


def _upward_sweep_batch(np, batch: BatchCSR, own, caps):
    """Level-synchronous batch twin of
    :func:`repro.core.construct_fast._upward_sweep`.

    ``own`` holds each global node's injected id (global part id, -1
    to relay only); ``caps`` the per-instance id cap.  BFS-tree parents
    sit exactly one depth level up, so processing depths max → 1 makes
    every per-node id-set union one ``np.unique`` over
    ``node * P + id`` keys for the whole level across all instances.

    Returns ``(entry_nodes, entry_ids, group_starts, unusable_nodes,
    rounds, messages)``: the usable (node, id) pairs grouped per node
    (ids ascending), the nodes whose parent edge went unusable, and the
    exact per-instance round/message totals of the streaming program.
    """
    total_parts = max(batch.p_total, 1)
    done = np.zeros(batch.n_total, dtype=np.int64)
    seal = np.zeros(batch.n_total, dtype=np.int64)
    q_eff = np.zeros(batch.n_total, dtype=np.int64)
    parent = batch.tree_parent
    order = batch.depth_order
    starts = batch.depth_starts
    empty = np.empty(0, dtype=np.int64)
    pending_node, pending_id = empty, empty
    entry_node_chunks: List = []
    entry_id_chunks: List = []
    unusable_chunks: List = []

    for depth in range(batch.max_depth, 0, -1):
        level = order[starts[depth] : starts[depth + 1]]
        injected = level[own[level] >= 0]
        node_arr = np.concatenate([pending_node, injected])
        id_arr = np.concatenate([pending_id, own[injected]])
        if node_arr.size:
            keys = node_arr * total_parts + id_arr
            keys.sort()
            distinct = np.empty(len(keys), dtype=bool)
            distinct[0] = True
            distinct[1:] = keys[1:] != keys[:-1]
            keys = keys[distinct]
            pair_node = keys // total_parts
            pair_id = keys % total_parts
            # keys are sorted, so grouping by node is a flag diff, not
            # another unique pass.
            new = np.empty(len(pair_node), dtype=bool)
            new[0] = True
            new[1:] = pair_node[1:] != pair_node[:-1]
            first = np.flatnonzero(new)
            nodes = pair_node[first]
            q = np.diff(np.append(first, len(pair_node)))
            over = q > caps[batch.instance_of_node[nodes]]
            q_eff[nodes] = np.where(over, 0, q)
            unusable_chunks.append(nodes[over])
            keep = ~np.repeat(over, q)
            kept_node = pair_node[keep]
            kept_id = pair_id[keep]
            entry_node_chunks.append(kept_node)
            entry_id_chunks.append(kept_id)
            pending_node = parent[kept_node]
            pending_id = kept_id
        else:
            pending_node, pending_id = empty, empty
        done[level] = seal[level] + q_eff[level]
        np.maximum.at(seal, parent[level], done[level] + 1)

    rounds = np.zeros(batch.size, dtype=np.int64)
    if batch.max_depth >= 1:
        level1 = order[starts[1] : starts[2]]
        np.maximum.at(
            rounds, batch.instance_of_node[level1], done[level1] + 1
        )
    node_counts = batch.node_offsets[1:] - batch.node_offsets[:-1]
    messages = np.maximum(node_counts - 1, 0) + segment_sum(
        np, q_eff, batch.node_offsets
    )

    entry_nodes = (
        np.concatenate(entry_node_chunks) if entry_node_chunks else empty
    )
    entry_ids = np.concatenate(entry_id_chunks) if entry_id_chunks else empty
    # Group the pairs per node; ids stay ascending inside each group
    # (each node is processed at exactly one level, already key-sorted).
    regroup = np.argsort(entry_nodes, kind="stable")
    entry_nodes = entry_nodes[regroup]
    entry_ids = entry_ids[regroup]
    if entry_nodes.size:
        group_starts = np.flatnonzero(
            np.concatenate([[True], entry_nodes[1:] != entry_nodes[:-1]])
        )
    else:
        group_starts = empty
    unusable_nodes = (
        np.concatenate(unusable_chunks) if unusable_chunks else empty
    )
    return entry_nodes, entry_ids, group_starts, unusable_nodes, rounds, messages


def core_slow_batch(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    cs: Union[int, Sequence[int]],
    *,
    participating: Optional[Sequence[Optional[Iterable[int]]]] = None,
    ledgers: Optional[Sequence[Optional[RoundLedger]]] = None,
    batch: Optional[BatchCSR] = None,
) -> List[CoreOutcome]:
    """Batch twin of :func:`repro.core.construct_fast.core_slow_direct`.

    ``cs`` is one congestion parameter per instance (or one shared
    int); ``participating`` optionally restricts each instance to a
    subset of part ids, as in the per-instance kernel.  Outputs,
    rounds, and messages are all bit-identical to looping
    ``core_slow_direct`` over the instances, and ledgers (when given)
    receive the same ``core-slow`` phase charges.  A prebuilt ``batch``
    over the same triples skips repacking.
    """
    np = require_numpy()
    if batch is None:
        batch = BatchCSR(topologies, trees, partitions)
    c_list = _c_list(batch.size, cs)

    own = batch.labels.copy()
    if participating is not None:
        for b, allowed in enumerate(participating):
            if allowed is None:
                continue
            n0, n1 = int(batch.node_offsets[b]), int(batch.node_offsets[b + 1])
            base = int(batch.part_offsets[b])
            allowed_global = np.asarray(
                sorted(base + int(index) for index in allowed), dtype=np.int64
            )
            segment = own[n0:n1]
            own[n0:n1] = np.where(
                np.isin(segment, allowed_global), segment, -1
            )

    caps = 2 * np.asarray(c_list, dtype=np.int64)
    entry_nodes, entry_ids, group_starts, unusable_nodes, rounds, messages = (
        _upward_sweep_batch(np, batch, own, caps)
    )

    # Scatter the flat sweep results back into per-instance objects.
    # Everything tuple-shaped is computed as arrays first (instance,
    # local endpoints, canonical edge, part-localized ids) and lowered
    # to Python lists once, leaving only dict fills in the loop.
    edge_maps: List[Dict] = [{} for _ in range(batch.size)]
    heads = entry_nodes[group_starts]
    head_instance = batch.instance_of_node[heads]
    head_base = batch.node_offsets[head_instance]
    head_v = heads - head_base
    head_p = batch.tree_parent[heads] - head_base
    edge_lo = np.minimum(head_v, head_p).tolist()
    edge_hi = np.maximum(head_v, head_p).tolist()
    local_ids = (
        entry_ids - batch.part_offsets[batch.instance_of_part[entry_ids]]
    ).tolist()
    bounds = group_starts.tolist() + [len(local_ids)]
    for g, b in enumerate(head_instance.tolist()):
        edge_maps[b][(edge_lo[g], edge_hi[g])] = tuple(
            local_ids[bounds[g] : bounds[g + 1]]
        )

    unusable_sets: List[set] = [set() for _ in range(batch.size)]
    if unusable_nodes.size:
        u_instance = batch.instance_of_node[unusable_nodes]
        u_base = batch.node_offsets[u_instance]
        u_v = unusable_nodes - u_base
        u_p = batch.tree_parent[unusable_nodes] - u_base
        u_lo = np.minimum(u_v, u_p).tolist()
        u_hi = np.maximum(u_v, u_p).tolist()
        for index, b in enumerate(u_instance.tolist()):
            unusable_sets[b].add((u_lo[index], u_hi[index]))

    outcomes = []
    for b in range(batch.size):
        shortcut = TreeRestrictedShortcut.from_edge_map(
            batch.trees[b], batch.partitions[b], edge_maps[b]
        )
        if ledgers is not None and ledgers[b] is not None:
            ledgers[b].charge_phase(
                "core-slow", int(rounds[b]), int(messages[b])
            )
        outcomes.append(
            CoreOutcome(
                shortcut=shortcut,
                unusable=frozenset(unusable_sets[b]),
                rounds=int(rounds[b]),
                messages=int(messages[b]),
            )
        )
    return outcomes


# ----------------------------------------------------------------------
# FindShortcut / Appendix A doubling ladder, batched
# ----------------------------------------------------------------------


def _flood_up_batch(np, batch: BatchCSR, own, usable):
    """Lockstep bitset replay of
    :func:`repro.core.construct_fast._flood_up` across a whole batch.

    ``own`` holds each global node's injected id (global part id, -1 to
    relay only); ``usable`` whether the node may forward over its
    parent edge.  Part ids become bit positions (local to their
    instance) in per-node uint64 bitset rows, so one round's id-set
    updates are bitwise ors over the active rows and the min-first pump
    is an isolate-lowest-set-bit per sender.  The reference's event
    loop guarantees that every node with pending ids re-wakes itself,
    so the per-round active set is exactly ``arrivals ∪ woken`` — the
    lockstep replay visits the same nodes in the same rounds, and an
    instance's round count is the last lockstep round it was active in
    (per-instance activity is contiguous: round ``t+1`` activity only
    ever comes from round ``t`` sends).

    Returns ``(seen, rounds, messages)``: the per-node bitsets of local
    part ids that reached each node (``q_ids``), and the exact
    per-instance round/message totals of the simulated flood.
    """
    n_total = batch.n_total
    parent = batch.tree_parent
    inst = batch.instance_of_node
    part_counts = batch.part_offsets[1:] - batch.part_offsets[:-1]
    max_parts = int(part_counts.max()) if batch.size else 0
    words = max(1, (max_parts + 63) // 64)
    seen = np.zeros((n_total, words), dtype=np.uint64)
    pending = np.zeros((n_total, words), dtype=np.uint64)
    arrival = np.zeros((n_total, words), dtype=np.uint64)
    rounds = np.zeros(batch.size, dtype=np.int64)
    messages = np.zeros(batch.size, dtype=np.int64)

    owners = np.flatnonzero(own >= 0)
    if not owners.size:
        return seen, rounds, messages
    local = own[owners] - batch.part_offsets[inst[owners]]
    word_of = local >> 6
    bit_of = np.left_shift(np.uint64(1), (local & 63).astype(np.uint64))
    seen[owners, word_of] = bit_of

    # Sorted-unique via a reusable scatter mask: cheaper than
    # ``np.unique`` / ``np.union1d`` on the per-round sender sets.
    node_mask = np.zeros(n_total, dtype=bool)

    def distinct(values):
        node_mask[values] = True
        out = np.flatnonzero(node_mask)
        node_mask[out] = False
        return out

    empty = np.empty(0, dtype=np.int64)
    # Round 0 (on_start): every usable owner forwards its own id
    # immediately; it never enters pending, so no wake-up.
    send = usable[owners]
    senders = owners[send]
    arrived = empty
    if senders.size:
        messages += np.bincount(inst[senders], minlength=batch.size)
        flat = arrival.reshape(-1)
        np.bitwise_or.at(
            flat, parent[senders] * words + word_of[send], bit_of[send]
        )
        arrived = distinct(parent[senders])
    woken = empty
    current_round = 0
    while arrived.size or woken.size:
        current_round += 1
        node_mask[arrived] = True
        node_mask[woken] = True
        active = np.flatnonzero(node_mask)
        node_mask[active] = False
        rounds[inst[active]] = current_round
        if arrived.size:
            can = arrived[usable[arrived]]
            blocked = arrived[~usable[arrived]]
            if can.size:
                pending[can] |= arrival[can] & ~seen[can]
                seen[can] |= arrival[can]
            if blocked.size:
                seen[blocked] |= arrival[blocked]
            arrival[arrived] = 0
        senders = active[usable[active]]
        if senders.size:
            senders = senders[pending[senders].any(axis=1)]
        if senders.size:
            pw = pending[senders]
            first = (pw != 0).argmax(axis=1)
            word = pw[np.arange(len(senders)), first]
            # Two's-complement isolate of the lowest set bit: the heap
            # minimum *is* the smallest pending id.
            low = word & (~word + np.uint64(1))
            pending[senders, first] = word & ~low
            messages += np.bincount(inst[senders], minlength=batch.size)
            flat = arrival.reshape(-1)
            np.bitwise_or.at(flat, parent[senders] * words + first, low)
            arrived = distinct(parent[senders])
            woken = senders[pending[senders].any(axis=1)]
        else:
            arrived = empty
            woken = empty
    return seen, rounds, messages


def _entries_from_seen(np, batch: BatchCSR, seen, usable):
    """Usable ``(node, id)`` pairs from flood bitsets.

    Unpacks the ``q_ids`` bitsets of the usable nodes into the flat
    edge-slot arrays the sweep kernels produce: pairs grouped by node
    (rows ascending), ids ascending inside each group, ids global.
    Bit positions map to little-endian byte views, matching every
    platform this stack runs on.
    """
    rows = np.flatnonzero(usable & seen.any(axis=1))
    empty = np.empty(0, dtype=np.int64)
    if not rows.size:
        return empty, empty
    bits = np.unpackbits(
        seen[rows].view(np.uint8), axis=1, bitorder="little"
    )
    node_index, local_id = np.nonzero(bits)
    entry_nodes = rows[node_index]
    entry_ids = local_id.astype(np.int64) + batch.part_offsets[
        batch.instance_of_node[entry_nodes]
    ]
    return entry_nodes, entry_ids


def _broadcast(size: int, values, default) -> List:
    """Broadcast a scalar / ``None`` / sequence to one value per instance."""
    if values is None:
        return [default] * size
    if isinstance(values, int):
        return [values] * size
    out = list(values)
    if len(out) != size:
        raise ShortcutError(
            f"expected {size} per-instance values, got {len(out)}"
        )
    return out


def _find_shortcut_wave(
    np,
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    c_list: Sequence[int],
    b_list: Sequence[int],
    *,
    use_fast: bool,
    shared_seeds: Sequence[Optional[int]],
    gamma: float,
    limits: Sequence[int],
    ledgers: Sequence[RoundLedger],
    warm_starts: Sequence,
    instance_keys: Optional[Sequence] = None,
    pack_cache: Optional[Dict] = None,
) -> List:
    """One lockstep FindShortcut run over a batch of instances.

    Replays the Theorem 3 iteration loop of
    :func:`repro.core.find_shortcut.find_shortcut` (direct mode) across
    all instances at once: per iteration one batched Phase A sweep, one
    batched Phase B flood, and one batched Verification over the still
    active instances, with active-set compaction — an instance whose
    parts are all good (or whose budget ran out) drops out while the
    stragglers keep iterating.  Direct-mode kernels never consume the
    per-iteration ``seed`` (only the shared seed), so the wave needs no
    seeds.  Returns one entry per instance: a
    :class:`~repro.core.find_shortcut.FindShortcutResult` on success or
    the :class:`~repro.errors.ConstructionFailedError` *value* (not
    raised) on budget exhaustion, both bit-identical to the loop.

    ``instance_keys`` / ``pack_cache`` let the doubling driver reuse
    sub-batch packs across rungs whose active set repeats.
    """
    from repro.core.construct_fast import charge_verification_terms
    from repro.core.core_fast import active_parts, sampling_parameters
    from repro.core.find_shortcut import ConstructionState, FindShortcutResult
    from repro.errors import ConstructionFailedError

    size = len(topologies)
    if instance_keys is None:
        instance_keys = list(range(size))
    if pack_cache is None:
        pack_cache = {}

    remaining: List[set] = []
    acc: List[List[set]] = []
    histories: List[List] = [[] for _ in range(size)]
    iterations = [0] * size
    for i in range(size):
        state = warm_starts[i]
        if state is not None:
            # Never trust a carried state blindly — same revalidation
            # as the per-instance loop.
            state = state.revalidated_for(topologies[i], trees[i], partitions[i])
            remaining.append(set(state.remaining))
            acc.append(
                [set(state.shortcut.subgraph(p)) for p in range(partitions[i].size)]
            )
        else:
            remaining.append(set(range(partitions[i].size)))
            acc.append([set() for _ in range(partitions[i].size)])

    def snapshot(i: int) -> TreeRestrictedShortcut:
        # The accumulators only ever hold canonical (min, max) parent
        # links, so skip __init__'s per-edge re-validation.
        return TreeRestrictedShortcut._from_canonical(
            trees[i], partitions[i], [frozenset(s) for s in acc[i]]
        )

    results: List = [None] * size
    active = list(range(size))
    while True:
        still = []
        for i in active:
            if not remaining[i]:
                results[i] = FindShortcutResult(
                    shortcut=snapshot(i),
                    c=c_list[i],
                    b=b_list[i],
                    iterations=iterations[i],
                    good_history=tuple(histories[i]),
                    ledger=ledgers[i],
                )
            elif iterations[i] >= limits[i]:
                results[i] = ConstructionFailedError(
                    f"FindShortcut(c={c_list[i]}, b={b_list[i]}): "
                    f"{len(remaining[i])} parts still "
                    f"bad after {iterations[i]} iterations — parameters "
                    f"too small?",
                    iterations=iterations[i],
                    state=ConstructionState(
                        remaining=frozenset(remaining[i]),
                        shortcut=snapshot(i),
                        good_history=tuple(histories[i]),
                    ),
                )
            else:
                still.append(i)
        active = still
        if not active:
            return results

        key = tuple(instance_keys[i] for i in active)
        cached = pack_cache.get(key)
        if cached is None:
            if len(pack_cache) >= 64:
                pack_cache.clear()
            sub = BatchCSR(
                [topologies[i] for i in active],
                [trees[i] for i in active],
                [partitions[i] for i in active],
            )
            # The Lemma 3 exchange constant, array-natively: directed
            # part-internal edges per instance — bit-identical to
            # part_internal_edges() without thrashing the per-topology
            # neighbor-scan cache across interleaved partitions.
            if sub.m_total:
                internal = (
                    (sub.labels[sub.edge_u] == sub.labels[sub.edge_v])
                    & (sub.labels[sub.edge_u] >= 0)
                ).astype(np.int64)
                part_edges = (
                    2 * segment_sum(np, internal, sub.edge_offsets)
                ).tolist()
            else:
                part_edges = [0] * sub.size
            # Out-of-partition nodes (label -1) redirect to a sentinel
            # slot so mask lookups need no per-instance slicing.
            safe_labels = np.where(sub.labels >= 0, sub.labels, sub.p_total)
            pack_cache[key] = (sub, part_edges, safe_labels)
        else:
            sub, part_edges, safe_labels = cached

        # One lockstep iteration: restrict injection to each instance's
        # remaining parts, flip the per-instance shared coins.
        rem_mask = np.zeros(sub.p_total + 1, dtype=bool)
        act_mask = np.zeros(sub.p_total + 1, dtype=bool) if use_fast else None
        caps = np.empty(sub.size, dtype=np.int64)
        for k, i in enumerate(active):
            iterations[i] += 1
            base = int(sub.part_offsets[k])
            for p in remaining[i]:
                rem_mask[base + p] = True
            if use_fast:
                p_sample, tau = sampling_parameters(
                    topologies[i].n, c_list[i], gamma
                )
                caps[k] = tau - 1
                act = (
                    active_parts(
                        partitions[i],
                        mix(shared_seeds[i], iterations[i]),
                        p_sample,
                    )
                    & remaining[i]
                )
                for p in act:
                    act_mask[base + p] = True
            else:
                caps[k] = 2 * c_list[i]
        own_all = np.where(rem_mask[safe_labels], sub.labels, -1)
        own_active = (
            np.where(act_mask[safe_labels], sub.labels, -1)
            if use_fast
            else None
        )

        if use_fast:
            _n, _i, _g, unusable_nodes, rounds_a, messages_a = (
                _upward_sweep_batch(np, sub, own_active, caps)
            )
            usable = sub.tree_parent >= 0
            if unusable_nodes.size:
                usable[unusable_nodes] = False
            seen, rounds_b, messages_b = _flood_up_batch(
                np, sub, own_all, usable
            )
            entry_nodes, entry_ids = _entries_from_seen(np, sub, seen, usable)
            for k, i in enumerate(active):
                ledgers[i].charge_phase(
                    "core-fast/sample", int(rounds_a[k]), int(messages_a[k])
                )
                ledgers[i].charge_phase(
                    "core-fast/flood", int(rounds_b[k]), int(messages_b[k])
                )
        else:
            entry_nodes, entry_ids, _g, _u, rounds_s, messages_s = (
                _upward_sweep_batch(np, sub, own_all, caps)
            )
            for k, i in enumerate(active):
                ledgers[i].charge_phase(
                    "core-slow", int(rounds_s[k]), int(messages_s[k])
                )

        # Batched Verification over the tentative edge slots; the
        # ledger charge uses the same Lemma 3 terms as the loop without
        # materializing per-instance shortcut objects.
        pack = ShortcutPack.from_arrays(
            sub,
            entry_ids,
            entry_nodes,
            sub.tree_parent[entry_nodes],
            sub.tree_edge_ids()[entry_nodes],
        )
        limits3 = [3 * b_list[i] for i in active]
        count_maps = verification_counts_batch(pack, limits3)
        per_node = np.bincount(entry_nodes, minlength=sub.n_total)
        task_congestion = segment_max(np, per_node, sub.node_offsets, empty=0)
        edge_slots = segment_sum(np, per_node, sub.node_offsets)

        good_global = np.zeros(max(sub.p_total, 1), dtype=bool)
        for k, i in enumerate(active):
            charge_verification_terms(
                ledgers[i],
                limits3[k],
                trees[i].height,
                int(task_congestion[k]),
                int(edge_slots[k]),
                part_edges[k],
                topologies[i].m,
            )
            counts = count_maps[k]
            good = frozenset(
                p
                for p in remaining[i]
                if counts[p] is not None and counts[p] <= limits3[k]
            )
            histories[i].append(good)
            ledgers[i].charge_phase(
                "termination-check", 2 * trees[i].height + 1
            )
            if good:
                base = int(sub.part_offsets[k])
                for p in good:
                    good_global[base + p] = True
                remaining[i] -= good

        # Freeze the good parts' edge slots into the accumulators.
        if entry_ids.size:
            mask = good_global[entry_ids]
            g_nodes = entry_nodes[mask]
            if g_nodes.size:
                g_inst = sub.instance_of_node[g_nodes]
                bases = sub.node_offsets[g_inst]
                v_local = g_nodes - bases
                p_local = sub.tree_parent[g_nodes] - bases
                lo = np.minimum(v_local, p_local).tolist()
                hi = np.maximum(v_local, p_local).tolist()
                parts_local = (
                    entry_ids[mask] - sub.part_offsets[g_inst]
                ).tolist()
                for idx, k in enumerate(g_inst.tolist()):
                    acc[active[k]][parts_local[idx]].add((lo[idx], hi[idx]))


def find_shortcut_batch(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    cs: Union[int, Sequence[int]],
    bs: Union[int, Sequence[int]],
    *,
    use_fast: bool = True,
    seeds: Union[int, Sequence[int]] = 0,
    shared_seeds=None,
    gamma: float = 2.0,
    max_iterations=None,
    ledgers: Optional[Sequence[Optional[RoundLedger]]] = None,
    warm_starts: Optional[Sequence] = None,
    mode: Optional[str] = None,
    return_errors: bool = False,
    batch: Optional[str] = None,
) -> List:
    """Batch-axis entry point of :func:`repro.core.find_shortcut.find_shortcut`.

    ``batch="loop"`` (the default) runs the per-instance construction
    with the selected ``mode``; ``batch="vector"`` runs the lockstep
    wave driver — the batch twin of ``mode="direct"``, with active-set
    compaction across instances per iteration (``mode`` does not apply
    to it).  Results, good histories, ledgers, and failure states match
    the direct-mode loop bit-for-bit.

    Each entry of the returned list is a
    :class:`~repro.core.find_shortcut.FindShortcutResult`; with
    ``return_errors=True`` a failed instance contributes its
    :class:`~repro.errors.ConstructionFailedError` value instead (the
    doubling driver's food), otherwise the first failure (in instance
    order) is raised.
    """
    from repro.core.construct_fast import share_randomness_cost
    from repro.core.find_shortcut import default_iteration_limit, find_shortcut
    from repro.errors import ConstructionFailedError

    size = len(topologies)
    if len(trees) != size or len(partitions) != size:
        raise ShortcutError(
            f"expected {size} trees and partitions, got "
            f"{len(trees)} and {len(partitions)}"
        )
    c_list = _c_list(size, cs)
    b_list = _c_list(size, bs)
    seed_list = _broadcast(size, seeds, 0)
    shared_list = _broadcast(size, shared_seeds, None)
    limit_list = _broadcast(size, max_iterations, None)
    ledger_list = list(ledgers) if ledgers is not None else [None] * size
    warm_list = list(warm_starts) if warm_starts is not None else [None] * size
    if len(ledger_list) != size or len(warm_list) != size:
        raise ShortcutError(
            f"expected {size} ledgers and warm starts, got "
            f"{len(ledger_list)} and {len(warm_list)}"
        )

    if resolve_batch(batch) != "vector":
        results: List = []
        for i in range(size):
            try:
                results.append(
                    find_shortcut(
                        topologies[i],
                        trees[i],
                        partitions[i],
                        c_list[i],
                        b_list[i],
                        use_fast=use_fast,
                        seed=seed_list[i],
                        shared_seed=shared_list[i],
                        gamma=gamma,
                        max_iterations=limit_list[i],
                        ledger=ledger_list[i],
                        mode=mode,
                        warm_start=warm_list[i],
                    )
                )
            except ConstructionFailedError as error:
                if not return_errors:
                    raise
                results.append(error)
        return results

    np = require_numpy()
    ledger_vec = [
        ledger if ledger is not None else RoundLedger(barrier_depth=trees[i].height)
        for i, ledger in enumerate(ledger_list)
    ]
    limit_vec = [
        limit if limit is not None else default_iteration_limit(partitions[i].size)
        for i, limit in enumerate(limit_list)
    ]
    shared_vec = list(shared_list)
    if use_fast:
        for i in range(size):
            if shared_vec[i] is None:
                shared_vec[i] = draw_shared_seed(topologies[i].n, seed_list[i])
                rounds, messages = share_randomness_cost(
                    topologies[i].n, trees[i].height
                )
                ledger_vec[i].charge_phase("share-randomness", rounds, messages)
    results = _find_shortcut_wave(
        np,
        topologies,
        trees,
        partitions,
        c_list,
        b_list,
        use_fast=use_fast,
        shared_seeds=shared_vec,
        gamma=gamma,
        limits=limit_vec,
        ledgers=ledger_vec,
        warm_starts=warm_list,
    )
    if not return_errors:
        for result in results:
            if isinstance(result, ConstructionFailedError):
                raise result
    return results


def find_shortcut_doubling_batch(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    *,
    c_starts: Union[int, Sequence[int]] = 1,
    b_starts: Union[int, Sequence[int]] = 1,
    use_fast: bool = True,
    seeds: Union[int, Sequence[int]] = 0,
    shared_seeds=None,
    gamma: float = 2.0,
    max_trials: int = 64,
    ledgers: Optional[Sequence[Optional[RoundLedger]]] = None,
    mode: Optional[str] = None,
    warm_start: bool = True,
    initial_states: Optional[Sequence] = None,
    batch: Optional[str] = None,
) -> List:
    """Batch-axis entry point of
    :func:`repro.core.doubling.find_shortcut_doubling`.

    ``batch="loop"`` (the default) runs the Appendix A search per
    instance with the selected ``mode``; ``batch="vector"`` climbs the
    whole ``(c, b)`` doubling ladder in lockstep rungs — the batch twin
    of ``mode="direct"`` — with two levels of active-set compaction:
    instances whose search succeeds drop off the ladder while
    stragglers climb with doubled estimates (carrying their frozen
    warm-start parts), and inside every rung the wave driver compacts
    per iteration.  Trials (including the per-rung ledger-delta
    breakdown), results, and ledgers match the direct-mode loop
    bit-for-bit.  ``c_starts`` / ``b_starts`` / ``initial_states`` are
    the warm-start entry points of incremental repair.
    """
    from repro.core.construct_fast import share_randomness_cost
    from repro.core.doubling import (
        DoublingResult,
        Trial,
        find_shortcut_doubling,
    )
    from repro.errors import ConstructionFailedError

    size = len(topologies)
    if len(trees) != size or len(partitions) != size:
        raise ShortcutError(
            f"expected {size} trees and partitions, got "
            f"{len(trees)} and {len(partitions)}"
        )
    c_list = [max(1, int(c)) for c in _broadcast(size, c_starts, 1)]
    b_list = [max(1, int(b)) for b in _broadcast(size, b_starts, 1)]
    seed_list = _broadcast(size, seeds, 0)
    shared_list = _broadcast(size, shared_seeds, None)
    ledger_list = list(ledgers) if ledgers is not None else [None] * size
    state_list = (
        list(initial_states) if initial_states is not None else [None] * size
    )
    if len(ledger_list) != size or len(state_list) != size:
        raise ShortcutError(
            f"expected {size} ledgers and initial states, got "
            f"{len(ledger_list)} and {len(state_list)}"
        )

    if resolve_batch(batch) != "vector":
        return [
            find_shortcut_doubling(
                topologies[i],
                trees[i],
                partitions[i],
                c_start=c_list[i],
                b_start=b_list[i],
                use_fast=use_fast,
                seed=seed_list[i],
                shared_seed=shared_list[i],
                gamma=gamma,
                max_trials=max_trials,
                ledger=ledger_list[i],
                mode=mode,
                warm_start=warm_start,
                initial_state=state_list[i],
            )
            for i in range(size)
        ]

    np = require_numpy()
    ledger_vec = [
        ledger if ledger is not None else RoundLedger(barrier_depth=trees[i].height)
        for i, ledger in enumerate(ledger_list)
    ]
    shared_vec = list(shared_list)
    if use_fast:
        for i in range(size):
            if shared_vec[i] is None:
                shared_vec[i] = draw_shared_seed(topologies[i].n, seed_list[i])
                rounds, messages = share_randomness_cost(
                    topologies[i].n, trees[i].height
                )
                ledger_vec[i].charge_phase("share-randomness", rounds, messages)
    carried = list(state_list)
    budgets = [
        max(3, math.ceil(math.log2(partitions[i].size + 1)) + 2)
        for i in range(size)
    ]
    trials: List[List] = [[] for _ in range(size)]
    results: List = [None] * size
    climbing = list(range(size))
    pack_cache: Dict = {}
    for _trial_index in range(max_trials):
        if not climbing:
            break
        before = {
            i: (ledger_vec[i].total_rounds, ledger_vec[i].total_messages)
            for i in climbing
        }
        wave = _find_shortcut_wave(
            np,
            [topologies[i] for i in climbing],
            [trees[i] for i in climbing],
            [partitions[i] for i in climbing],
            [c_list[i] for i in climbing],
            [b_list[i] for i in climbing],
            use_fast=use_fast,
            shared_seeds=[shared_vec[i] for i in climbing],
            gamma=gamma,
            limits=[budgets[i] for i in climbing],
            ledgers=[ledger_vec[i] for i in climbing],
            warm_starts=[carried[i] for i in climbing],
            instance_keys=climbing,
            pack_cache=pack_cache,
        )
        next_climbing = []
        for k, i in enumerate(climbing):
            outcome = wave[k]
            delta_rounds = ledger_vec[i].total_rounds - before[i][0]
            delta_messages = ledger_vec[i].total_messages - before[i][1]
            if isinstance(outcome, ConstructionFailedError):
                trials[i].append(
                    Trial(
                        c=c_list[i],
                        b=b_list[i],
                        succeeded=False,
                        iterations=outcome.iterations,
                        rounds=delta_rounds,
                        messages=delta_messages,
                    )
                )
                if warm_start and outcome.state is not None:
                    carried[i] = outcome.state
                c_list[i] *= 2
                b_list[i] *= 2
                next_climbing.append(i)
            else:
                trials[i].append(
                    Trial(
                        c=c_list[i],
                        b=b_list[i],
                        succeeded=True,
                        iterations=outcome.iterations,
                        rounds=delta_rounds,
                        messages=delta_messages,
                    )
                )
                results[i] = DoublingResult(
                    result=outcome, trials=tuple(trials[i]), ledger=ledger_vec[i]
                )
        climbing = next_climbing
    if climbing:
        i = climbing[0]
        raise ConstructionFailedError(
            f"doubling search failed after {max_trials} trials "
            f"(last estimates c={c_list[i] // 2}, b={b_list[i] // 2})"
        )
    return results


# ----------------------------------------------------------------------
# Fused construct → measure → verify pipeline (the E21 workload)
# ----------------------------------------------------------------------


class PipelineResult(NamedTuple):
    """Per-instance result of the construct → measure → verify pipeline."""

    report: QualityReport
    counts: Dict[int, Optional[int]]
    rounds: int
    messages: int


def pipeline_loop(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    cs: Union[int, Sequence[int]],
    b_limits: Sequence[int],
    *,
    with_dilation: bool = True,
) -> List[PipelineResult]:
    """Per-instance reference pipeline: construct, measure, verify.

    One Algorithm 1 construction, one quality measurement, and one
    verification count per instance, all through the per-instance fast
    kernels — the executable reference for
    :func:`pipeline_batch_vector`, and the grid workload the E21
    benchmark times.
    """
    from repro.core import quality_fast
    from repro.core.construct_fast import (
        core_slow_direct,
        verification_counts_direct,
    )

    c_list = _c_list(len(topologies), cs)
    results = []
    for topology, tree, partition, c, limit in zip(
        topologies, trees, partitions, c_list, b_limits
    ):
        outcome = core_slow_direct(topology, tree, partition, c)
        report = quality_fast.measure(
            outcome.shortcut, topology, with_dilation=with_dilation
        )
        counts = verification_counts_direct(topology, outcome.shortcut, limit)
        results.append(
            PipelineResult(report, counts, outcome.rounds, outcome.messages)
        )
    return results


def pipeline_batch_vector(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    cs: Union[int, Sequence[int]],
    b_limits: Sequence[int],
    *,
    with_dilation: bool = True,
) -> List[PipelineResult]:
    """Fused batch pipeline — construct, measure, and verify a whole
    grid without materializing per-instance shortcut objects.

    The Algorithm 1 sweep output (usable ``(node, id)`` pairs) *is* the
    edge-slot array of the constructed shortcuts, so the quality and
    verification kernels consume it directly through
    :meth:`ShortcutPack.from_arrays`; the per-instance loop must round
    trip the same data through ``TreeRestrictedShortcut`` between each
    stage.  Reports and count maps are bit-identical to
    :func:`pipeline_loop` over the same instances.
    """
    np = require_numpy()
    batch = BatchCSR(topologies, trees, partitions)
    c_list = _c_list(batch.size, cs)
    caps = 2 * np.asarray(c_list, dtype=np.int64)
    entry_nodes, entry_ids, _group_starts, _unusable, rounds, messages = (
        _upward_sweep_batch(np, batch, batch.labels, caps)
    )

    # Each usable (node, id) pair is one edge slot: part ``id`` uses the
    # tree edge from ``node`` up to its parent.
    pack = ShortcutPack.from_arrays(
        batch,
        entry_ids,
        entry_nodes,
        batch.tree_parent[entry_nodes],
        batch.tree_edge_ids()[entry_nodes],
    )
    reports = measure_batch_vector(
        None, None, with_dilation=with_dilation, pack=pack
    )
    counts = verification_counts_batch(pack, b_limits)
    return [
        PipelineResult(
            reports[b], counts[b], int(rounds[b]), int(messages[b])
        )
        for b in range(batch.size)
    ]


def run_pipeline(
    topologies: Sequence[Topology],
    trees: Sequence[SpanningTree],
    partitions: Sequence[Partition],
    cs: Union[int, Sequence[int]],
    b_limits: Sequence[int],
    *,
    with_dilation: bool = True,
    batch: Optional[str] = None,
) -> List[PipelineResult]:
    """Construct → measure → verify a grid, on the selected batch axis."""
    if resolve_batch(batch) == "vector":
        return pipeline_batch_vector(
            topologies, trees, partitions, cs, b_limits,
            with_dilation=with_dilation,
        )
    return pipeline_loop(
        topologies, trees, partitions, cs, b_limits,
        with_dilation=with_dilation,
    )


__all__ = [
    "BATCHES",
    "DEFAULT_BATCH",
    "get_default_batch",
    "set_default_batch",
    "using_batch",
    "resolve_batch",
    "batch_parameter",
    "numpy_available",
    "pack_batch",
    "pack_shortcuts",
    "block_counts_batch",
    "shortcut_congestion_batch",
    "congestion_batch",
    "dilation_batch",
    "measure_batch",
    "measure_batch_vector",
    "verification_batch",
    "verification_counts_batch",
    "core_slow_batch",
    "find_shortcut_batch",
    "find_shortcut_doubling_batch",
    "PipelineResult",
    "pipeline_loop",
    "pipeline_batch_vector",
    "run_pipeline",
]
