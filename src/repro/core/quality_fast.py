"""Array-kernel fast path for the quality measures.

This module mirrors the engine split of :mod:`repro.congest.engine` at
the analysis layer: :mod:`repro.core.quality` remains the executable
reference (dict-of-set walks, transparently faithful to Definitions 1
and 3), while the functions here compute the *same* quantities on the
flat-array structures of :mod:`repro.graphs.csr`:

* **block components / counts** — an int-array union-find with path
  halving over a reusable ``parent`` array (reset via a touched list,
  not reallocated per part);
* **congestion** — counting arrays indexed by dense edge id instead of
  a per-edge ``set`` of parts;
* **dilation** — frontier-list BFS over a local adjacency of each
  communication subgraph, with an exact eccentricity-bounding early
  exit (:func:`repro.graphs.csr.bounded_diameter`): each BFS pins
  every node's eccentricity into an interval, nodes whose interval
  cannot affect the diameter are dropped, and the scan usually ends
  after a handful of sources instead of one BFS per node.

Every function returns bit-for-bit the same result as its reference
twin; the differential suite in
``tests/core/test_quality_equivalence.py`` and the property suite in
``tests/properties/test_prop_quality.py`` enforce that, exactly as the
engine-equivalence suite licenses the batched engine.  Selection is
routed through ``quality.measure(..., kernel=...)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.congest.topology import Topology
from repro.core.quality import BlockComponent, QualityReport
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.csr import adjacency_csr, bounded_diameter, edge_ids, tree_arrays


def _find(parent: List[int], x: int) -> int:
    """Union-find root with path halving."""
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = parent[x]
    return x


def block_components(
    shortcut: TreeRestrictedShortcut, index: int
) -> List[BlockComponent]:
    """Block components of part ``index`` — fast twin of
    :func:`repro.core.quality.block_components`."""
    depth = tree_arrays(shortcut.tree).depth
    members = shortcut.partition.members(index)
    labels = shortcut.partition.labels
    parent = list(range(shortcut.partition.n))

    involved = set(members)
    for u, v in shortcut.subgraph(index):
        involved.add(u)
        involved.add(v)
        ru, rv = _find(parent, u), _find(parent, v)
        if ru != rv:
            parent[ru] = rv

    groups: Dict[int, List[int]] = {}
    for node in involved:
        groups.setdefault(_find(parent, node), []).append(node)

    blocks = []
    for nodes in groups.values():
        if not any(labels[v] == index for v in nodes):
            continue  # not a *block* component: it misses P_i entirely
        root = min(nodes, key=lambda v: (depth[v], v))
        blocks.append(
            BlockComponent(
                part=index,
                root=root,
                root_depth=depth[root],
                nodes=frozenset(nodes),
            )
        )
    blocks.sort(key=lambda blk: (blk.root_depth, blk.root))
    return blocks


def block_counts(shortcut: TreeRestrictedShortcut) -> List[int]:
    """Number of block components of each part (array union-find).

    One ``parent`` array serves every part: only entries touched by a
    part's edges are reset before the next part, so the total cost is
    O(n + Σ|H_i| α) instead of a dict rebuild per part.
    """
    partition = shortcut.partition
    parent = list(range(partition.n))
    counts: List[int] = []
    for index in range(partition.size):
        touched: List[int] = []
        for u, v in shortcut.subgraph(index):
            touched.append(u)
            touched.append(v)
            ru, rv = _find(parent, u), _find(parent, v)
            if ru != rv:
                parent[ru] = rv
        roots = set()
        for v in partition.members(index):
            roots.add(_find(parent, v))
        counts.append(len(roots))
        # Every written entry is an edge endpoint (unions write at
        # roots reached from endpoints; halving writes along those
        # paths), so resetting the endpoints restores the identity.
        for v in touched:
            parent[v] = v
    return counts


def block_parameter(shortcut: TreeRestrictedShortcut) -> int:
    """The block parameter ``b``; 0 for a zero-part shortcut."""
    return max(block_counts(shortcut), default=0)


def shortcut_congestion(shortcut: TreeRestrictedShortcut) -> int:
    """Max number of subgraphs ``H_i`` sharing one tree edge.

    Counts multiplicities directly instead of materialising the
    ``edge -> frozenset(parts)`` map.
    """
    count: Dict[tuple, int] = {}
    best = 0
    for subgraph in shortcut.subgraphs:
        for edge in subgraph:
            value = count.get(edge, 0) + 1
            count[edge] = value
            if value > best:
                best = value
    return best


def congestion(shortcut: TreeRestrictedShortcut, topology: Topology) -> int:
    """Definition 1 congestion via counting arrays over dense edge ids."""
    index_of = edge_ids(topology)
    count = [0] * topology.m
    for subgraph in shortcut.subgraphs:
        for edge in subgraph:
            count[index_of[edge]] += 1
    labels = shortcut.partition.labels
    best = 0
    for i, (u, v) in enumerate(topology.edges):
        users = count[i]
        lu = labels[u]
        # At most one part contains both endpoints; it uses the edge
        # through G[P_i] unless the edge is already counted via H_i.
        if lu >= 0 and lu == labels[v] and (u, v) not in shortcut.subgraph(lu):
            users += 1
        if users > best:
            best = users
    return best


def dilation(
    shortcut: TreeRestrictedShortcut,
    topology: Topology,
    index: Optional[int] = None,
) -> int:
    """Definition 1 dilation via frontier-list BFS with early exit.

    Raises :class:`ShortcutError` on the first disconnected
    ``G[P_i] + H_i``, like the reference.
    """
    csr = adjacency_csr(topology)
    labels = shortcut.partition.labels
    indices = range(shortcut.size) if index is None else [index]
    worst = 0
    for i in indices:
        diameter = _communication_diameter(shortcut, csr, labels, i)
        if diameter > worst:
            worst = diameter
    return worst


def _communication_diameter(shortcut, csr, labels, index: int) -> int:
    members = shortcut.partition.members(index)
    subgraph_edges = shortcut.subgraph(index)

    # Local id space: part members plus H_i endpoints.
    local: Dict[int, int] = {}
    nodes: List[int] = []
    for v in members:
        local[v] = len(nodes)
        nodes.append(v)
    for u, v in subgraph_edges:
        if u not in local:
            local[u] = len(nodes)
            nodes.append(u)
        if v not in local:
            local[v] = len(nodes)
            nodes.append(v)
    k = len(nodes)
    if k == 1:
        return 0

    adjacency: List[List[int]] = [[] for _ in range(k)]
    indptr, neighbors = csr.indptr, csr.indices
    for v in members:
        lv = local[v]
        row = adjacency[lv]
        for w in neighbors[indptr[v] : indptr[v + 1]]:
            if labels[w] == index:
                row.append(local[w])
    for u, v in subgraph_edges:
        adjacency[local[u]].append(local[v])
        adjacency[local[v]].append(local[u])

    diameter = bounded_diameter(adjacency)
    if diameter < 0:
        raise ShortcutError(
            f"G[P_{index}] + H_{index} is disconnected; dilation is infinite"
        )
    return diameter


def measure(
    shortcut: TreeRestrictedShortcut,
    topology: Topology,
    with_dilation: bool = True,
) -> QualityReport:
    """Fast twin of :func:`repro.core.quality.measure`."""
    counts = tuple(block_counts(shortcut))
    return QualityReport(
        congestion=congestion(shortcut, topology),
        shortcut_congestion=shortcut_congestion(shortcut),
        block_parameter=max(counts) if counts else 0,
        dilation=dilation(shortcut, topology) if with_dilation else None,
        block_counts=counts,
        tree_depth=shortcut.tree.height,
    )
