"""Quality measures for shortcuts: congestion, dilation, block parameter.

Implements Definitions 1 and 3 and Lemma 1 of the paper:

* **congestion** — the maximum, over edges ``e``, of the number of
  communication subgraphs ``G[P_i] + H_i`` containing ``e``;
* **dilation** — the maximum diameter of any ``G[P_i] + H_i``;
* **block components** (Definition 3) — connected components of
  ``(V, H_i)`` that intersect ``P_i``; the **block parameter** bounds
  their number over all parts;
* **Lemma 1** — ``dilation <= b * (2 * depth(T) + 1)``.

This module is the *executable reference*: every function walks the
obvious dict-of-set structures so that it reads like the definitions.
The hot path used by experiments lives in
:mod:`repro.core.quality_fast` (flat-array kernels over
:mod:`repro.graphs.csr` structures) and is selected through
:func:`measure`'s ``kernel`` argument — mirroring the reference/batched
engine split of :mod:`repro.congest.engine`.  The differential suite in
``tests/core/test_quality_equivalence.py`` proves both kernels return
bit-for-bit identical reports.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.congest.topology import Edge, Topology, canonical_edge
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

# ----------------------------------------------------------------------
# Kernel registry (reference vs fast), mirroring the engine registry
# ----------------------------------------------------------------------

KERNELS: Tuple[str, ...] = ("reference", "fast")

DEFAULT_KERNEL = "fast"

_default_kernel = DEFAULT_KERNEL


def get_default_kernel() -> str:
    """Name of the quality kernel used when none is specified."""
    return _default_kernel


def set_default_kernel(kernel: Optional[str]) -> str:
    """Set the process-wide default kernel; returns the previous name."""
    global _default_kernel
    previous = _default_kernel
    _default_kernel = resolve_kernel(kernel)
    return previous


@contextmanager
def using_kernel(kernel: Optional[str]) -> Iterator[str]:
    """Temporarily override the default kernel (``None`` is a no-op)."""
    if kernel is None:
        yield _default_kernel
        return
    previous = set_default_kernel(kernel)
    try:
        yield _default_kernel
    finally:
        set_default_kernel(previous)


def resolve_kernel(kernel: Optional[str]) -> str:
    """Validate a kernel name (``None`` means the current default)."""
    if kernel is None:
        return _default_kernel
    if kernel not in KERNELS:
        raise ShortcutError(
            f"unknown quality kernel {kernel!r}; available: {sorted(KERNELS)}"
        )
    return kernel


@dataclass(frozen=True)
class BlockComponent:
    """One block component of a shortcut subgraph ``H_i``.

    A connected component of the spanning subgraph ``(V, H_i)`` that
    intersects ``P_i``.  Components of a forest are subtrees, so the
    minimum-depth node — the *block root* — is unique.
    """

    part: int
    root: int
    root_depth: int
    nodes: FrozenSet[int]

    @property
    def size(self) -> int:
        return len(self.nodes)


def block_components(
    shortcut: TreeRestrictedShortcut, index: int
) -> List[BlockComponent]:
    """Block components of part ``index`` (Definition 3).

    Includes singleton components: a node of ``P_i`` touched by no
    ``H_i`` edge is its own component of ``(V, H_i)``.
    Components that do not intersect ``P_i`` are excluded, per the
    definition.
    """
    tree = shortcut.tree
    partition = shortcut.partition
    members = partition.members(index)
    edges = shortcut.subgraph(index)

    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    involved: Set[int] = set(members)
    for u, v in edges:
        involved.add(u)
        involved.add(v)
        union(u, v)

    groups: Dict[int, Set[int]] = {}
    for node in involved:
        groups.setdefault(find(node), set()).add(node)

    blocks = []
    for nodes in groups.values():
        if not (nodes & members):
            continue  # not a *block* component: it misses P_i entirely
        root = min(nodes, key=lambda v: (tree.depth(v), v))
        blocks.append(
            BlockComponent(
                part=index,
                root=root,
                root_depth=tree.depth(root),
                nodes=frozenset(nodes),
            )
        )
    blocks.sort(key=lambda blk: (blk.root_depth, blk.root))
    return blocks


def block_counts(shortcut: TreeRestrictedShortcut) -> List[int]:
    """Number of block components of each part."""
    return [len(block_components(shortcut, i)) for i in range(shortcut.size)]


def block_parameter(shortcut: TreeRestrictedShortcut) -> int:
    """The block parameter ``b``: max block-component count over parts.

    A shortcut over a zero-part partition has block parameter 0 (there
    is no part to route for).
    """
    return max(block_counts(shortcut), default=0)


def shortcut_congestion(shortcut: TreeRestrictedShortcut) -> int:
    """Max number of subgraphs ``H_i`` sharing one tree edge.

    This is the quantity the constructions bound directly (an edge
    "assigned to at most 2c parts").
    """
    edge_map = shortcut.edge_map
    if not edge_map:
        return 0
    return max(len(parts) for parts in edge_map.values())


def congestion(shortcut: TreeRestrictedShortcut, topology: Topology) -> int:
    """Definition 1 congestion: subgraphs ``G[P_i] + H_i`` per edge.

    For each graph edge this counts the parts whose *communication
    subgraph* uses it: parts with the edge in ``H_i`` plus (at most
    one) part containing both endpoints.  Since parts are disjoint,
    this exceeds :func:`shortcut_congestion` by at most one.
    """
    partition = shortcut.partition
    best = 0
    edge_map = shortcut.edge_map
    for u, v in topology.edges:
        edge = canonical_edge(u, v)
        users = set(edge_map.get(edge, ()))
        pu = partition.part_of(u)
        if pu is not None and pu == partition.part_of(v):
            users.add(pu)
        best = max(best, len(users))
    return best


def dilation(
    shortcut: TreeRestrictedShortcut,
    topology: Topology,
    index: Optional[int] = None,
) -> int:
    """Definition 1 dilation: max diameter of ``G[P_i] + H_i``.

    With ``index`` given, returns that single part's diameter.
    Raises :class:`ShortcutError` if some ``G[P_i] + H_i`` is
    disconnected (then its diameter — and the dilation — is infinite).
    """
    indices = range(shortcut.size) if index is None else [index]
    worst = 0
    for i in indices:
        worst = max(worst, _communication_diameter(shortcut, topology, i))
    return worst


def _communication_diameter(
    shortcut: TreeRestrictedShortcut, topology: Topology, index: int
) -> int:
    members = shortcut.partition.members(index)
    adjacency: Dict[int, Set[int]] = {v: set() for v in members}
    for u in members:
        for w in topology.neighbors(u):
            if w in members:
                adjacency[u].add(w)
    for u, v in shortcut.subgraph(index):
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    nodes = list(adjacency)
    worst = 0
    for source in nodes:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in adjacency[u]:
                if w not in dist:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        if len(dist) != len(nodes):
            raise ShortcutError(
                f"G[P_{index}] + H_{index} is disconnected; dilation is infinite"
            )
        worst = max(worst, max(dist.values()))
    return worst


def lemma1_bound(block: int, tree_depth: int) -> int:
    """Lemma 1: a block parameter ``b`` implies dilation ``<= b(2D + 1)``."""
    return block * (2 * tree_depth + 1)


@dataclass(frozen=True)
class QualityReport:
    """All quality measures of one shortcut, bundled for experiments."""

    congestion: int
    shortcut_congestion: int
    block_parameter: int
    dilation: Optional[int]
    block_counts: Tuple[int, ...]
    tree_depth: int

    @property
    def lemma1_dilation_bound(self) -> int:
        return lemma1_bound(self.block_parameter, self.tree_depth)

    def __str__(self) -> str:
        dil = "-" if self.dilation is None else str(self.dilation)
        return (
            f"congestion={self.congestion} block={self.block_parameter} "
            f"dilation={dil} (Lemma1 bound {self.lemma1_dilation_bound})"
        )


def measure(
    shortcut: TreeRestrictedShortcut,
    topology: Topology,
    with_dilation: bool = True,
    kernel: Optional[str] = None,
) -> QualityReport:
    """Compute a full :class:`QualityReport` for a shortcut.

    ``kernel`` selects the implementation: ``"fast"`` (the default —
    flat-array union-find, counting-array congestion, and frontier BFS
    dilation with an eccentricity early-exit) or ``"reference"`` (this
    module's dict-of-set definitions).  Both return bit-for-bit
    identical reports.

    Dilation remains the expensive field — O(n · m) per part on the
    reference kernel, and still all-pairs-BFS-shaped (though early-exit
    pruned) on the fast one — so disable it for very large sweeps
    (Lemma 1 bounds it from the block parameter anyway).
    """
    if resolve_kernel(kernel) == "fast":
        from repro.core import quality_fast

        return quality_fast.measure(shortcut, topology, with_dilation=with_dilation)
    counts = tuple(block_counts(shortcut))
    return QualityReport(
        congestion=congestion(shortcut, topology),
        shortcut_congestion=shortcut_congestion(shortcut),
        block_parameter=max(counts) if counts else 0,
        dilation=dilation(shortcut, topology) if with_dilation else None,
        block_counts=counts,
        tree_depth=shortcut.tree.height,
    )
