"""Shortcut objects (Definitions 1 and 2 of the paper).

A *shortcut* assigns each part ``P_i`` an auxiliary edge set ``H_i``
that the part may use for internal communication on top of ``G[P_i]``.
A *tree-restricted* shortcut (Definition 2) additionally requires every
``H_i`` to consist of edges of a fixed rooted spanning tree ``T``.

:class:`TreeRestrictedShortcut` is the central object of this library:
the constructions of Section 5 produce one, the routing schemes of
Section 4.3 consume one, and :mod:`repro.core.quality` measures one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.congest.topology import Edge, Topology, canonical_edge
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


class GeneralShortcut:
    """A shortcut in the sense of Definition 1 (no tree restriction).

    Stored as one edge set per part.  Only used for comparisons and for
    validating that tree-restricted shortcuts are a special case.
    """

    __slots__ = ("partition", "_subgraphs")

    def __init__(
        self, partition: Partition, subgraphs: Sequence[Iterable[Edge]]
    ) -> None:
        if len(subgraphs) != partition.size:
            raise ShortcutError(
                f"expected {partition.size} subgraphs, got {len(subgraphs)}"
            )
        self.partition = partition
        self._subgraphs: Tuple[FrozenSet[Edge], ...] = tuple(
            frozenset(canonical_edge(u, v) for u, v in sub) for sub in subgraphs
        )

    @property
    def size(self) -> int:
        """Number of parts."""
        return self.partition.size

    def subgraph(self, index: int) -> FrozenSet[Edge]:
        """The edge set ``H_i``."""
        return self._subgraphs[index]


class TreeRestrictedShortcut:
    """A ``T``-restricted shortcut (Definition 2): every ``H_i ⊆ E_T``.

    Parameters
    ----------
    tree:
        The rooted spanning tree ``T``.
    partition:
        The parts ``P_1 .. P_N``.
    subgraphs:
        ``subgraphs[i]`` is the edge set ``H_i``; every edge must be a
        tree edge.
    """

    __slots__ = ("tree", "partition", "_subgraphs", "_edge_map")

    def __init__(
        self,
        tree: SpanningTree,
        partition: Partition,
        subgraphs: Sequence[Iterable[Edge]],
    ) -> None:
        if len(subgraphs) != partition.size:
            raise ShortcutError(
                f"expected {partition.size} subgraphs, got {len(subgraphs)}"
            )
        normalised: List[FrozenSet[Edge]] = []
        for index, subgraph in enumerate(subgraphs):
            edges = frozenset(canonical_edge(u, v) for u, v in subgraph)
            for edge in edges:
                if edge not in tree.edges:
                    raise ShortcutError(
                        f"H_{index} contains non-tree edge {edge}; a "
                        f"T-restricted shortcut may only use tree edges"
                    )
            normalised.append(edges)
        self.tree = tree
        self.partition = partition
        self._subgraphs: Tuple[FrozenSet[Edge], ...] = tuple(normalised)
        self._edge_map: Optional[Dict[Edge, FrozenSet[int]]] = None

    @classmethod
    def _from_canonical(
        cls,
        tree: SpanningTree,
        partition: Partition,
        subgraphs: Sequence[FrozenSet[Edge]],
    ) -> "TreeRestrictedShortcut":
        """Internal: build from already-canonical tree-edge frozensets.

        The batched kernels emit ``(min, max)`` parent links read
        straight off the tree arrays, so every subgraph is a frozenset
        of canonical tree edges by construction; callers take on the
        invariant that :meth:`__init__` would otherwise re-check.
        """
        shortcut = cls.__new__(cls)
        shortcut.tree = tree
        shortcut.partition = partition
        shortcut._subgraphs = tuple(subgraphs)
        shortcut._edge_map = None
        return shortcut

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of parts (the paper's ``N``)."""
        return self.partition.size

    def subgraph(self, index: int) -> FrozenSet[Edge]:
        """The edge set ``H_i``."""
        return self._subgraphs[index]

    @property
    def subgraphs(self) -> Tuple[FrozenSet[Edge], ...]:
        """All subgraphs ``H_1 .. H_N``."""
        return self._subgraphs

    @property
    def edge_map(self) -> Dict[Edge, FrozenSet[int]]:
        """Mapping ``tree edge -> set of parts whose H_i contains it``."""
        if self._edge_map is None:
            accumulator: Dict[Edge, set] = {}
            for index, subgraph in enumerate(self._subgraphs):
                for edge in subgraph:
                    accumulator.setdefault(edge, set()).add(index)
            self._edge_map = {e: frozenset(s) for e, s in accumulator.items()}
        return self._edge_map

    def parts_using(self, u: int, v: int) -> FrozenSet[int]:
        """Parts whose shortcut subgraph contains the tree edge ``{u, v}``."""
        return self.edge_map.get(canonical_edge(u, v), frozenset())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_map(
        cls,
        tree: SpanningTree,
        partition: Partition,
        edge_map: Mapping[Edge, Iterable[int]],
    ) -> "TreeRestrictedShortcut":
        """Build from a per-edge assignment (the constructions' output)."""
        subgraphs: List[set] = [set() for _ in range(partition.size)]
        for edge, parts in edge_map.items():
            for index in parts:
                if not 0 <= index < partition.size:
                    raise ShortcutError(f"edge {edge} assigned to bad part {index}")
                subgraphs[index].add(canonical_edge(*edge))
        return cls(tree, partition, subgraphs)

    @classmethod
    def empty(
        cls, tree: SpanningTree, partition: Partition
    ) -> "TreeRestrictedShortcut":
        """The trivial shortcut with ``H_i = ∅`` for all parts."""
        return cls(tree, partition, [frozenset()] * partition.size)

    def restricted_to(self, keep: Iterable[int]) -> "TreeRestrictedShortcut":
        """Zero out all subgraphs except those in ``keep``.

        Used by FindShortcut when only the *good* parts of an iteration
        retain their computed subgraphs.
        """
        keep_set = set(keep)
        subgraphs = [
            self._subgraphs[i] if i in keep_set else frozenset()
            for i in range(self.size)
        ]
        return TreeRestrictedShortcut(self.tree, self.partition, subgraphs)

    def merged_with(
        self, other: "TreeRestrictedShortcut"
    ) -> "TreeRestrictedShortcut":
        """Per-part union of two shortcuts over the same tree/partition.

        FindShortcut accumulates the good subgraphs of successive
        iterations this way; congestion adds up, as in Theorem 3.
        """
        if other.tree is not self.tree and other.tree.edges != self.tree.edges:
            raise ShortcutError("cannot merge shortcuts over different trees")
        if other.partition is not self.partition:
            raise ShortcutError("cannot merge shortcuts over different partitions")
        subgraphs = [
            self._subgraphs[i] | other._subgraphs[i] for i in range(self.size)
        ]
        return TreeRestrictedShortcut(self.tree, self.partition, subgraphs)

    def as_general(self) -> GeneralShortcut:
        """Forget the tree restriction (Definition 2 ⊆ Definition 1)."""
        return GeneralShortcut(self.partition, self._subgraphs)

    def validate_in(self, topology: Topology) -> None:
        """Check tree and partition consistency against a topology."""
        self.tree.validate_in(topology)
        self.partition.validate_connected(topology)

    def __repr__(self) -> str:
        used = sum(len(s) for s in self._subgraphs)
        return (
            f"TreeRestrictedShortcut(N={self.size}, "
            f"assigned_edge_slots={used})"
        )
