"""CoreFast — Algorithm 2 / Lemma 5 (randomized, O(D log n + c) rounds).

CoreSlow's bottleneck is streaming up to ``2c`` part ids through every
tree level.  CoreFast estimates the load instead: every part becomes
*active* with probability ``p = γ log n / (2c)`` (using the shared
randomness substrate so all nodes of a part agree), only active ids are
streamed, and an edge is declared unusable when at least ``4cp =
Ω(log n)`` active ids want it.  A Chernoff bound gives, w.h.p.:
usable edges carry at most ``8c`` part ids, unusable edges at least
``2c`` — which is exactly what Lemma 7's counting argument needs.

The subroutine then still has to deliver the *complete* id sets to the
usable edges (steps 3–5 of Algorithm 2): every id is flooded up the
tree until it hits the first unusable edge, forwarding the minimum
not-yet-forwarded id per edge per round — a tree-routing problem that
Lemma 2 bounds by ``O(D + c)`` rounds.

Two phases, two node programs, composed with a barrier:

* **Phase A** (sampling sweep) reuses the CoreSlow program with the
  active subset and threshold ``τ = ⌈4cp⌉`` — O(D log n) rounds;
* **Phase B** (:class:`FloodUpAlgorithm`) floods all ids — O(D + c).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.randomness import coin
from repro.congest.engine import EngineLike
from repro.congest.simulator import RunResult, Simulator
from repro.congest.topology import Edge, Topology
from repro.congest.trace import RoundLedger
from repro.core.core_slow import CoreOutcome, CoreSlowAlgorithm
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree

Q_TOKEN = "q"
ACTIVITY_SALT = 0xAC71


def sampling_parameters(n: int, c: int, gamma: float = 2.0) -> Tuple[float, int]:
    """The activation probability ``p`` and unusable threshold ``τ``.

    ``p = min(1, γ log2(n) / (2c))`` and ``τ = max(1, ⌈4 c p⌉)``; when
    ``c`` is small enough that ``p = 1`` the subroutine degenerates to
    an exact count with threshold ``4c``.
    """
    if c < 1:
        raise ShortcutError("congestion parameter c must be >= 1")
    p = min(1.0, gamma * math.log2(max(2, n)) / (2 * c))
    tau = max(1, math.ceil(4 * c * p))
    return p, tau


def active_parts(
    partition: Partition, shared_seed: int, p: float
) -> FrozenSet[int]:
    """Parts activated by the shared coin (locally computable by all
    members from the shared seed and their own part id)."""
    return frozenset(
        i for i in range(partition.size) if coin(shared_seed, i, ACTIVITY_SALT) < p
    )


class FloodUpAlgorithm(NodeAlgorithm):
    """Steps 3–5 of Algorithm 2: flood ids up to the first unusable edge.

    Per-node inputs: ``part`` (id or ``None``), ``tree_parent``,
    ``parent_usable`` (whether the node's parent edge survived Phase A).

    Outputs: ``q_ids`` — every id that reached the node; ids in
    ``q_ids`` may use the node's parent edge iff it is usable.

    Forwarding keeps a min-heap of the not-yet-forwarded ids next to
    the ``forwarded`` set: an id enters the heap exactly once (on first
    sight), so each pump is one O(log k) pop instead of an O(k) rescan
    of ``q_ids - forwarded``.  The message order is identical — the
    heap minimum *is* the smallest pending id — which the engine
    differential suite asserts on every family.
    """

    name = "core-fast-flood"

    def on_start(self, node) -> None:
        state = node.state
        state.q_ids: Set[int] = set()
        state.forwarded: Set[int] = set()
        state.pending_heap: list = []
        if state.part is not None:
            state.q_ids.add(state.part)
            state.pending_heap.append(state.part)
        self._pump(node)

    def on_round(self, node, messages) -> None:
        state = node.state
        for _sender, payload in messages:
            if payload[0] == Q_TOKEN and payload[1] not in state.q_ids:
                state.q_ids.add(payload[1])
                heapq.heappush(state.pending_heap, payload[1])
        self._pump(node)

    def _pump(self, node) -> None:
        state = node.state
        if state.tree_parent is None or not state.parent_usable:
            return
        if state.pending_heap:
            smallest = heapq.heappop(state.pending_heap)
            state.forwarded.add(smallest)
            node.send(state.tree_parent, (Q_TOKEN, smallest))
            if state.pending_heap:
                node.wake_after(1)


def core_fast(
    topology: Topology,
    tree: SpanningTree,
    partition: Partition,
    c: int,
    shared_seed: int,
    *,
    gamma: float = 2.0,
    participating: Optional[Iterable[int]] = None,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    engine: EngineLike = None,
    mode: Optional[str] = None,
) -> CoreOutcome:
    """Run the CoreFast subroutine.

    ``shared_seed`` is the network-wide seed distributed by
    :func:`repro.congest.randomness.share_randomness`; it determines
    which parts are active.  ``participating`` restricts the run to a
    subset of parts (the still-bad parts during FindShortcut).
    ``mode="direct"`` computes the identical outcome — including exact
    rounds and messages — with the array kernels of
    :mod:`repro.core.construct_fast` instead of simulating the two
    node programs.
    """
    from repro.core.construct_fast import core_fast_direct, resolve_mode

    if resolve_mode(mode) == "direct":
        return core_fast_direct(
            topology, tree, partition, c, shared_seed,
            gamma=gamma, participating=participating, ledger=ledger,
        )
    p, tau = sampling_parameters(topology.n, c, gamma)
    participating_set = (
        set(participating) if participating is not None else set(range(partition.size))
    )
    active = active_parts(partition, shared_seed, p) & participating_set

    # Phase A: sampled sweep.  CoreSlow's program with the active subset
    # and cap τ - 1 marks an edge unusable exactly when >= τ = 4cp
    # active ids reach it.
    phase_a_inputs = {}
    for v in topology.nodes:
        part = partition.part_of(v)
        phase_a_inputs[v] = {
            "part": part if part in active else None,
            "tree_parent": tree.parent(v),
            "tree_children": tree.children(v),
            "cap": tau - 1,
        }
    result_a = Simulator(
        topology, CoreSlowAlgorithm(phase_a_inputs), seed=seed, engine=engine
    ).run()

    # Phase B: flood the complete id sets up to the first unusable edge.
    phase_b_inputs = {}
    for v in topology.nodes:
        part = partition.part_of(v)
        phase_b_inputs[v] = {
            "part": part if part in participating_set else None,
            "tree_parent": tree.parent(v),
            "parent_usable": tree.parent(v) is not None
            and not result_a.states[v].unusable,
        }
    result_b = Simulator(
        topology, FloodUpAlgorithm(phase_b_inputs), seed=seed + 1, engine=engine
    ).run()

    edge_map: Dict[Edge, Tuple[int, ...]] = {}
    unusable: Set[Edge] = set()
    for v in topology.nodes:
        edge = tree.parent_edge(v)
        if edge is None:
            continue
        if result_a.states[v].unusable:
            unusable.add(edge)
        else:
            ids = result_b.states[v].q_ids
            if ids:
                edge_map[edge] = tuple(sorted(ids))
    shortcut = TreeRestrictedShortcut.from_edge_map(tree, partition, edge_map)
    if ledger is not None:
        ledger.charge_phase("core-fast/sample", result_a.rounds, result_a.messages)
        ledger.charge_phase("core-fast/flood", result_b.rounds, result_b.messages)
    return CoreOutcome(
        shortcut=shortcut,
        unusable=frozenset(unusable),
        rounds=result_a.rounds + result_b.rounds,
        messages=result_a.messages + result_b.messages,
    )


def core_fast_reference(
    tree: SpanningTree,
    partition: Partition,
    c: int,
    shared_seed: int,
    n: int,
    *,
    gamma: float = 2.0,
    participating: Optional[Iterable[int]] = None,
) -> Tuple[Dict[Edge, Tuple[int, ...]], FrozenSet[Edge]]:
    """Centralized twin of :func:`core_fast` (identical output)."""
    p, tau = sampling_parameters(n, c, gamma)
    participating_set = (
        set(participating) if participating is not None else set(range(partition.size))
    )
    active = active_parts(partition, shared_seed, p) & participating_set

    # Phase A: bottom-up active-id counting with threshold τ.
    visible_active: Dict[int, Set[int]] = {}
    unusable: Set[Edge] = set()
    for v in tree.order_bottom_up():
        ids: Set[int] = set()
        own = partition.part_of(v)
        if own in active:
            ids.add(own)
        for child in tree.children(v):
            ids |= visible_active.get(child, set())
        edge = tree.parent_edge(v)
        if edge is None:
            continue
        if len(ids) >= tau:
            unusable.add(edge)
            visible_active[v] = set()
        else:
            visible_active[v] = ids

    # Phase B: full visibility through usable edges.
    visible: Dict[int, Set[int]] = {}
    edge_map: Dict[Edge, Tuple[int, ...]] = {}
    for v in tree.order_bottom_up():
        ids = set()
        own = partition.part_of(v)
        if own is not None and own in participating_set:
            ids.add(own)
        for child in tree.children(v):
            ids |= visible.get(child, set())
        edge = tree.parent_edge(v)
        if edge is None:
            continue
        if edge in unusable:
            visible[v] = set()
        else:
            if ids:
                edge_map[edge] = tuple(sorted(ids))
            visible[v] = ids
    return edge_map, frozenset(unusable)
