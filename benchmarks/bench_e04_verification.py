"""E4 — Lemmas 3/6: Verification exactness in O(b'(D + c)) rounds."""

from conftest import run_experiment

from repro.analysis.experiments import run_e04


def test_e04_verification(benchmark, scale):
    result = run_experiment(benchmark, run_e04, scale)
    assert result.data["all_exact"]
    assert all(ratio <= 2.0 for ratio in result.data["ratios"])
