"""E13 — Section 1.2: part diameter >> D, and shortcuts erasing it."""

from conftest import run_experiment

from repro.analysis.experiments import run_e13


def test_e13_motivation(benchmark, scale):
    result = run_experiment(benchmark, run_e13, scale)
    speedups = result.data["speedups"]
    # The gap widens with n: the largest instance shows the biggest win.
    assert speedups[-1] == max(speedups)
    assert speedups[-1] > 2.0
    # Part diameters exceed the network diameter, increasingly with n.
    ratios = result.data["diam_ratio"]
    assert ratios == sorted(ratios)
    assert max(ratios) > 2.0
