"""E3 — Theorem 2: part-parallel leader election in O(b(D + c))."""

from conftest import run_experiment

from repro.analysis.experiments import run_e03


def test_e03_partwise_routing(benchmark, scale):
    result = run_experiment(benchmark, run_e03, scale)
    assert all(ratio <= 1.5 for ratio in result.data["ratios"])
