"""E7 — Theorem 3: FindShortcut quality and iteration count vs log N."""

from conftest import run_experiment

from repro.analysis.experiments import run_e07


def test_e07_find_shortcut(benchmark, scale):
    result = run_experiment(benchmark, run_e07, scale)
    assert result.data["iteration_ok"]
    assert result.data["quality_ok"]
