"""E23 — unreliable networks: reliable-sublayer overhead and recovery.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e23`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e23_resilience.py --scale paper \
        --out BENCH_resilience.json

so the resilience trajectory (recovery rate, round overhead, message
amplification, and prod counts per family × drop rate, plus crash
detection counters) is tracked alongside the other baselines.  The
JSON schema (``repro.bench_resilience.v1``) is documented in
``benchmarks/conftest.py``.

The acceptance gate: mean round overhead of the reliable sublayer at
drop probability 0.05 must stay at or below 3x the fault-free run,
every transport-fault cell must recover bit-identically (the runner
raises on silent divergence), and every crash-stop cell must end as a
declared detection.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e23
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e23

# The headline acceptance bar: physical rounds per inner round at the
# gated drop rate, averaged across families.
MAX_GATE_OVERHEAD = 3.0


def test_e23_resilience(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    result = run_experiment(benchmark, run_e23, scale)
    # run_e23 itself raises on silent divergence and missed crashes.
    assert result.data["gate_overhead"] <= MAX_GATE_OVERHEAD
    assert result.data["crash_detected"] == result.data["crash_cells"]
    for key, row in result.data["results"].items():
        assert row["recovery_rate"] == 1.0, key


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E23 and write the ``BENCH_resilience.json`` baseline file."""
    result = run_e23(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_resilience.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--max-overhead", default=MAX_GATE_OVERHEAD, type=float,
        help="fail (exit 1) if mean overhead at the gate rate exceeds "
        "this; pass a huge value for record-only mode",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    for key, row in sorted(payload["results"].items()):
        print(
            f"{key:<16} recovery={row['recovery_rate']:.0%} "
            f"overhead={row['mean_overhead']:.2f}x "
            f"amp={row['mean_amplification']:.2f}x "
            f"prods={row['prods']}"
        )
    print(
        f"crash detection: {payload['crash_detected']}/"
        f"{payload['crash_cells']} declared"
    )
    print(
        f"gate: mean overhead {payload['gate_overhead']:.2f}x at drop "
        f"{payload['gate_rate']} (limit {args.max_overhead}x)"
    )
    print(f"wrote {args.out}")
    if payload["gate_overhead"] > args.max_overhead:
        print(
            f"FAIL: overhead at drop {payload['gate_rate']} exceeds "
            f"{args.max_overhead}x",
            file=sys.stderr,
        )
        return 1
    if payload["crash_detected"] != payload["crash_cells"]:
        print("FAIL: a crash-stop cell went undetected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
