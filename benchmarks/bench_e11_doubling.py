"""E11 — Appendix A: parameter-oblivious doubling search."""

from conftest import run_experiment

from repro.analysis.experiments import run_e11


def test_e11_doubling(benchmark, scale):
    result = run_experiment(benchmark, run_e11, scale)
    assert result.table.rows  # all instances completed without knowledge
