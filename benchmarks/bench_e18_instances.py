"""E18 — instance-pipeline throughput: array-native fast path vs reference.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e18`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e18_instances.py --scale small \
        --out BENCH_instances.json

so the perf trajectory of instance construction (wall time per family,
reference vs cold vs cached fast path) is tracked alongside the
simulator, quality, construction, and application baselines.  The JSON
schema (``repro.bench_instances.v1``) is documented in
``benchmarks/conftest.py``.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e18
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e18

# The headline acceptance bar: the end-to-end fast pipeline (cold build
# + cache hits over one grid's reuse pattern) must beat the reference
# constructors by at least this factor on the largest family.
MIN_LARGEST_SCALE_SPEEDUP = 3.0


def test_e18_instance_throughput(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    result = run_experiment(benchmark, run_e18, scale)
    assert result.data["largest_scale_speedup"] >= MIN_LARGEST_SCALE_SPEEDUP
    # run_e18 itself raises if the pipelines built diverging structures;
    # the smaller families must at least never regress beyond noise.
    assert all(speedup > 0.8 for speedup in result.data["speedups"])


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E18 and write the ``BENCH_instances.json`` baseline file."""
    result = run_e18(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_instances.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--min-speedup", default=MIN_LARGEST_SCALE_SPEEDUP, type=float,
        help="fail (exit 1) if the largest-scale speedup is below this; "
        "pass 0 for record-only mode",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    for family in payload["families"]:
        print(
            f"{family['family']:<28} n={family['n']:<6} "
            f"cold={family['cold_speedup']:.2f}x "
            f"e2e={family['speedup']:.2f}x"
        )
    print(f"largest-scale speedup: {payload['largest_scale_speedup']:.2f}x")
    print(f"wrote {args.out}")
    if payload["largest_scale_speedup"] < args.min_speedup:
        print(
            f"FAIL: largest-scale speedup below {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
