"""Benchmark harness configuration.

Each benchmark wraps one experiment runner from
:mod:`repro.analysis.experiments`, executes it once (the experiments
are internally repeated/averaged where that matters), prints the
regenerated paper-style table, and asserts the claim it reproduces.

Scale with ``REPRO_SCALE=paper pytest benchmarks/ --benchmark-only``
for the larger instances recorded in EXPERIMENTS.md.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


def run_experiment(benchmark, runner, scale):
    """Run one experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(runner, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["claim"] = result.claim
    return result
