"""Benchmark harness configuration.

Each benchmark wraps one experiment runner from
:mod:`repro.analysis.experiments`, executes it once (the experiments
are internally repeated/averaged where that matters), prints the
regenerated paper-style table, and asserts the claim it reproduces.

Scale with ``REPRO_SCALE=paper pytest benchmarks/ --benchmark-only``
for the larger instances recorded in EXPERIMENTS.md.

BENCH_simulator.json schema
---------------------------

``python benchmarks/bench_e14_engine.py --out BENCH_simulator.json``
writes the simulator-engine throughput baseline (schema id
``repro.bench_simulator.v1``), a JSON object with:

* ``schema`` — the literal string ``"repro.bench_simulator.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E14 instance sizes).
* ``engines`` — sorted list of engine names measured.
* ``python`` / ``machine`` — interpreter version and architecture the
  numbers were taken on.
* ``families`` — list ordered by message volume (last = largest
  scale); each entry has:

  - ``family`` — instance label, e.g. ``"flood/grid"``;
  - ``n`` / ``m`` — nodes and edges of the topology;
  - ``workload`` — the node-program name from
    :mod:`repro.congest.workloads`;
  - ``rounds`` / ``messages`` — simulated totals (identical across
    engines by construction; E14 raises on divergence);
  - ``engines`` — mapping engine name -> ``{"wall_s",
    "rounds_per_s", "messages_per_s"}`` (best-of-N wall seconds and
    derived throughputs);
  - ``speedup`` — reference wall time / batched wall time.

* ``speedups`` — the per-family speedup column, same order.
* ``largest_scale_speedup`` — ``speedups[-1]``; the tracked headline
  number (CI asserts it stays >= 3).

BENCH_quality.json schema
-------------------------

``python benchmarks/bench_e15_quality.py --out BENCH_quality.json``
writes the analysis-layer twin (schema id ``repro.bench_quality.v1``):
wall time of :func:`repro.core.quality.measure` per quality kernel
(``reference`` vs ``fast``) over the family pool of
:func:`repro.analysis.experiments.quality_families`.  A JSON object
with:

* ``schema`` — the literal string ``"repro.bench_quality.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E15 instance sizes).
* ``kernels`` — list of quality-kernel names measured
  (``repro.core.quality.KERNELS`` order).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``families`` — list ordered by measurement cost (last = largest
  scale); each entry has:

  - ``family`` — instance label, e.g. ``"grid-large/voronoi"``;
  - ``n`` / ``m`` / ``parts`` — topology and partition sizes;
  - ``congestion`` / ``dilation`` / ``block_parameter`` — the measured
    quality values (identical across kernels by construction; E15
    raises on divergence);
  - ``kernels`` — mapping kernel name -> ``{"wall_s",
    "measures_per_s"}`` (best-of-N wall seconds for one full
    ``measure()`` with dilation);
  - ``speedup`` — reference wall time / fast wall time.

* ``speedups`` — the per-family speedup column, same order.
* ``largest_scale_speedup`` — ``speedups[-1]``; the tracked headline
  number (CI asserts it stays >= 3).

BENCH_construct.json schema
---------------------------

``python benchmarks/bench_e16_construct.py --out BENCH_construct.json``
writes the construction-layer baseline (schema id
``repro.bench_construct.v1``): wall time of one full parameter-oblivious
``find_shortcut_doubling`` search per construction mode (``simulate``
vs ``direct``, see :mod:`repro.core.construct_fast`) over the family
pool of :func:`repro.analysis.experiments.construct_families`.  A JSON
object with:

* ``schema`` — the literal string ``"repro.bench_construct.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E16 instance sizes).
* ``modes`` — construction-mode names measured
  (``repro.core.construct_fast.MODES`` order).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``families`` — list ordered by simulate-mode cost (last = largest
  scale); each entry has:

  - ``family`` — instance label, e.g. ``"grid-large/voronoi"``;
  - ``n`` / ``m`` / ``parts`` — topology and partition sizes;
  - ``trials`` / ``iterations`` — doubling trials and the successful
    trial's iteration count (identical across modes by construction;
    E16 raises on divergence);
  - ``modes`` — mapping mode name -> ``{"wall_s",
    "constructions_per_s", "rounds"}`` (best-of-N wall seconds for one
    full doubling search; ``rounds`` is the ledger total — measured in
    simulate mode, the analytic model in direct mode);
  - ``speedup`` — simulate wall time / direct wall time.

* ``speedups`` — the per-family speedup column, same order.
* ``largest_scale_speedup`` — ``speedups[-1]``; the tracked headline
  number (CI gates it at >= 5; the paper-scale record in
  EXPERIMENTS.md clears >= 20).

BENCH_apps.json schema
----------------------

``python benchmarks/bench_e17_apps.py --out BENCH_apps.json`` writes
the application-layer baseline (schema id ``repro.bench_apps.v1``):
wall time of one complete shortcut Borůvka MST (BFS tree → shared
randomness → per-phase doubling search → Theorem 2 aggregation →
star-merge broadcast) per partwise backend (``simulate`` vs ``direct``,
see :mod:`repro.core.partwise_fast`; the direct runs also use the
direct construction kernels) over the family pool of
:func:`repro.analysis.experiments.app_families`.  A JSON object with:

* ``schema`` — the literal string ``"repro.bench_apps.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E17 instance sizes).
* ``backends`` — partwise-backend names measured
  (``repro.core.partwise_fast.BACKENDS`` order).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``families`` — list ordered by simulate-mode cost with the
  direct-only extension instances last; each entry has:

  - ``family`` — instance label, e.g. ``"grid-large/boruvka"``;
  - ``n`` / ``m`` — topology sizes;
  - ``phases`` — Borůvka phases (identical across backends by
    construction; E17 raises on divergence of edges, weight, phases,
    or per-phase merges);
  - ``backends`` — mapping backend name -> ``{"wall_s", "msts_per_s",
    "rounds"}`` (best-of-N wall seconds for one full MST; ``rounds``
    is the ledger total — exact in both backends at fixed construction
    mode, the Lemma 3 model inflates the direct construction rounds);
  - ``speedup`` — simulate wall time / direct wall time, or ``null``
    for the direct-only extension families (validated against Kruskal
    instead of the simulated twin).

* ``speedups`` — the speedup column of the both-backend families.
* ``largest_scale_speedup`` — the last both-backend family's speedup;
  the tracked headline number (CI gates it at >= 3).
* ``extension_max_n`` / ``e9_grid_n`` — largest direct-only instance
  and the same-scale E9 grid size it is measured against; the bench
  asserts ``extension_max_n >= 10 * e9_grid_n`` (>= 1000 nodes at
  paper scale).

BENCH_instances.json schema
---------------------------

``python benchmarks/bench_e18_instances.py --out BENCH_instances.json``
writes the instance-pipeline baseline (schema id
``repro.bench_instances.v1``): wall time of one full (topology, BFS
tree, partition) construction per pipeline — the validating
**reference** constructors (``Topology(n, edges)`` canonicalisation,
``SpanningTree.bfs``, list-of-parts ``Partition``, plus the derived
CSR/tree arrays) vs the **array-native fast path**
(:func:`repro.analysis.instances.hydrate`: pre-canonical edge arrays,
seeded CSR, CSR BFS tree with cached ``TreeArrays``, dense-label
partitions, content-addressed cache) — over the family pool of
:func:`repro.analysis.experiments.instance_families`.  A JSON object
with:

* ``schema`` — the literal string ``"repro.bench_instances.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E18 instance sizes).
* ``grid_reps`` — how many times the end-to-end model re-uses each
  instance per process (the experiment-grid reuse pattern the cache
  serves).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``families`` — list ordered by reference-pipeline cost (last =
  largest scale); each entry has:

  - ``family`` — instance label, e.g. ``"grid-large/weighted-voronoi"``;
  - ``n`` / ``m`` / ``parts`` — topology and partition sizes;
  - ``reference`` — ``{"wall_s"}`` (best-of-N wall seconds of one
    reference build);
  - ``fast`` — ``{"cold_wall_s", "cached_wall_s"}`` (best-of-N wall
    seconds of one hydrate with an empty / warm per-process cache);
  - ``cold_speedup`` — reference wall / cold-fast wall (isolates the
    array-native constructors);
  - ``speedup`` — end-to-end: ``grid_reps`` reference rebuilds vs one
    cold build plus ``grid_reps - 1`` cache hits.

* ``speedups`` — the per-family end-to-end speedup column, same order.
* ``largest_scale_speedup`` — ``speedups[-1]``; the tracked headline
  number (CI gates it at >= 3).
* ``cache`` — the per-process cache sizes at the end of the run.

E18 additionally audits, on every family, that both pipelines built
``==``-identical structures (edges, adjacency, weights, tree parents,
partition labels) and raises on any divergence; the full differential
suite lives in ``tests/graphs/test_fastpath_equivalence.py``.

BENCH_failures.json schema
--------------------------

``python benchmarks/bench_e19_failures.py --scale paper --out
BENCH_failures.json`` writes the failure/repair baseline (schema id
``repro.bench_failures.v1``): per failure scenario, the degradation of
the survivor against the intact instance and the ledger/wall cost of
:func:`repro.failures.repair.repair_shortcut` against its
:func:`~repro.failures.repair.rebuild_shortcut` twin (both
``==``-verified in the survivor by ``assert_valid``; the run raises on
any invalid shortcut).  A JSON object with:

* ``schema`` — the literal string ``"repro.bench_failures.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E19 instance sizes; the
  acceptance gate lives at paper scale).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``families`` — one entry per failure family (grid/torus/hub/
  delaunay); each has:

  - ``family`` / ``n`` / ``m`` / ``parts`` — instance label and sizes;
  - ``baseline`` — intact congestion, block parameter, construction
    rounds, MST weight and rounds;
  - ``scenarios`` — one row per failure scenario: the scenario label /
    kind / size, whether the survivor stayed connected (plus component
    and components-aware MST/connectivity numbers when it did not),
    quality deltas vs the baseline, and — on connected survivors —
    ``repair_rounds`` / ``rebuild_rounds`` / ``rounds_speedup``,
    wall seconds for both, ``frozen_fraction``, ``tree_rebuilt``, and
    the resulting ``(c, b)`` pairs;
  - ``disconnected`` — how many scenarios disconnected the survivor;
  - ``rounds_speedups`` / ``median_rounds_speedup`` — the per-family
    speedup sample and its median;
  - ``repair_wall_s`` / ``rebuild_wall_s`` / ``wall_speedup`` —
    aggregated wall time of all repairs vs all rebuilds;
  - ``mean_frozen_fraction`` — average fraction of parts repair kept
    frozen.

* ``suite_rounds_speedup`` — median rebuild/repair round ratio pooled
  over every connected scenario of every family (deterministic at any
  ``REPRO_JOBS``).
* ``suite_wall_speedup`` — pooled rebuild wall seconds / repair wall
  seconds.
* ``largest_scale_speedup`` — ``min`` of the two suite ratios; the
  tracked headline number (CI gates it at >= 2 at paper scale).

Wall-clock fields vary run to run; every other field — including each
scenario's rounds and the suite rounds ratio — is deterministic and is
what ``tests/properties/test_prop_failures.py`` pins across worker
counts.

BENCH_service.json schema
-------------------------

``python benchmarks/bench_e20_service.py --out BENCH_service.json``
writes the shortcut-service baseline (schema id
``repro.bench_service.v1``): cold vs warm request throughput of the
store-backed :class:`repro.service.server.ShortcutService`, the
recovery latency after on-disk corruption, and the outcome counters of
a seeded chaos storm.  A JSON object with:

* ``schema`` — the literal string ``"repro.bench_service.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E20 instance sizes).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``families`` — one entry per :func:`service_families` instance; each
  has:

  - ``family`` / ``n`` / ``m`` / ``parts`` — instance label and sizes;
  - ``cold_requests`` / ``cold_wall_s`` / ``cold_rps`` — the first
    pass over every operation (hydration + construction per request);
  - ``warm_requests`` / ``warm_wall_s`` / ``warm_rps`` — the repeat
    passes, answered from the persistent store (every response carries
    ``warm: true`` and a result ``==`` its cold twin, asserted by the
    runner);
  - ``warm_speedup`` — ``warm_rps / cold_rps``;
  - ``recovery_s`` — wall seconds for one request after its committed
    store entry was overwritten with garbage on disk: quarantine +
    recompute + repopulate (the follow-up request must be warm again).

* ``cold_rps`` / ``warm_rps`` — pooled request throughput over all
  families.
* ``warm_speedup`` — pooled ``warm_rps / cold_rps``; the tracked
  headline number (CI gates it at >= 3).
* ``recovery_s`` — mapping family -> recovery latency.
* ``service`` — the service's own counters (requests, warm hits,
  computed, single-flight joins, shed, deadline expiries, store
  failures) plus the store's (hits, misses, writes, evictions,
  quarantined, swept temp files).
* ``chaos`` — the :class:`repro.service.chaos.ChaosReport` of a seeded
  storm over the same families (entry corruption, IO-error windows,
  read latency, killed writers, a zero-deadline probe per round, and a
  real-HTTP round through the retrying client against a tiny queue).
  ``wrong`` must be 0 — the runner raises otherwise — and
  ``injected`` is deterministic for the fixed ``E20_SEED``.

Throughput and latency fields vary run to run; the correctness fields
(``warm`` flags, result equality, ``chaos.wrong == 0``) are asserted
inside the runner itself.

BENCH_batch.json schema
-----------------------

``python benchmarks/bench_e21_batch.py --scale paper --out
BENCH_batch.json`` writes the batch-layer baseline (schema id
``repro.bench_batch.v1``): wall time of one fused construct → measure
→ verify pass (:func:`repro.core.batch.run_pipeline`) over the whole
:func:`repro.analysis.experiments.batch_grid` instance sweep, once per
batch strategy — ``"loop"`` (the per-instance fast kernels) vs
``"vector"`` (the numpy kernels over one packed ``BatchCSR``, needing
the ``fast-math`` extra).  A JSON object with:

* ``schema`` — the literal string ``"repro.bench_batch.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E21 grid sizes; the
  acceptance gate lives at paper scale: 128 grids of side 12).
* ``strategies`` — batch-strategy names measured
  (``repro.core.batch.BATCHES`` order; ``"vector"`` absent without
  numpy).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``grid`` — the sweep shape: ``family`` / ``instances`` / ``side`` /
  ``n`` / ``m`` / ``parts`` per instance, plus the shared ``c`` and
  ``b_limit`` parameters.
* ``results`` — mapping strategy name -> ``{"wall_s",
  "instances_per_s"}`` (best-of-N wall seconds for the whole grid).
* ``max_congestion`` / ``max_dilation`` — measured maxima over the
  grid (identical across strategies by construction; E21 raises on
  any divergence of reports, counts, rounds, or messages).
* ``speedup`` — loop wall time / vector wall time, or ``null``
  without numpy; the tracked headline number (CI gates it at >= 3 at
  paper scale via the ``batch-bench`` job).

BENCH_batch_construct.json schema
---------------------------------

``python benchmarks/bench_e22_batch_construct.py --scale paper --out
BENCH_batch_construct.json`` writes the batched-construction baseline
(schema id ``repro.bench_batch_construct.v1``): wall time of the whole
``(c, b)`` doubling ladder
(:func:`repro.core.batch.find_shortcut_doubling_batch`) over the
mixed-family :func:`repro.analysis.experiments.e22_grid` sweep, once
per batch strategy — ``"loop"`` (the per-instance Appendix A search in
``mode="direct"``) vs ``"vector"`` (the lockstep ladder over one
packed ``BatchCSR`` with active-set compaction, needing the
``fast-math`` extra).  A JSON object with:

* ``schema`` — the literal string ``"repro.bench_batch_construct.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E22 grid sizes; the
  acceptance gate lives at paper scale).
* ``strategies`` — batch-strategy names measured (``"vector"`` absent
  without numpy).
* ``python`` / ``machine`` — interpreter version and architecture.
* ``grid`` — the sweep shape: ``family`` (the mixed
  ``"grid+torus+hub"`` sweep), ``instances``, and the summed
  ``n_total`` / ``m_total`` / ``parts_total``.
* ``results`` — mapping strategy name -> ``{"wall_s",
  "instances_per_s"}`` (best-of-N wall seconds for the whole ladder).
* ``max_rungs`` — deepest ``(c, b)`` ladder climbed by any instance.
* ``rungs`` — per-rung breakdown from the ``Trial`` timing satellite:
  rung index -> ``{"instances", "succeeded", "rounds", "messages"}``
  (identical across strategies; E22 raises on any divergence of
  trials, histories, shortcuts, or ledgers).
* ``total_rounds`` — summed ledger rounds over the grid.
* ``speedup`` — loop wall time / vector wall time, or ``null``
  without numpy; the tracked headline number (CI gates it at >= 3 at
  paper scale via the ``batch-construct-bench`` job).

BENCH_resilience.json schema
----------------------------

``python benchmarks/bench_e23_resilience.py --scale paper --out
BENCH_resilience.json`` writes the unreliable-network baseline (schema
id ``repro.bench_resilience.v1``): the lockstep-with-repair sublayer
(:func:`repro.congest.reliable.run_reliably`) re-executing a flood
workload under seeded pure-drop :class:`~repro.congest.faults.FaultPlan`
schedules, per family × drop rate × seed, plus one crash-stop cell per
family × seed.  A JSON object with:

* ``schema`` — the literal string ``"repro.bench_resilience.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (grid side 9 vs 14; the
  acceptance gate lives at paper scale).
* ``families`` / ``rates`` / ``seeds`` / ``workload`` — the sweep
  shape (grid, torus, hub, delaunay × drop 0.02/0.05/0.1 × 5 seeds,
  flood workload).
* ``results`` — mapping ``"<family>@<rate>"`` ->
  ``{"recovery_rate", "mean_overhead", "mean_amplification",
  "prods"}``.  ``recovery_rate`` is the fraction of cells whose final
  states were bit-identical to the fault-free reference (non-recovered
  cells ended as declared detections — silent divergence raises inside
  the runner).  ``mean_overhead`` is physical rounds per inner round;
  ``mean_amplification`` is physical frames per reference message;
  ``prods`` counts retransmission requests.
* ``gate_rate`` / ``gate_overhead`` — the gated drop rate (0.05) and
  the mean overhead across families at that rate; the tracked
  headline number (CI gates it at <= 3 at paper scale via the
  ``resilience-bench`` job).
* ``crash_cells`` / ``crash_detected`` — crash-stop cells run and how
  many surfaced as declared detections (the runner raises unless
  every one did).
* ``python`` / ``machine`` — interpreter version and architecture.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


def run_experiment(benchmark, runner, scale):
    """Run one experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(runner, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["claim"] = result.claim
    return result
