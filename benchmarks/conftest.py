"""Benchmark harness configuration.

Each benchmark wraps one experiment runner from
:mod:`repro.analysis.experiments`, executes it once (the experiments
are internally repeated/averaged where that matters), prints the
regenerated paper-style table, and asserts the claim it reproduces.

Scale with ``REPRO_SCALE=paper pytest benchmarks/ --benchmark-only``
for the larger instances recorded in EXPERIMENTS.md.

BENCH_simulator.json schema
---------------------------

``python benchmarks/bench_e14_engine.py --out BENCH_simulator.json``
writes the simulator-engine throughput baseline (schema id
``repro.bench_simulator.v1``), a JSON object with:

* ``schema`` — the literal string ``"repro.bench_simulator.v1"``.
* ``scale`` — ``"small"`` or ``"paper"`` (the E14 instance sizes).
* ``engines`` — sorted list of engine names measured.
* ``python`` / ``machine`` — interpreter version and architecture the
  numbers were taken on.
* ``families`` — list ordered by message volume (last = largest
  scale); each entry has:

  - ``family`` — instance label, e.g. ``"flood/grid"``;
  - ``n`` / ``m`` — nodes and edges of the topology;
  - ``workload`` — the node-program name from
    :mod:`repro.congest.workloads`;
  - ``rounds`` / ``messages`` — simulated totals (identical across
    engines by construction; E14 raises on divergence);
  - ``engines`` — mapping engine name -> ``{"wall_s",
    "rounds_per_s", "messages_per_s"}`` (best-of-N wall seconds and
    derived throughputs);
  - ``speedup`` — reference wall time / batched wall time.

* ``speedups`` — the per-family speedup column, same order.
* ``largest_scale_speedup`` — ``speedups[-1]``; the tracked headline
  number (CI asserts it stays >= 3).
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


def run_experiment(benchmark, runner, scale):
    """Run one experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(runner, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["claim"] = result.claim
    return result
