"""E2 — Lemma 2: pipelined subtree convergecast in <= D + c rounds."""

from conftest import run_experiment

from repro.analysis.experiments import run_e02


def test_e02_tree_routing(benchmark, scale):
    result = run_experiment(benchmark, run_e02, scale)
    assert all(ratio <= 1.0 for ratio in result.data["ratios"])
