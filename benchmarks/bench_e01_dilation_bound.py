"""E1 — Lemma 1: dilation <= b(2D + 1) on every constructed shortcut."""

from conftest import run_experiment

from repro.analysis.experiments import run_e01


def test_e01_dilation_bound(benchmark, scale):
    result = run_experiment(benchmark, run_e01, scale)
    assert all(ratio <= 1.0 for ratio in result.data["ratios"])
