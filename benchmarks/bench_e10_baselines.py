"""E10 — shortcut MST vs the Ω̃(√n + D) world: who wins where."""

from conftest import run_experiment

from repro.analysis.experiments import run_e10


def test_e10_baselines(benchmark, scale):
    result = run_experiment(benchmark, run_e10, scale)
    slopes = result.data["slopes"]
    # The paper's shape: shortcut rounds grow the slowest in n at
    # fixed D, the no-shortcut Borůvka the fastest.
    assert slopes["shortcut"] < slopes["no_shortcut"]
    assert slopes["no_shortcut"] > 0.5  # pays part diameters ~ n
