"""E19 — failure injection: incremental repair vs full rebuild.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e19`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e19_failures.py --scale paper \
        --out BENCH_failures.json

so the repair-vs-rebuild trajectory (rounds and wall time per family,
degradation deltas, frozen fractions) is tracked alongside the
simulator, quality, construction, application, and instance baselines.
The JSON schema (``repro.bench_failures.v1``) is documented in
``benchmarks/conftest.py``.

The acceptance gate lives at **paper** scale: small-scale instances
mostly converge in one or two CoreFast iterations, leaving a rebuild
nothing to waste and repair nothing to skip, so the suite ratio there
is only sanity-checked against regressions.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e19
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e19

# The headline acceptance bar (paper scale): the suite-pooled median
# rebuild/repair round ratio AND the pooled wall-time ratio must both
# show repair at least twice as fast as a full rebuild.
MIN_LARGEST_SCALE_SPEEDUP = 2.0

# Small-scale sanity floor: repair must never be meaningfully *slower*
# than rebuilding, even where there is nothing to skip.
MIN_SANITY_SPEEDUP = 0.8


def test_e19_failure_repair(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    result = run_experiment(benchmark, run_e19, scale)
    # run_e19 itself ==-verifies every repaired and rebuilt shortcut in
    # its survivor (assert_valid) and raises on any divergence.
    if scale == "paper":
        assert result.data["largest_scale_speedup"] >= MIN_LARGEST_SCALE_SPEEDUP
    else:
        assert result.data["suite_rounds_speedup"] >= MIN_SANITY_SPEEDUP
    for family in result.data["families"]:
        assert family["scenarios"], family["family"]


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E19 and write the ``BENCH_failures.json`` baseline file."""
    result = run_e19(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_failures.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--min-speedup", default=MIN_LARGEST_SCALE_SPEEDUP, type=float,
        help="fail (exit 1) if min(suite rounds, suite wall) speedup is "
        "below this; pass 0 for record-only mode",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    for family in payload["families"]:
        print(
            f"{family['family']:<20} n={family['n']:<5} "
            f"disc={family['disconnected']} "
            f"frozen={100 * family['mean_frozen_fraction']:.0f}% "
            f"median={family['median_rounds_speedup']:.2f}x "
            f"wall={family['wall_speedup']:.2f}x"
        )
    print(
        f"suite: rounds {payload['suite_rounds_speedup']:.2f}x, "
        f"wall {payload['suite_wall_speedup']:.2f}x "
        f"(gate takes the min: {payload['largest_scale_speedup']:.2f}x)"
    )
    print(f"wrote {args.out}")
    if payload["largest_scale_speedup"] < args.min_speedup:
        print(
            f"FAIL: repair-vs-rebuild speedup below {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
