"""E6 — Lemma 5: CoreFast w.h.p. guarantees over independent seeds."""

from conftest import run_experiment

from repro.analysis.experiments import run_e06


def test_e06_core_fast(benchmark, scale):
    result = run_experiment(benchmark, run_e06, scale)
    for congestion_rate, good_rate in result.data["rates"]:
        assert congestion_rate >= 0.9
        assert good_rate >= 0.9
