"""E14 — simulator engine throughput: batched vs reference.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e14`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e14_engine.py --scale small \
        --out BENCH_simulator.json

so the perf trajectory (rounds/sec and wall time per graph family, per
engine) is tracked from the first engine PR onward.  The JSON schema
is documented in ``benchmarks/conftest.py``.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e14
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e14

# The headline acceptance bar: the batched engine must beat the
# reference engine by at least this factor on the largest family.
MIN_LARGEST_SCALE_SPEEDUP = 3.0


def test_e14_engine_throughput(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    result = run_experiment(benchmark, run_e14, scale)
    assert result.data["largest_scale_speedup"] >= MIN_LARGEST_SCALE_SPEEDUP
    # run_e14 itself raises if any engine disagreed on rounds/messages;
    # the sparse families hover at ~1.4-2x, so only require no slowdown
    # beyond noise there.
    assert all(speedup > 0.8 for speedup in result.data["speedups"])


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E14 and write the ``BENCH_simulator.json`` baseline file."""
    result = run_e14(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_simulator.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--min-speedup", default=MIN_LARGEST_SCALE_SPEEDUP, type=float,
        help="fail (exit 1) if the largest-scale speedup is below this; "
        "pass 0 for record-only mode (e.g. on noisy shared CI runners)",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    for family in payload["families"]:
        print(
            f"{family['family']:<24} rounds={family['rounds']:<6} "
            f"messages={family['messages']:<8} speedup={family['speedup']:.2f}x"
        )
    print(f"largest-scale speedup: {payload['largest_scale_speedup']:.2f}x")
    print(f"wrote {args.out}")
    if payload["largest_scale_speedup"] < args.min_speedup:
        print(
            f"FAIL: largest-scale speedup below {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
