"""E22 — batched doubling-ladder throughput: vector ladder vs loop.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e22`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e22_batch_construct.py --scale paper \
        --out BENCH_batch_construct.json

so the perf trajectory of the batched construction ladder (the whole
``(c, b)`` doubling climb over a mixed-family instance grid) is
tracked alongside the other baselines.  The JSON schema
(``repro.bench_batch_construct.v1``) is documented in
``benchmarks/conftest.py``.

Requires the ``fast-math`` extra (numpy): without it the vector
strategy cannot run and the script fails unless ``--min-speedup 0``.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e22
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e22

# The headline acceptance bar: at paper-scale grid size the vector
# ladder must beat the per-instance loop by at least this factor.
MIN_LADDER_SPEEDUP = 3.0


def test_e22_batch_construct_throughput(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    from repro.graphs.batch_csr import numpy_available

    result = run_experiment(benchmark, run_e22, scale)
    if not numpy_available():
        assert result.data["speedup"] is None
        return
    # run_e22 itself raises if loop and vector outcomes diverged.  The
    # 3x gate lives at paper scale (the batch-construct-bench CI job);
    # at small scale the instances are too tiny for the gate, but the
    # vector ladder must at least not collapse.
    if scale == "paper":
        assert result.data["speedup"] >= MIN_LADDER_SPEEDUP
    else:
        assert result.data["speedup"] > 0.5


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E22 and write the ``BENCH_batch_construct.json`` baseline."""
    result = run_e22(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_batch_construct.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--min-speedup", default=MIN_LADDER_SPEEDUP, type=float,
        help="fail (exit 1) if the ladder speedup is below this; "
        "pass 0 for record-only mode",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    grid = payload["grid"]
    for strategy, row in payload["results"].items():
        print(
            f"{strategy:<8} grid={grid['instances']}x{grid['family']} "
            f"(n_total={grid['n_total']}) wall={row['wall_s']:.4f}s "
            f"({row['instances_per_s']:.1f} inst/s)"
        )
    speedup = payload["speedup"]
    if speedup is None:
        print("vector strategy unavailable (fast-math extra not installed)")
        if args.min_speedup > 0:
            print("FAIL: no vector measurement to gate", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
        return 0
    print(f"ladder speedup: {speedup:.2f}x over {payload['max_rungs']} rungs")
    print(f"wrote {args.out}")
    if speedup < args.min_speedup:
        print(
            f"FAIL: ladder speedup below {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
