"""E8 — Theorem 1 + Corollary 1: the genus-g sweep, no embedding needed."""

from conftest import run_experiment

from repro.analysis.experiments import run_e08


def test_e08_genus(benchmark, scale):
    result = run_experiment(benchmark, run_e08, scale)
    # The rounds / (gD log^2 D log N) ratio stays bounded across g.
    assert max(result.data["ratios"]) <= 40
