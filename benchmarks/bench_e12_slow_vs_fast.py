"""E12 — Sections 5.3 vs 5.4: the CoreSlow / CoreFast trade-off in c."""

from conftest import run_experiment

from repro.analysis.experiments import run_e12


def test_e12_slow_vs_fast(benchmark, scale):
    result = run_experiment(benchmark, run_e12, scale)
    slow, fast = result.data["slow"], result.data["fast"]
    # CoreFast must win for the largest c (the regime it exists for).
    assert fast[-1] < slow[-1]
    # CoreSlow's rounds grow with c before the unusable cap bites.
    assert slow[2] > slow[0]
