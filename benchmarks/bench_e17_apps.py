"""E17 — application throughput: direct backend vs the simulated stack.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e17`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e17_apps.py --scale small --out BENCH_apps.json

so the perf trajectory of the application layer (wall time of one full
shortcut Borůvka MST per family, per backend) is tracked alongside the
simulator, quality, and construction baselines.  The JSON schema
(``repro.bench_apps.v1``) is documented in ``benchmarks/conftest.py``.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e17
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e17

# The headline acceptance bar: the direct application stack must beat
# the simulated one by at least this factor on the largest
# both-backend family.
MIN_LARGEST_SCALE_SPEEDUP = 3.0


def test_e17_app_throughput(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    result = run_experiment(benchmark, run_e17, scale)
    assert result.data["largest_scale_speedup"] >= MIN_LARGEST_SCALE_SPEEDUP
    # run_e17 itself raises if the backends disagreed on any output;
    # every both-backend family must clear the bar — the win is
    # algorithmic (no engine machinery on any superstep), not a timing
    # accident.
    assert all(speedup > 2 for speedup in result.data["speedups"])
    # The direct-only extension must reach instances >= 10x the
    # same-scale E9 grid (>= 1000 nodes at paper scale).
    assert result.data["extension_max_n"] >= 10 * result.data["e9_grid_n"]


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E17 and write the ``BENCH_apps.json`` baseline file."""
    result = run_e17(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_apps.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--min-speedup", default=MIN_LARGEST_SCALE_SPEEDUP, type=float,
        help="fail (exit 1) if the largest-scale speedup is below this; "
        "pass 0 for record-only mode",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    for family in payload["families"]:
        speedup = family["speedup"]
        label = f"{speedup:.2f}x" if speedup is not None else "direct-only"
        print(
            f"{family['family']:<24} n={family['n']:<6} "
            f"phases={family['phases']:<3} {label}"
        )
    print(f"largest-scale speedup: {payload['largest_scale_speedup']:.2f}x")
    print(f"extension reaches n={payload['extension_max_n']}")
    print(f"wrote {args.out}")
    if payload["largest_scale_speedup"] < args.min_speedup:
        print(
            f"FAIL: largest-scale speedup below {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
