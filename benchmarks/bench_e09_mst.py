"""E9 — Lemma 4: exact shortcut-Borůvka MST on bounded-genus graphs."""

from conftest import run_experiment

from repro.analysis.experiments import run_e09


def test_e09_mst(benchmark, scale):
    result = run_experiment(benchmark, run_e09, scale)
    assert result.data["all_exact"]
