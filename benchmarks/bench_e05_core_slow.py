"""E5 — Lemma 7: CoreSlow guarantees (congestion 2c, N/2 good, O(Dc))."""

from conftest import run_experiment

from repro.analysis.experiments import run_e05


def test_e05_core_slow(benchmark, scale):
    result = run_experiment(benchmark, run_e05, scale)
    assert result.data["all_ok"]
    assert all(ratio <= 1.0 for ratio in result.data["ratios"])
