"""E20 — fault-tolerant shortcut service: warm store and chaos storm.

As a pytest benchmark this wraps :func:`repro.analysis.experiments.run_e20`
like every other ``bench_eXX`` module.  Run directly as a script it
also writes the machine-readable baseline::

    python benchmarks/bench_e20_service.py --scale paper \
        --out BENCH_service.json

so the service trajectory (cold vs warm requests/sec per family,
recovery-after-corruption latency, chaos-storm outcome counters) is
tracked alongside the simulator, quality, construction, application,
instance, and failure baselines.  The JSON schema
(``repro.bench_service.v1``) is documented in ``benchmarks/conftest.py``.

The acceptance gate holds at every scale: a warm store answers repeat
requests without touching the construction stack, so pooled warm
throughput must be at least 3x cold, and the seeded chaos storm must
finish with zero wrong answers (the runner raises otherwise).
"""

import argparse
import json
import platform
import sys
from pathlib import Path

try:
    from repro.analysis.experiments import run_e20
except ImportError:  # direct script run without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.experiments import run_e20

# The headline acceptance bar: pooled warm requests/sec at least 3x the
# pooled cold requests/sec.
MIN_WARM_SPEEDUP = 3.0


def test_e20_service(benchmark, scale):
    # Deferred so the script path below works without pytest installed.
    from conftest import run_experiment

    result = run_experiment(benchmark, run_e20, scale)
    # run_e20 itself asserts every warm response ==-matches its cold
    # twin and that the chaos storm served zero wrong answers.
    assert result.data["warm_speedup"] >= MIN_WARM_SPEEDUP
    assert result.data["chaos"]["wrong"] == 0
    for family in result.data["families"]:
        assert family["warm_speedup"] >= MIN_WARM_SPEEDUP, family["family"]


def write_baseline(scale: str, out_path: Path) -> dict:
    """Run E20 and write the ``BENCH_service.json`` baseline file."""
    result = run_e20(scale)
    payload = dict(result.data)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["small", "paper"])
    parser.add_argument(
        "--out", default="BENCH_service.json", type=Path,
        help="where to write the baseline JSON",
    )
    parser.add_argument(
        "--min-speedup", default=MIN_WARM_SPEEDUP, type=float,
        help="fail (exit 1) if the pooled warm/cold throughput ratio is "
        "below this; pass 0 for record-only mode",
    )
    args = parser.parse_args(argv)
    payload = write_baseline(args.scale, args.out)
    for family in payload["families"]:
        print(
            f"{family['family']:<16} n={family['n']:<5} "
            f"cold={family['cold_rps']:.1f}/s "
            f"warm={family['warm_rps']:.1f}/s "
            f"({family['warm_speedup']:.0f}x) "
            f"recovery={1000 * family['recovery_s']:.1f}ms"
        )
    chaos = payload["chaos"]
    print(
        f"chaos: {chaos['requests']} requests, {chaos['correct']} correct "
        f"({chaos['correct_warm']} warm), {chaos['clean_errors']} clean "
        f"errors, {chaos['wrong']} wrong; injected {chaos['injected']}"
    )
    print(
        f"pooled: cold {payload['cold_rps']:.1f}/s, "
        f"warm {payload['warm_rps']:.1f}/s "
        f"(speedup {payload['warm_speedup']:.1f}x)"
    )
    print(f"wrote {args.out}")
    if payload["warm_speedup"] < args.min_speedup:
        print(
            f"FAIL: warm/cold throughput below {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    if chaos["wrong"]:
        print("FAIL: chaos storm served a wrong answer", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
