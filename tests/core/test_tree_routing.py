"""Tests for Lemma 2 subtree routing."""

import random

import pytest

from repro.core.tree_routing import (
    broadcast,
    convergecast,
    make_task,
    task_edge_congestion,
)
from repro.errors import ShortcutError
from repro.graphs.spanning_trees import SpanningTree


def _root_path_tasks(tree, nodes):
    tasks = []
    for tid, v in enumerate(nodes):
        tasks.append(make_task(tree, tid, {v} | set(tree.ancestors(v))))
    return tasks


def test_make_task_finds_root(grid6_tree):
    task = make_task(grid6_tree, 0, {35} | set(grid6_tree.ancestors(35)))
    assert task.root == 0
    assert task.root_depth == 0


def test_make_task_rejects_disconnected(grid6_tree):
    with pytest.raises(ShortcutError):
        make_task(grid6_tree, 0, {0, 35})


def test_make_task_rejects_empty(grid6_tree):
    with pytest.raises(ShortcutError):
        make_task(grid6_tree, 0, set())


def test_singleton_task(grid6, grid6_tree):
    task = make_task(grid6_tree, 5, {17})
    assert task.root == 17
    results, run = convergecast(
        grid6, grid6_tree, [task], {task.key: {17: 99}}, "min"
    )
    assert results[task.key] == 99
    assert run.rounds == 0  # no communication needed


def test_convergecast_min_correct(grid6, grid6_tree):
    tasks = _root_path_tasks(grid6_tree, [35, 30, 11])
    values = {t.key: {v: v + 100 for v in t.nodes} for t in tasks}
    results, _run = convergecast(grid6, grid6_tree, tasks, values, "min")
    for t in tasks:
        assert results[t.key] == min(t.nodes) + 100


def test_convergecast_sum_correct(grid6, grid6_tree):
    tasks = _root_path_tasks(grid6_tree, [35, 30, 11])
    values = {t.key: {v: 1 for v in t.nodes} for t in tasks}
    results, _run = convergecast(grid6, grid6_tree, tasks, values, "sum")
    for t in tasks:
        assert results[t.key] == len(t.nodes)


def test_convergecast_max_correct(grid6, grid6_tree):
    tasks = _root_path_tasks(grid6_tree, [35])
    values = {tasks[0].key: {v: v for v in tasks[0].nodes}}
    results, _run = convergecast(grid6, grid6_tree, tasks, values, "max")
    assert results[tasks[0].key] == 35


def test_convergecast_relay_only_members(grid6, grid6_tree):
    # Only the leaf contributes; inner nodes relay None.
    task = make_task(grid6_tree, 0, {35} | set(grid6_tree.ancestors(35)))
    results, _run = convergecast(
        grid6, grid6_tree, [task], {task.key: {35: 7}}, "min"
    )
    assert results[task.key] == 7


def test_convergecast_all_none(grid6, grid6_tree):
    task = make_task(grid6_tree, 0, {35} | set(grid6_tree.ancestors(35)))
    results, _run = convergecast(grid6, grid6_tree, [task], {}, "min")
    assert results[task.key] is None


def test_convergecast_round_bound(grid6, grid6_tree):
    rng = random.Random(3)
    tasks = _root_path_tasks(
        grid6_tree, [rng.randrange(36) for _ in range(40)]
    )
    c = task_edge_congestion(grid6_tree, tasks)
    values = {t.key: {v: v for v in t.nodes} for t in tasks}
    _results, run = convergecast(grid6, grid6_tree, tasks, values, "min")
    assert run.rounds <= grid6_tree.height + c + 1


def test_broadcast_delivers_everywhere(grid6, grid6_tree):
    tasks = _root_path_tasks(grid6_tree, [35, 30, 11])
    payload = {t.key: 500 + t.tid for t in tasks}
    delivered, _run = broadcast(grid6, grid6_tree, tasks, payload)
    for t in tasks:
        assert set(delivered[t.key]) == set(t.nodes)
        assert all(v == 500 + t.tid for v in delivered[t.key].values())


def test_broadcast_round_bound(grid6, grid6_tree):
    rng = random.Random(9)
    tasks = _root_path_tasks(
        grid6_tree, [rng.randrange(36) for _ in range(40)]
    )
    c = task_edge_congestion(grid6_tree, tasks)
    payload = {t.key: t.tid for t in tasks}
    _delivered, run = broadcast(grid6, grid6_tree, tasks, payload)
    assert run.rounds <= grid6_tree.height + c + 1


def test_task_edge_congestion_counts(grid6_tree):
    tasks = _root_path_tasks(grid6_tree, [35, 35, 35])
    # Three identical root paths: every path edge carries 3 tasks.
    assert task_edge_congestion(grid6_tree, tasks) == 3


def test_priority_is_by_root_depth_then_id(grid6_tree):
    deep = make_task(grid6_tree, 0, {35, grid6_tree.parent(35)})
    shallow = make_task(grid6_tree, 1, {0} | set(grid6_tree.children(0)))
    assert shallow.priority < deep.priority


def test_combine_rejects_unknown_op(grid6, grid6_tree):
    task = make_task(grid6_tree, 0, {35} | set(grid6_tree.ancestors(35)))
    with pytest.raises(ShortcutError):
        convergecast(
            grid6, grid6_tree, [task], {task.key: {35: 1, 0: 2}}, "xor"
        )
