"""Tests for shortcut objects (Definitions 1 and 2)."""

import pytest

from repro.core.shortcut import GeneralShortcut, TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


@pytest.fixture
def line_tree():
    # Path 0-1-2-3-4 rooted at 0.
    return SpanningTree(0, [-1, 0, 1, 2, 3])


@pytest.fixture
def two_parts():
    return Partition(5, [[1, 2], [3, 4]])


def test_construction_and_subgraphs(line_tree, two_parts):
    s = TreeRestrictedShortcut(line_tree, two_parts, [[(0, 1)], [(2, 3)]])
    assert s.size == 2
    assert s.subgraph(0) == frozenset({(0, 1)})
    assert s.subgraph(1) == frozenset({(2, 3)})


def test_rejects_non_tree_edge(line_tree, two_parts):
    with pytest.raises(ShortcutError):
        TreeRestrictedShortcut(line_tree, two_parts, [[(0, 2)], []])


def test_rejects_wrong_subgraph_count(line_tree, two_parts):
    with pytest.raises(ShortcutError):
        TreeRestrictedShortcut(line_tree, two_parts, [[]])


def test_edge_map(line_tree, two_parts):
    s = TreeRestrictedShortcut(
        line_tree, two_parts, [[(1, 2), (2, 3)], [(2, 3)]]
    )
    assert s.edge_map[(2, 3)] == frozenset({0, 1})
    assert s.parts_using(2, 1) == frozenset({0})
    assert s.parts_using(3, 4) == frozenset()


def test_from_edge_map_roundtrip(line_tree, two_parts):
    edge_map = {(0, 1): [0], (2, 3): [0, 1]}
    s = TreeRestrictedShortcut.from_edge_map(line_tree, two_parts, edge_map)
    assert s.subgraph(0) == frozenset({(0, 1), (2, 3)})
    assert s.subgraph(1) == frozenset({(2, 3)})


def test_from_edge_map_bad_part(line_tree, two_parts):
    with pytest.raises(ShortcutError):
        TreeRestrictedShortcut.from_edge_map(line_tree, two_parts, {(0, 1): [5]})


def test_empty_shortcut(line_tree, two_parts):
    s = TreeRestrictedShortcut.empty(line_tree, two_parts)
    assert all(not s.subgraph(i) for i in range(2))


def test_restricted_to(line_tree, two_parts):
    s = TreeRestrictedShortcut(line_tree, two_parts, [[(0, 1)], [(2, 3)]])
    r = s.restricted_to([1])
    assert r.subgraph(0) == frozenset()
    assert r.subgraph(1) == frozenset({(2, 3)})


def test_merged_with(line_tree, two_parts):
    a = TreeRestrictedShortcut(line_tree, two_parts, [[(0, 1)], []])
    b = TreeRestrictedShortcut(line_tree, two_parts, [[(1, 2)], [(3, 4)]])
    merged = a.merged_with(b)
    assert merged.subgraph(0) == frozenset({(0, 1), (1, 2)})
    assert merged.subgraph(1) == frozenset({(3, 4)})


def test_merged_with_wrong_partition(line_tree, two_parts):
    other_parts = Partition(5, [[1], [3]])
    a = TreeRestrictedShortcut.empty(line_tree, two_parts)
    b = TreeRestrictedShortcut.empty(line_tree, other_parts)
    with pytest.raises(ShortcutError):
        a.merged_with(b)


def test_as_general(line_tree, two_parts):
    s = TreeRestrictedShortcut(line_tree, two_parts, [[(0, 1)], []])
    g = s.as_general()
    assert isinstance(g, GeneralShortcut)
    assert g.subgraph(0) == frozenset({(0, 1)})


def test_general_shortcut_allows_non_tree_edges(two_parts):
    g = GeneralShortcut(two_parts, [[(0, 4)], []])
    assert g.subgraph(0) == frozenset({(0, 4)})


def test_validate_in(grid6, grid6_tree, grid6_voronoi):
    s = TreeRestrictedShortcut.empty(grid6_tree, grid6_voronoi)
    s.validate_in(grid6)  # must not raise


def test_edge_orientation_normalised(line_tree, two_parts):
    s = TreeRestrictedShortcut(line_tree, two_parts, [[(1, 0)], []])
    assert (0, 1) in s.subgraph(0)
