"""Tests for the Appendix A doubling mechanism."""

import math

import pytest

from repro.core import quality
from repro.core.doubling import find_shortcut_doubling
from repro.core.find_shortcut import find_shortcut
from repro.errors import ConstructionFailedError
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


def test_succeeds_without_any_knowledge(grid6, grid6_tree, grid6_voronoi):
    outcome = find_shortcut_doubling(grid6, grid6_tree, grid6_voronoi, seed=1)
    assert outcome.trials[-1].succeeded
    counts = quality.block_counts(outcome.result.shortcut)
    assert all(count <= 3 * outcome.b for count in counts)


def test_parameters_double_on_failure(grid6, grid6_tree, grid6_voronoi):
    outcome = find_shortcut_doubling(grid6, grid6_tree, grid6_voronoi, seed=2)
    for earlier, later in zip(outcome.trials, outcome.trials[1:]):
        assert later.c == 2 * earlier.c
        assert later.b == 2 * earlier.b
    assert all(not t.succeeded for t in outcome.trials[:-1])


def test_custom_start(grid6, grid6_tree, grid6_voronoi):
    outcome = find_shortcut_doubling(
        grid6, grid6_tree, grid6_voronoi, c_start=8, b_start=2, seed=3
    )
    assert outcome.trials[0].c == 8
    assert outcome.trials[0].b == 2


def test_max_trials_exhaustion(grid6, grid6_tree):
    # Row parts fail at (c=1, b=1); with a single trial allowed the
    # search must give up.
    partition = partitions.grid_rows(6, 6)
    with pytest.raises(ConstructionFailedError):
        find_shortcut_doubling(
            grid6, grid6_tree, partition, max_trials=1, seed=4
        )


def test_works_on_non_genus_graph():
    topology = generators.erdos_renyi_connected(48, 0.08, seed=5)
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, 6, seed=5)
    outcome = find_shortcut_doubling(topology, tree, partition, seed=5)
    counts = quality.block_counts(outcome.result.shortcut)
    assert all(count <= 3 * outcome.b for count in counts)


def test_can_beat_theoretical_bound(torus5):
    """Appendix A: the search may find far better shortcuts than the
    genus-g worst case promises."""
    from repro.core.existence import genus_bound

    tree = SpanningTree.bfs(torus5, 0)
    partition = partitions.voronoi(torus5, 5, seed=7)
    outcome = find_shortcut_doubling(torus5, tree, partition, seed=7)
    c_theory, _b_theory = genus_bound(1, tree.height)
    measured = quality.shortcut_congestion(outcome.result.shortcut)
    assert measured < c_theory


def test_ledger_accumulates_failed_trials(grid6, grid6_tree):
    partition = partitions.voronoi(grid6, 18, seed=8)
    outcome = find_shortcut_doubling(grid6, grid6_tree, partition, seed=8)
    # Rounds include all trials, successful or not.
    assert outcome.rounds >= outcome.result.ledger.total_rounds - outcome.rounds


def test_failed_trials_record_consumed_iterations(grid6, grid6_tree):
    """Regression: failed trials used to hardcode ``iterations=0``."""
    partition = partitions.grid_rows(6, 6)
    outcome = find_shortcut_doubling(grid6, grid6_tree, partition, seed=8)
    budget = max(3, math.ceil(math.log2(partition.size + 1)) + 2)
    failed = [trial for trial in outcome.trials if not trial.succeeded]
    assert failed  # row parts are hopeless at (c=1, b=1)
    assert all(trial.iterations == budget for trial in failed)


def test_construction_error_carries_iterations_and_state(grid6, grid6_tree):
    partition = partitions.grid_rows(6, 6)
    with pytest.raises(ConstructionFailedError) as info:
        find_shortcut(
            grid6, grid6_tree, partition, 1, 1, max_iterations=2, seed=3
        )
    error = info.value
    assert error.iterations == 2
    assert error.state is not None
    assert error.state.remaining
    assert len(error.state.good_history) == 2
    frozen = set(range(partition.size)) - set(error.state.remaining)
    for index in frozen:
        assert error.state.shortcut.subgraph(index)


def test_warm_start_carries_frozen_parts(grid6, grid6_tree):
    """The successful trial only constructs for the still-bad parts."""
    partition = partitions.grid_rows(6, 6)
    warm = find_shortcut_doubling(grid6, grid6_tree, partition, seed=8)
    failed = [trial for trial in warm.trials if not trial.succeeded]
    assert failed
    # The warm-started success covers only the parts the failed trials
    # left bad; the frozen parts ride along in the final shortcut.
    covered = set()
    for good in warm.result.good_history:
        covered |= good
    assert covered < set(range(partition.size))
    counts = quality.block_counts(warm.result.shortcut)
    assert all(count <= 3 * warm.b for count in counts)

    cold = find_shortcut_doubling(
        grid6, grid6_tree, partition, seed=8, warm_start=False
    )
    cold_covered = set()
    for good in cold.result.good_history:
        cold_covered |= good
    assert cold_covered == set(range(partition.size))


def test_deterministic_slow_variant(grid6, grid6_tree, grid6_voronoi):
    a = find_shortcut_doubling(
        grid6, grid6_tree, grid6_voronoi, use_fast=False, seed=1
    )
    b = find_shortcut_doubling(
        grid6, grid6_tree, grid6_voronoi, use_fast=False, seed=2
    )
    assert a.result.shortcut.edge_map == b.result.shortcut.edge_map
