"""Tests for the Verification subroutine (Lemmas 3 and 6)."""

from repro.congest.trace import RoundLedger
from repro.core import quality
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified, empty_shortcut
from repro.core.verification import verification


def test_finds_exactly_the_good_parts(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    truth = quality.block_counts(outcome.shortcut)
    for b_limit in (1, 2, 3):
        verdict = verification(grid6, outcome.shortcut, b_limit, seed=1)
        expected = frozenset(
            i for i, count in enumerate(truth) if count <= b_limit
        )
        assert verdict.good_parts == expected


def test_counts_reported(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    truth = quality.block_counts(outcome.shortcut)
    b_max = max(truth)
    verdict = verification(grid6, outcome.shortcut, b_max, seed=2)
    for i, count in enumerate(truth):
        assert verdict.counts[i] == count


def test_consider_filter(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    truth = quality.block_counts(outcome.shortcut)
    b_max = max(truth)
    verdict = verification(
        grid6, outcome.shortcut, b_max, consider={0, 1}, seed=3
    )
    assert verdict.good_parts <= {0, 1}


def test_empty_shortcut_counts_part_sizes(grid6, grid6_tree, grid6_voronoi):
    shortcut = empty_shortcut(grid6_tree, grid6_voronoi)
    sizes = [len(grid6_voronoi.members(i)) for i in range(grid6_voronoi.size)]
    b_limit = max(sizes)
    verdict = verification(grid6, shortcut, b_limit, seed=4)
    assert verdict.good_parts == frozenset(range(grid6_voronoi.size))
    for i, size in enumerate(sizes):
        assert verdict.counts[i] == size


def test_round_cost_scales_with_limit(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion)
    costs = []
    for b_limit in (1, 4):
        ledger = RoundLedger()
        verification(grid6, outcome.shortcut, b_limit, seed=5, ledger=ledger)
        costs.append(ledger.total_rounds)
    assert costs[0] < costs[1]  # more supersteps for larger limits


def test_singleton_parts(grid6, grid6_tree):
    from repro.graphs.partitions import singletons

    partition = singletons(grid6)
    shortcut = empty_shortcut(grid6_tree, partition)
    verdict = verification(grid6, shortcut, 1, seed=6)
    assert verdict.good_parts == frozenset(range(36))
