"""Tests for the Theorem 2 / Lemma 3 partwise engine."""

import pytest

from repro.congest.trace import RoundLedger
from repro.core import quality
from repro.core.core_slow import core_slow
from repro.core.existence import best_certified
from repro.core.partwise import PartwiseEngine


@pytest.fixture
def engine_setup(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    outcome = core_slow(grid6, grid6_tree, grid6_voronoi, point.congestion, seed=3)
    ledger = RoundLedger()
    engine = PartwiseEngine(grid6, outcome.shortcut, seed=3, ledger=ledger)
    b = max(1, quality.block_parameter(outcome.shortcut))
    return grid6, grid6_voronoi, outcome.shortcut, engine, b, ledger


def test_every_member_has_a_block(engine_setup):
    _t, partition, _s, engine, _b, _l = engine_setup
    for i in range(partition.size):
        for v in partition.members(i):
            assert v in engine.block_of
            assert engine.block_of[v].part == i


def test_block_aggregate_min(engine_setup):
    topology, partition, shortcut, engine, _b, _l = engine_setup
    values = {v: v for v in engine.block_of}
    out = engine.block_aggregate(values, "min")
    for v, block in engine.block_of.items():
        members = block.nodes & partition.members(block.part)
        assert out[v] == min(members)


def test_block_aggregate_sum(engine_setup):
    topology, partition, _s, engine, _b, _l = engine_setup
    values = {v: 1 for v in engine.block_of}
    out = engine.block_aggregate(values, "sum")
    for v, block in engine.block_of.items():
        members = block.nodes & partition.members(block.part)
        assert out[v] == len(members)


def test_exchange_round_trip(engine_setup):
    topology, partition, _s, engine, _b, _l = engine_setup
    payloads = {v: (v,) for v in engine.block_of}
    received = engine.exchange(payloads)
    for v in engine.block_of:
        got = {sender for sender, _payload in received[v]}
        expected = set(engine.part_neighbors[v])
        assert got == expected


def test_minimum_per_part(engine_setup):
    _t, partition, _s, engine, b, _l = engine_setup
    values = {v: v * 3 for v in engine.block_of}
    out = engine.minimum_per_part(values, b)
    for i in range(partition.size):
        expected = min(v * 3 for v in partition.members(i))
        for v in partition.members(i):
            assert out[v] == expected


def test_elect_leaders(engine_setup):
    _t, partition, _s, engine, b, _l = engine_setup
    leaders, knowledge = engine.elect_leaders(b)
    for i in range(partition.size):
        assert leaders[i] == min(partition.members(i))
        for v in partition.members(i):
            assert knowledge[v] == leaders[i]


def test_broadcast_from_leaders(engine_setup):
    _t, partition, _s, engine, b, _l = engine_setup
    injections = {min(partition.members(i)): 900 + i for i in range(partition.size)}
    out = engine.broadcast_from_leaders(injections, b)
    for i in range(partition.size):
        for v in partition.members(i):
            assert out[v] == 900 + i


def test_count_blocks_exact(engine_setup):
    _t, partition, shortcut, engine, b, _l = engine_setup
    counts, verdict = engine.count_blocks(b)
    truth = quality.block_counts(shortcut)
    for i in range(partition.size):
        assert counts[i] == truth[i]
        for v in partition.members(i):
            assert verdict.get(v) == truth[i]


def test_count_blocks_limit_rejects(engine_setup):
    _t, partition, shortcut, engine, _b, _l = engine_setup
    truth = quality.block_counts(shortcut)
    counts, _verdict = engine.count_blocks(1)
    for i in range(partition.size):
        assert counts[i] == (truth[i] if truth[i] <= 1 else None)


def test_count_blocks_zero_limit(engine_setup):
    _t, partition, _s, engine, _b, _l = engine_setup
    counts, _verdict = engine.count_blocks(0)
    assert all(count is None for count in counts.values())


def test_ledger_records_costs(engine_setup):
    _t, _p, _s, engine, b, ledger = engine_setup
    before = ledger.total_rounds
    engine.elect_leaders(b)
    assert ledger.total_rounds > before


def test_part_neighbor_scan_is_hoisted_across_engines(engine_setup):
    """The label-dependent neighbor scan is computed once per
    (topology, partition) and shared by every engine over it — while
    each engine still charges its own discovery round."""
    topology, _p, shortcut, engine, _b, _l = engine_setup
    from repro.congest.trace import RoundLedger

    ledger = RoundLedger()
    second = PartwiseEngine(topology, shortcut, seed=99, ledger=ledger)
    assert second.part_neighbors is engine.part_neighbors
    assert [r.name for r in ledger.records] == ["partwise/neighbor-discovery"]


def test_empty_shortcut_engine(grid6, grid6_tree, grid6_voronoi):
    """With H_i = empty, every node is a singleton block; the engine
    must still work (supergraph = the part itself)."""
    from repro.core.shortcut import TreeRestrictedShortcut

    shortcut = TreeRestrictedShortcut.empty(grid6_tree, grid6_voronoi)
    engine = PartwiseEngine(grid6, shortcut, seed=5)
    # Supergraph diameter can be as large as the part diameter.
    iterations = max(
        grid6_voronoi.part_diameters(grid6)
    ) + 1
    leaders, _ = engine.elect_leaders(iterations)
    for i in range(grid6_voronoi.size):
        assert leaders[i] == min(grid6_voronoi.members(i))
