"""Differential suite: ``batch="vector"`` vs the per-instance loop.

Every batched kernel must reproduce the per-instance fast kernels
**bit-for-bit** over the same instances — the same licensing discipline
as the engine, kernel, mode, and backend fast paths.  Runs across
grid / torus / hub / genus_chain families, mixed partition families,
ragged batches with different ``n`` per instance, and a batch of one.
"""

import pytest

from repro.analysis.instances import InstanceSpec, hydrate
from repro.congest.topology import Topology
from repro.core import quality_fast
from repro.core.batch import (
    core_slow_batch,
    find_shortcut_batch,
    find_shortcut_doubling_batch,
    measure_batch,
    measure_batch_vector,
    pack_batch,
    pack_shortcuts,
    pipeline_batch_vector,
    pipeline_loop,
    run_pipeline,
    using_batch,
    verification_batch,
    verification_counts_batch,
)
from repro.core.construct_fast import (
    core_slow_direct,
    verification_counts_direct,
)
from repro.core.doubling import find_shortcut_doubling
from repro.core.existence import greedy_capped_shortcut
from repro.core.find_shortcut import find_shortcut
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ConstructionFailedError, ShortcutError
from repro.graphs.batch_csr import numpy_available
from repro.graphs.csr import bfs_spanning_tree
from repro.graphs.partitions import Partition

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="batch kernels need the fast-math extra (numpy)",
)

# Ragged on purpose: mixed families, mixed n, mixed partition families.
RAGGED_SPECS = [
    InstanceSpec("grid", (9, 9), partition=("voronoi", 9, 1)),
    InstanceSpec("grid", (7, 7), partition=("rows", 7, 7)),
    InstanceSpec("torus", (8, 8), partition=("voronoi", 8, 2)),
    InstanceSpec("hub", (96, 8), partition=("arcs", 96, 8, 1)),
    InstanceSpec("genus_chain", (2, 5, 5), partition=("voronoi", 6, 5)),
]


@pytest.fixture(scope="module")
def ragged():
    instances = [hydrate(spec) for spec in RAGGED_SPECS]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    shortcuts = [
        greedy_capped_shortcut(tree, partition, 2)[0]
        for tree, partition in zip(trees, partitions)
    ]
    return topologies, trees, partitions, shortcuts


def test_measure_identical_over_ragged_batch(ragged):
    topologies, _trees, _partitions, shortcuts = ragged
    loop = [
        quality_fast.measure(shortcut, topology)
        for shortcut, topology in zip(shortcuts, topologies)
    ]
    vector = measure_batch_vector(shortcuts, topologies)
    assert vector == loop
    # Plain Python ints, never numpy scalars.
    for report in vector:
        assert type(report.congestion) is int
        assert type(report.shortcut_congestion) is int
        assert type(report.block_parameter) is int
        assert type(report.dilation) is int
        assert all(type(count) is int for count in report.block_counts)


def test_measure_without_dilation_identical(ragged):
    topologies, _trees, _partitions, shortcuts = ragged
    loop = [
        quality_fast.measure(shortcut, topology, with_dilation=False)
        for shortcut, topology in zip(shortcuts, topologies)
    ]
    assert measure_batch_vector(
        shortcuts, topologies, with_dilation=False
    ) == loop


def test_measure_batch_axis_dispatch(ragged):
    topologies, _trees, _partitions, shortcuts = ragged
    loop = measure_batch(shortcuts, topologies)
    explicit = measure_batch(shortcuts, topologies, batch="vector")
    assert explicit == loop
    with using_batch("vector"):
        assert measure_batch(shortcuts, topologies) == loop


@pytest.mark.parametrize(
    "b_limits", [[2] * 5, [1, 2, 3, 4, 5], [0, 2, 0, 3, 1]]
)
def test_verification_counts_identical(ragged, b_limits):
    topologies, _trees, _partitions, shortcuts = ragged
    loop = [
        verification_counts_direct(topology, shortcut, limit)
        for topology, shortcut, limit in zip(topologies, shortcuts, b_limits)
    ]
    pack = pack_shortcuts(shortcuts, topologies)
    assert verification_counts_batch(pack, b_limits) == loop


def test_verification_outcomes_identical(ragged):
    topologies, _trees, _partitions, shortcuts = ragged
    consider = [None, {0, 2}, {1}, None, {0, 1, 2}]
    loop = verification_batch(
        topologies, shortcuts, [2, 1, 3, 2, 2], consider=consider,
        mode="direct",
    )
    vector = verification_batch(
        topologies, shortcuts, [2, 1, 3, 2, 2], consider=consider,
        batch="vector",
    )
    assert vector == loop


@pytest.mark.parametrize("cs", [1, [2, 1, 3, 2, 1]])
def test_core_slow_identical(ragged, cs):
    topologies, trees, partitions, _shortcuts = ragged
    c_list = [cs] * 5 if isinstance(cs, int) else cs
    loop = [
        core_slow_direct(topology, tree, partition, c)
        for topology, tree, partition, c in zip(
            topologies, trees, partitions, c_list
        )
    ]
    vector = core_slow_batch(topologies, trees, partitions, cs)
    for reference, batched in zip(loop, vector):
        assert batched.shortcut.subgraphs == reference.shortcut.subgraphs
        assert batched.unusable == reference.unusable
        assert batched.rounds == reference.rounds
        assert batched.messages == reference.messages


def test_core_slow_participating_subsets_identical(ragged):
    topologies, trees, partitions, _shortcuts = ragged
    participating = [None, [0, 2], [1], None, [0, 1, 2]]
    loop = [
        core_slow_direct(topology, tree, partition, 2, participating=allowed)
        for topology, tree, partition, allowed in zip(
            topologies, trees, partitions, participating
        )
    ]
    vector = core_slow_batch(
        topologies, trees, partitions, 2, participating=participating
    )
    for reference, batched in zip(loop, vector):
        assert batched.shortcut.subgraphs == reference.shortcut.subgraphs
        assert batched.unusable == reference.unusable
        assert batched.rounds == reference.rounds
        assert batched.messages == reference.messages


def test_batch_of_one(ragged):
    topologies, _trees, _partitions, shortcuts = ragged
    assert measure_batch_vector(shortcuts[:1], topologies[:1]) == [
        quality_fast.measure(shortcuts[0], topologies[0])
    ]


def test_disconnected_dilation_raises_identically():
    # A part holding two opposite grid corners with no shortcut edges:
    # G[P_0] + H_0 is disconnected, so dilation must raise — the same
    # ShortcutError text as the per-instance kernel, at the same part.
    instance = hydrate(InstanceSpec("grid", (6, 6), partition=("rows", 6, 6)))
    topology = instance.topology
    partition = Partition(topology.n, [{0, topology.n - 1}])
    shortcut = TreeRestrictedShortcut.empty(instance.tree, partition)
    with pytest.raises(ShortcutError) as loop_error:
        quality_fast.measure(shortcut, topology)
    with pytest.raises(ShortcutError) as batch_error:
        measure_batch_vector([shortcut], [topology])
    assert str(batch_error.value) == str(loop_error.value)


def test_pipeline_identical_and_dispatch(ragged):
    topologies, trees, partitions, _shortcuts = ragged
    b_limits = [2, 3, 2, 4, 3]
    loop = pipeline_loop(topologies, trees, partitions, 2, b_limits)
    vector = pipeline_batch_vector(topologies, trees, partitions, 2, b_limits)
    assert vector == loop
    assert run_pipeline(
        topologies, trees, partitions, 2, b_limits, batch="vector"
    ) == loop
    assert run_pipeline(topologies, trees, partitions, 2, b_limits) == loop


def test_grid_seed_sweep_identical():
    # A same-family grid sweep — the E21 shape — must be bit-identical
    # through the fused pipeline, including rounds/messages.
    specs = [
        InstanceSpec("grid", (6, 6), partition=("voronoi", 4, seed))
        for seed in range(8)
    ]
    instances = [hydrate(spec) for spec in specs]
    topologies = [instance.topology for instance in instances]
    trees = [instance.tree for instance in instances]
    partitions = [instance.partition for instance in instances]
    loop = pipeline_loop(topologies, trees, partitions, 3, [3] * 8)
    assert pipeline_batch_vector(
        topologies, trees, partitions, 3, [3] * 8
    ) == loop


# ----------------------------------------------------------------------
# Pack edge cases
# ----------------------------------------------------------------------


def _single_node_instance():
    topology = Topology(1, [])
    tree = bfs_spanning_tree(topology, 0)
    partition = Partition(1, [{0}])
    return topology, tree, partition


def test_pack_single_node_zero_edge_instance():
    topology, tree, partition = _single_node_instance()
    batch = pack_batch([topology], [tree], [partition])
    assert batch.size == 1
    assert batch.n_total == 1
    assert batch.m_total == 0
    assert batch.p_total == 1
    assert batch.max_depth == 0


def test_pack_empty_batch():
    batch = pack_batch([], [], [])
    assert batch.size == 0
    assert batch.n_total == 0
    assert batch.m_total == 0
    assert batch.p_total == 0
    assert find_shortcut_doubling_batch([], [], [], seeds=[], batch="vector") == []
    assert measure_batch([], [], batch="vector") == []


def test_single_node_instance_rides_the_ladder(ragged):
    # A zero-edge single-node instance packed next to real ones: the
    # ladder must treat it as trivially done without perturbing its
    # neighbours in the batch.
    topologies, trees, partitions, _shortcuts = ragged
    topology, tree, partition = _single_node_instance()
    mixed_topologies = [topologies[0], topology, topologies[1]]
    mixed_trees = [trees[0], tree, trees[1]]
    mixed_partitions = [partitions[0], partition, partitions[1]]
    seeds = [3, 5, 7]
    loop = [
        find_shortcut_doubling(t, tr, p, seed=s, mode="direct")
        for t, tr, p, s in zip(
            mixed_topologies, mixed_trees, mixed_partitions, seeds
        )
    ]
    vector = find_shortcut_doubling_batch(
        mixed_topologies, mixed_trees, mixed_partitions,
        seeds=seeds, batch="vector",
    )
    for reference, batched in zip(loop, vector):
        _assert_doubling_equal(reference, batched)


# ----------------------------------------------------------------------
# The doubling-construction ladder
# ----------------------------------------------------------------------


def _assert_doubling_equal(reference, batched):
    """Bit-for-bit equality of two doubling outcomes, including the
    per-rung rounds/messages timing breakdown carried on the trials."""
    assert batched.trials == reference.trials
    assert batched.c == reference.c
    assert batched.b == reference.b
    assert batched.result.iterations == reference.result.iterations
    assert batched.result.good_history == reference.result.good_history
    assert (
        batched.result.shortcut.subgraphs
        == reference.result.shortcut.subgraphs
    )
    assert batched.ledger == reference.ledger


@pytest.fixture(scope="module")
def ragged_seeds():
    return [7 * index + 3 for index in range(len(RAGGED_SPECS))]


def test_ladder_identical_over_ragged_batch(ragged, ragged_seeds):
    topologies, trees, partitions, _shortcuts = ragged
    loop = [
        find_shortcut_doubling(t, tr, p, seed=s, mode="direct")
        for t, tr, p, s in zip(topologies, trees, partitions, ragged_seeds)
    ]
    vector = find_shortcut_doubling_batch(
        topologies, trees, partitions, seeds=ragged_seeds, batch="vector"
    )
    for reference, batched in zip(loop, vector):
        _assert_doubling_equal(reference, batched)


def test_fixed_cb_batch_identical(ragged, ragged_seeds):
    topologies, trees, partitions, _shortcuts = ragged
    loop = [
        find_shortcut(t, tr, p, 3, 3, seed=s, mode="direct")
        for t, tr, p, s in zip(topologies, trees, partitions, ragged_seeds)
    ]
    vector = find_shortcut_batch(
        topologies, trees, partitions, 3, 3, seeds=ragged_seeds,
        batch="vector",
    )
    for reference, batched in zip(loop, vector):
        assert batched.shortcut.subgraphs == reference.shortcut.subgraphs
        assert batched.iterations == reference.iterations
        assert batched.good_history == reference.good_history
        assert batched.ledger == reference.ledger


def test_ladder_use_fast_false_identical(ragged, ragged_seeds):
    topologies, trees, partitions, _shortcuts = ragged
    loop = [
        find_shortcut_doubling(
            t, tr, p, seed=s, use_fast=False, mode="direct"
        )
        for t, tr, p, s in zip(topologies, trees, partitions, ragged_seeds)
    ]
    vector = find_shortcut_doubling_batch(
        topologies, trees, partitions, seeds=ragged_seeds, use_fast=False,
        batch="vector",
    )
    for reference, batched in zip(loop, vector):
        _assert_doubling_equal(reference, batched)


def test_ladder_warm_start_identical(ragged, ragged_seeds):
    # Warm starts harvested from deliberately-starved (1, 1) searches:
    # the batch must resume each instance exactly where the loop does.
    topologies, trees, partitions, _shortcuts = ragged
    states = []
    for t, tr, p, s in zip(topologies, trees, partitions, ragged_seeds):
        try:
            find_shortcut(
                t, tr, p, 1, 1, seed=s, max_iterations=1, mode="direct"
            )
            states.append(None)
        except ConstructionFailedError as error:
            states.append(error.state)
    assert any(state is not None for state in states)
    loop = [
        find_shortcut_doubling(
            t, tr, p, seed=s, c_start=2, b_start=2, initial_state=state,
            mode="direct",
        )
        for t, tr, p, s, state in zip(
            topologies, trees, partitions, ragged_seeds, states
        )
    ]
    vector = find_shortcut_doubling_batch(
        topologies, trees, partitions, seeds=ragged_seeds,
        c_starts=2, b_starts=2, initial_states=states, batch="vector",
    )
    for reference, batched in zip(loop, vector):
        _assert_doubling_equal(reference, batched)


def test_ladder_error_path_identical(ragged, ragged_seeds):
    # A hopeless budget: per-instance errors (message, iteration count,
    # carried state) must match the loop exactly.
    topologies, trees, partitions, _shortcuts = ragged
    loop = find_shortcut_batch(
        topologies, trees, partitions, 1, 1, seeds=ragged_seeds,
        max_iterations=1, return_errors=True, mode="direct",
    )
    vector = find_shortcut_batch(
        topologies, trees, partitions, 1, 1, seeds=ragged_seeds,
        max_iterations=1, return_errors=True, batch="vector",
    )
    for reference, batched in zip(loop, vector):
        assert isinstance(batched, ConstructionFailedError) == isinstance(
            reference, ConstructionFailedError
        )
        if isinstance(reference, ConstructionFailedError):
            assert str(batched) == str(reference)
            assert batched.iterations == reference.iterations
            assert batched.state.remaining == reference.state.remaining
            assert (
                batched.state.shortcut.subgraphs
                == reference.state.shortcut.subgraphs
            )
            assert batched.state.good_history == reference.state.good_history
        else:
            assert batched.shortcut.subgraphs == reference.shortcut.subgraphs
            assert batched.ledger == reference.ledger
