"""Differential conformance: quality_fast kernels vs the reference.

Every test computes the same quality measure with both kernels and
asserts the results are bit-for-bit identical — :class:`QualityReport`
equality covers congestion, shortcut congestion, block parameter,
dilation, per-part block counts, and tree depth.  This suite is what
licenses the fast kernel as :func:`repro.core.quality.measure`'s
default, exactly as ``tests/congest/test_engine_equivalence.py``
licenses the batched engine.

Families cover the paper's instance classes: planar (grid, Delaunay),
bounded genus (torus, genus chain), bounded treewidth (k-tree,
series-parallel), and random (Erdős–Rényi, random regular).
"""

import pytest

from repro.core import quality, quality_fast
from repro.core.core_slow import core_slow
from repro.core.existence import (
    best_certified,
    empty_shortcut,
    full_ancestor_shortcut,
    greedy_capped_shortcut,
)
from repro.core.find_shortcut import find_shortcut
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree
from repro.graphs.weights import weighted

needs_geometry = pytest.mark.skipif(
    not generators.geometry_available(),
    reason="delaunay needs the geometry extra (numpy + scipy)",
)

FAMILIES = {
    # planar
    "grid": lambda: generators.grid(7, 7),
    "delaunay": lambda: generators.delaunay(48, 3),
    # bounded genus
    "torus": lambda: generators.torus(6, 6),
    "genus2": lambda: generators.genus_chain(2, 4, 4),
    # bounded treewidth
    "ktree": lambda: generators.k_tree(40, 3, seed=1),
    "series-parallel": lambda: generators.series_parallel(40, seed=2),
    # random
    "erdos-renyi": lambda: generators.erdos_renyi_connected(44, 0.12, seed=5),
    "random-regular": lambda: generators.random_regular(40, 4, seed=7),
}


def _partitions_for(topology):
    n_parts = max(2, topology.n // 8)
    return [
        partitions.voronoi(topology, n_parts, seed=3),
        partitions.random_arcs(topology, n_parts, seed=4),
        partitions.singletons(topology),
        partitions.whole(topology),
    ]


def _shortcuts_for(tree, partition):
    yield empty_shortcut(tree, partition)
    yield full_ancestor_shortcut(tree, partition)
    yield greedy_capped_shortcut(tree, partition, 2)[0]


def _assert_all_identical(shortcut, topology):
    assert quality_fast.block_counts(shortcut) == quality.block_counts(shortcut)
    assert quality_fast.shortcut_congestion(shortcut) == quality.shortcut_congestion(
        shortcut
    )
    assert quality_fast.congestion(shortcut, topology) == quality.congestion(
        shortcut, topology
    )
    for index in range(shortcut.size):
        assert quality_fast.block_components(shortcut, index) == (
            quality.block_components(shortcut, index)
        )
    try:
        reference_dilation = quality.dilation(shortcut, topology)
    except ShortcutError:
        with pytest.raises(ShortcutError):
            quality_fast.dilation(shortcut, topology)
        reference = quality.measure(
            shortcut, topology, with_dilation=False, kernel="reference"
        )
        fast = quality.measure(shortcut, topology, with_dilation=False, kernel="fast")
        assert fast == reference
        return
    assert quality_fast.dilation(shortcut, topology) == reference_dilation
    reference = quality.measure(shortcut, topology, kernel="reference")
    fast = quality.measure(shortcut, topology, kernel="fast")
    assert fast == reference


@pytest.mark.parametrize(
    "family",
    [
        pytest.param(name, marks=needs_geometry) if name == "delaunay" else name
        for name in sorted(FAMILIES)
    ],
)
def test_measures_identical_across_families(family):
    topology = FAMILIES[family]()
    tree = SpanningTree.bfs(topology, 0)
    for partition in _partitions_for(topology):
        for shortcut in _shortcuts_for(tree, partition):
            _assert_all_identical(shortcut, topology)


@pytest.mark.parametrize("family", ["grid", "torus", "ktree", "erdos-renyi"])
def test_constructed_shortcuts_identical(family):
    """The constructions' outputs (not just synthetic shortcuts) agree."""
    topology = FAMILIES[family]()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, max(2, topology.n // 8), seed=3)
    point = best_certified(tree, partition)
    built = find_shortcut(
        topology, tree, partition, point.congestion, point.block, seed=11
    )
    _assert_all_identical(built.shortcut, topology)
    outcome = core_slow(topology, tree, partition, point.congestion, seed=17)
    _assert_all_identical(outcome.shortcut, topology)


def test_weighted_topology_identical():
    """Definition 1 counts edges, not weights: both kernels must ignore
    weights, and agree with the unweighted run."""
    base = FAMILIES["grid"]()
    topology = weighted(base, seed=13)
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, 6, seed=3)
    shortcut = greedy_capped_shortcut(tree, partition, 2)[0]
    reference = quality.measure(shortcut, topology, kernel="reference")
    fast = quality.measure(shortcut, topology, kernel="fast")
    assert fast == reference
    unweighted_shortcut = TreeRestrictedShortcut(
        SpanningTree.bfs(base, 0), partition, shortcut.subgraphs
    )
    assert quality.measure(unweighted_shortcut, base, kernel="fast") == reference


def test_zero_part_shortcut_identical():
    topology = FAMILIES["grid"]()
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.Partition(topology.n, [])
    shortcut = TreeRestrictedShortcut.empty(tree, partition)
    reference = quality.measure(shortcut, topology, kernel="reference")
    fast = quality.measure(shortcut, topology, kernel="fast")
    assert fast == reference
    assert quality_fast.block_parameter(shortcut) == quality.block_parameter(shortcut)


def test_kernel_selection_machinery():
    assert quality.resolve_kernel(None) == quality.get_default_kernel()
    with quality.using_kernel("reference"):
        assert quality.get_default_kernel() == "reference"
        with quality.using_kernel(None):
            assert quality.get_default_kernel() == "reference"
    assert quality.get_default_kernel() == quality.DEFAULT_KERNEL
    with pytest.raises(ShortcutError):
        quality.resolve_kernel("turbo")


def test_default_kernel_used_by_measure(grid6, grid6_tree, grid6_voronoi):
    shortcut = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    with quality.using_kernel("reference"):
        reference = quality.measure(shortcut, grid6)
    assert quality.measure(shortcut, grid6) == reference
