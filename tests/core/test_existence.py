"""Tests for existential shortcuts and certification."""

import pytest

from repro.core import quality
from repro.core.existence import (
    best_certified,
    certify_frontier,
    empty_shortcut,
    full_ancestor_shortcut,
    genus_bound,
    greedy_capped_shortcut,
)
from repro.errors import ShortcutError


def test_full_ancestor_has_block_parameter_one(grid6_tree, grid6_voronoi):
    s = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    assert quality.block_parameter(s) == 1


def test_full_ancestor_contains_root_paths(grid6_tree, grid6_voronoi):
    s = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    for i in range(grid6_voronoi.size):
        for member in grid6_voronoi.members(i):
            for edge in grid6_tree.path_to_root_edges(member):
                assert edge in s.subgraph(i)


def test_empty_shortcut_block_equals_part_size(grid6_tree, grid6_voronoi):
    s = empty_shortcut(grid6_tree, grid6_voronoi)
    counts = quality.block_counts(s)
    expected = [len(grid6_voronoi.members(i)) for i in range(grid6_voronoi.size)]
    assert counts == expected
    assert quality.shortcut_congestion(s) == 0


def test_greedy_respects_cap(grid6_tree, grid6_voronoi):
    for cap in (1, 3, 6):
        s, _unusable = greedy_capped_shortcut(grid6_tree, grid6_voronoi, cap)
        assert quality.shortcut_congestion(s) <= cap


def test_greedy_with_huge_cap_equals_full_ancestor(grid6_tree, grid6_voronoi):
    s, unusable = greedy_capped_shortcut(grid6_tree, grid6_voronoi, 100)
    assert not unusable
    full = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    assert all(
        s.subgraph(i) == full.subgraph(i) for i in range(grid6_voronoi.size)
    )


def test_greedy_zero_cap_marks_everything(grid6_tree, grid6_voronoi):
    s, unusable = greedy_capped_shortcut(grid6_tree, grid6_voronoi, 0)
    assert quality.shortcut_congestion(s) == 0
    assert unusable  # every edge seeing a part id is unusable


def test_greedy_negative_cap_rejected(grid6_tree, grid6_voronoi):
    with pytest.raises(ShortcutError):
        greedy_capped_shortcut(grid6_tree, grid6_voronoi, -1)


def test_certify_frontier_monotone_blocks(grid6_tree, grid6_voronoi):
    points = certify_frontier(grid6_tree, grid6_voronoi)
    assert points, "frontier must be non-empty"
    # Larger caps can only help: blocks are non-increasing in cap.
    blocks = [p.block for p in points]
    assert all(b1 >= b2 for b1, b2 in zip(blocks, blocks[1:]))


def test_certified_points_are_real(grid6_tree, grid6_voronoi):
    # Every frontier point must be achieved by the greedy witness.
    for point in certify_frontier(grid6_tree, grid6_voronoi):
        s, _ = greedy_capped_shortcut(grid6_tree, grid6_voronoi, point.cap)
        assert quality.shortcut_congestion(s) <= point.congestion
        assert quality.block_parameter(s) <= point.block


def test_best_certified_minimises_routing_cost(grid6_tree, grid6_voronoi):
    best = best_certified(grid6_tree, grid6_voronoi)
    depth = max(1, grid6_tree.height)
    for point in certify_frontier(grid6_tree, grid6_voronoi):
        assert best.routing_cost(depth) <= point.routing_cost(depth)


def test_genus_bound_formulas():
    c, b = genus_bound(0, 10)
    c1, b1 = genus_bound(1, 10)
    c3, _ = genus_bound(3, 10)
    assert c == c1  # planar treated as g=1 factor
    assert c3 == 3 * c1
    assert b == b1 >= 1


def test_genus_bound_validation():
    with pytest.raises(ShortcutError):
        genus_bound(-1, 5)
    with pytest.raises(ShortcutError):
        genus_bound(1, -5)


def test_genus_bound_small_depth():
    c, b = genus_bound(1, 0)
    assert c >= 1 and b >= 1
