"""Warm-start revalidation: frozen parts must be re-checked per instance.

``ConstructionState.revalidated_for`` is the safety gate between the
failure-repair layer and FindShortcut: a frozen good part whose world
changed under it (lost members, lost subgraph edges, lost internal
connectivity) must be demoted back to *remaining* — Verification only
ever re-checks remaining parts, so silently reusing a stale frozen part
would smuggle an invalid shortcut past it.
"""

import pytest

from repro.core.doubling import find_shortcut_doubling
from repro.core.find_shortcut import ConstructionState, find_shortcut
from repro.errors import ShortcutError
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


def _all_frozen_state(outcome, partition):
    """Wrap a finished construction as a fully-frozen warm start."""
    return ConstructionState(
        remaining=frozenset(),
        shortcut=outcome.result.shortcut,
        good_history=(),
    )


@pytest.fixture
def torus_instance():
    topology = generators.torus(4, 4)
    partition = partitions.grid_rows(4, 4)
    tree = SpanningTree.bfs(topology, 0)
    outcome = find_shortcut_doubling(
        topology, tree, partition, seed=5, mode="direct"
    )
    return topology, tree, partition, outcome


def test_unchanged_instance_is_pure_rewrap(torus_instance):
    topology, tree, partition, outcome = torus_instance
    state = _all_frozen_state(outcome, partition)
    revalidated = state.revalidated_for(topology, tree, partition)
    assert revalidated.remaining == frozenset()
    for part in range(partition.size):
        assert revalidated.shortcut.subgraph(part) == (
            outcome.result.shortcut.subgraph(part)
        )
    # Rebuilt over the *given* tree/partition objects for identity checks.
    assert revalidated.shortcut.tree is tree
    assert revalidated.shortcut.partition is partition


def test_lost_internal_edge_demotes_only_that_part(torus_instance):
    """The satellite regression: a frozen part loses an edge internal to
    it — revalidation must demote exactly that part, keep the others
    frozen, and the warm-started construction must still be valid."""
    topology, tree, partition, outcome = torus_instance
    state = _all_frozen_state(outcome, partition)
    labels = partition.labels
    # An intra-row edge that is in the tree (hence possibly in some H_i
    # and certainly load-bearing for the frozen subgraph checks).
    lost = next(
        e for e in sorted(tree.edges) if labels[e[0]] == labels[e[1]]
    )
    broken_part = labels[lost[0]]
    survivor = topology.delete_edges([lost])
    new_tree = SpanningTree.bfs(survivor, 0)

    revalidated = state.revalidated_for(survivor, new_tree, partition)
    assert broken_part in revalidated.remaining
    assert revalidated.shortcut.subgraph(broken_part) == frozenset()
    for part in range(partition.size):
        if part in revalidated.remaining:
            continue
        subgraph = revalidated.shortcut.subgraph(part)
        assert subgraph == outcome.result.shortcut.subgraph(part)
        assert all(edge in new_tree.edges for edge in subgraph)

    # The demoted state still drives a valid construction.
    result = find_shortcut(
        survivor,
        new_tree,
        partition,
        max(outcome.c, 2),
        max(outcome.b, 2),
        seed=5,
        mode="direct",
        warm_start=revalidated,
    )
    result.shortcut.validate_in(survivor)


def test_part_with_failed_subgraph_edge_is_demoted(torus_instance):
    """Deleting an H_i edge (tree edge used by the shortcut) demotes
    every part whose frozen subgraph referenced it."""
    topology, tree, partition, outcome = torus_instance
    shortcut = outcome.result.shortcut
    lost = None
    for part in range(partition.size):
        subgraph = shortcut.subgraph(part)
        if subgraph:
            lost = sorted(subgraph)[0]
            break
    if lost is None:
        pytest.skip("construction used no shortcut edges on this seed")
    survivor = topology.delete_edges([lost])
    new_tree = SpanningTree.bfs(survivor, 0)
    state = _all_frozen_state(outcome, partition)
    revalidated = state.revalidated_for(survivor, new_tree, partition)
    for part in range(partition.size):
        if lost in shortcut.subgraph(part):
            assert part in revalidated.remaining


def test_shape_mismatch_raises(torus_instance):
    topology, tree, partition, outcome = torus_instance
    state = _all_frozen_state(outcome, partition)
    other = partitions.voronoi(topology, 3, seed=1)
    with pytest.raises(ShortcutError, match="re-derive"):
        state.revalidated_for(topology, tree, other)


def test_find_shortcut_always_revalidates_warm_start(torus_instance):
    """find_shortcut must not trust a warm start at face value: handing
    it a state from the *intact* topology while constructing on the
    survivor still yields a shortcut valid in the survivor."""
    topology, tree, partition, outcome = torus_instance
    state = _all_frozen_state(outcome, partition)
    lost = sorted(tree.edges)[0]
    survivor = topology.delete_edges([lost])
    new_tree = SpanningTree.bfs(survivor, 0)
    result = find_shortcut(
        survivor,
        new_tree,
        partition,
        max(outcome.c, 2),
        max(outcome.b, 2),
        seed=5,
        mode="direct",
        warm_start=state,
    )
    result.shortcut.validate_in(survivor)
    for part in range(partition.size):
        for edge in result.shortcut.subgraph(part):
            assert edge != lost
