"""Tests for FindShortcut (Theorem 3)."""

import math

import pytest

from repro.core import quality
from repro.core.existence import best_certified
from repro.core.find_shortcut import (
    default_iteration_limit,
    find_shortcut,
)
from repro.errors import ConstructionFailedError
from repro.graphs import generators, partitions
from repro.graphs.spanning_trees import SpanningTree


def _run(topology, tree, partition, use_fast=True, seed=1):
    point = best_certified(tree, partition)
    result = find_shortcut(
        topology, tree, partition, point.congestion, point.block,
        use_fast=use_fast, seed=seed,
    )
    return point, result


def test_every_part_ends_good(grid6, grid6_tree, grid6_voronoi):
    point, result = _run(grid6, grid6_tree, grid6_voronoi)
    counts = quality.block_counts(result.shortcut)
    assert all(count <= 3 * point.block for count in counts)


def test_congestion_bounded_by_iterations(grid6, grid6_tree, grid6_voronoi):
    point, result = _run(grid6, grid6_tree, grid6_voronoi)
    measured = quality.shortcut_congestion(result.shortcut)
    assert measured <= 8 * point.congestion * result.iterations


def test_iterations_logarithmic(grid6, grid6_tree, grid6_voronoi):
    _point, result = _run(grid6, grid6_tree, grid6_voronoi)
    assert result.iterations <= math.ceil(math.log2(grid6_voronoi.size + 1)) + 3


def test_good_history_partitions_parts(grid6, grid6_tree, grid6_voronoi):
    _point, result = _run(grid6, grid6_tree, grid6_voronoi)
    seen = set()
    for good in result.good_history:
        assert not (good & seen)  # a part is marked good exactly once
        seen |= good
    assert seen == set(range(grid6_voronoi.size))


def test_slow_variant_deterministic(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    a = find_shortcut(
        grid6, grid6_tree, grid6_voronoi, point.congestion, point.block,
        use_fast=False, seed=1,
    )
    b = find_shortcut(
        grid6, grid6_tree, grid6_voronoi, point.congestion, point.block,
        use_fast=False, seed=42,
    )
    assert a.shortcut.edge_map == b.shortcut.edge_map


def test_fast_variant_reproducible_with_seed(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    kwargs = dict(use_fast=True, seed=9, shared_seed=77)
    a = find_shortcut(
        grid6, grid6_tree, grid6_voronoi, point.congestion, point.block, **kwargs
    )
    b = find_shortcut(
        grid6, grid6_tree, grid6_voronoi, point.congestion, point.block, **kwargs
    )
    assert a.shortcut.edge_map == b.shortcut.edge_map
    assert a.rounds == b.rounds


def test_failure_raises_construction_error(grid6, grid6_tree):
    # Row parts with c=1, b=1: a cap of 2 shatters the rows into more
    # than 3 blocks, so parts stay bad and the budget runs out.
    partition = partitions.grid_rows(6, 6)
    with pytest.raises(ConstructionFailedError):
        find_shortcut(
            grid6, grid6_tree, partition, 1, 1,
            max_iterations=2, seed=3,
        )


def test_ledger_has_per_phase_records(grid6, grid6_tree, grid6_voronoi):
    _point, result = _run(grid6, grid6_tree, grid6_voronoi)
    names = [record.name for record in result.ledger.records]
    assert any("core" in name for name in names)
    assert any("partwise" in name for name in names)
    assert result.rounds == result.ledger.total_rounds


def test_default_iteration_limit_grows_with_n():
    assert default_iteration_limit(2) < default_iteration_limit(4096)


def test_works_on_torus(torus5):
    tree = SpanningTree.bfs(torus5, 0)
    partition = partitions.voronoi(torus5, 5, seed=2)
    point, result = _run(torus5, tree, partition)
    counts = quality.block_counts(result.shortcut)
    assert all(count <= 3 * point.block for count in counts)


def test_works_on_hub_arcs(hub_instance):
    topology, partition = hub_instance
    tree = SpanningTree.bfs(topology, 64)
    point, result = _run(topology, tree, partition)
    counts = quality.block_counts(result.shortcut)
    assert all(count <= 3 * point.block for count in counts)
