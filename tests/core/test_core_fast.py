"""Tests for CoreFast (Algorithm 2 / Lemma 5)."""

import pytest

from repro.core import quality
from repro.core.core_fast import (
    active_parts,
    core_fast,
    core_fast_reference,
    sampling_parameters,
)
from repro.core.existence import best_certified
from repro.errors import ShortcutError


def test_sampling_parameters_probability_range():
    p, tau = sampling_parameters(1000, 100)
    assert 0 < p < 1
    assert tau >= 1


def test_sampling_parameters_small_c_degenerates():
    p, tau = sampling_parameters(64, 1)
    assert p == 1.0
    assert tau == 4  # 4 * c * p with p = 1


def test_sampling_parameters_rejects_bad_c():
    with pytest.raises(ShortcutError):
        sampling_parameters(10, 0)


def test_active_parts_probability(grid6_voronoi):
    from repro.graphs.partitions import singletons
    from repro.graphs import generators

    big = singletons(generators.grid(20, 20))
    active = active_parts(big, shared_seed=42, p=0.25)
    assert 0.15 * big.size < len(active) < 0.35 * big.size


def test_active_parts_full_probability(grid6_voronoi):
    active = active_parts(grid6_voronoi, shared_seed=1, p=1.0)
    assert len(active) == grid6_voronoi.size


def test_matches_reference(grid6, grid6_tree, grid6_voronoi):
    for shared_seed in (1, 2, 3):
        outcome = core_fast(
            grid6, grid6_tree, grid6_voronoi, 3, shared_seed=shared_seed
        )
        ref_map, ref_unusable = core_fast_reference(
            grid6_tree, grid6_voronoi, 3, shared_seed, grid6.n
        )
        got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
        assert got == dict(ref_map)
        assert outcome.unusable == ref_unusable


def test_matches_reference_with_participation(grid6, grid6_tree, grid6_voronoi):
    keep = {1, 3, 5}
    outcome = core_fast(
        grid6, grid6_tree, grid6_voronoi, 3,
        shared_seed=7, participating=keep,
    )
    ref_map, _ = core_fast_reference(
        grid6_tree, grid6_voronoi, 3, 7, grid6.n, participating=keep
    )
    got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
    assert got == dict(ref_map)
    for i in range(grid6_voronoi.size):
        if i not in keep:
            assert not outcome.shortcut.subgraph(i)


def test_matches_reference_on_weighted_topology():
    """Weights ride along on the topology; the construction and its
    centralized twin must ignore them identically."""
    from repro.graphs import generators, partitions
    from repro.graphs.spanning_trees import SpanningTree
    from repro.graphs.weights import weighted

    topology = weighted(generators.grid(5, 5), seed=31)
    tree = SpanningTree.bfs(topology, 0)
    partition = partitions.voronoi(topology, 5, seed=4)
    for shared_seed in (3, 17):
        outcome = core_fast(topology, tree, partition, 2, shared_seed=shared_seed)
        ref_map, ref_unusable = core_fast_reference(
            tree, partition, 2, shared_seed, topology.n
        )
        got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
        assert got == dict(ref_map)
        assert outcome.unusable == ref_unusable


def test_matches_reference_on_disconnected_part(grid6, grid6_tree):
    """Parts need not induce connected subgraphs for the core sweep —
    each fragment floods its ancestors independently in both paths."""
    from repro.graphs.partitions import Partition

    partition = Partition(
        grid6.n, [[0, 35], [5, 30], [14, 15, 21, 20]]
    )
    for shared_seed in (1, 9):
        outcome = core_fast(grid6, grid6_tree, partition, 2, shared_seed=shared_seed)
        ref_map, ref_unusable = core_fast_reference(
            grid6_tree, partition, 2, shared_seed, grid6.n
        )
        got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
        assert got == dict(ref_map)
        assert outcome.unusable == ref_unusable


def test_matches_reference_at_p_equal_one(grid6, grid6_tree, grid6_voronoi):
    """c = 1 degenerates the sampling to p = 1 (exact counting with
    threshold 4c): every participating part is active, and Phase A
    must still agree with the twin."""
    p, tau = sampling_parameters(grid6.n, 1)
    assert p == 1.0 and tau == 4
    active = active_parts(grid6_voronoi, shared_seed=55, p=p)
    assert len(active) == grid6_voronoi.size
    outcome = core_fast(grid6, grid6_tree, grid6_voronoi, 1, shared_seed=55)
    ref_map, ref_unusable = core_fast_reference(
        grid6_tree, grid6_voronoi, 1, 55, grid6.n
    )
    got = {e: tuple(sorted(p)) for e, p in outcome.shortcut.edge_map.items()}
    assert got == dict(ref_map)
    assert outcome.unusable == ref_unusable


def test_congestion_8c_whp(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    violations = 0
    for seed in range(8):
        outcome = core_fast(
            grid6, grid6_tree, grid6_voronoi, point.congestion,
            shared_seed=1000 + seed,
        )
        if quality.shortcut_congestion(outcome.shortcut) > 8 * point.congestion:
            violations += 1
    assert violations == 0


def test_half_good_whp(grid6, grid6_tree, grid6_voronoi):
    point = best_certified(grid6_tree, grid6_voronoi)
    failures = 0
    for seed in range(8):
        outcome = core_fast(
            grid6, grid6_tree, grid6_voronoi, point.congestion,
            shared_seed=2000 + seed,
        )
        counts = quality.block_counts(outcome.shortcut)
        good = sum(1 for count in counts if count <= 3 * point.block)
        if good < grid6_voronoi.size / 2:
            failures += 1
    assert failures == 0


def test_round_bound(grid6, grid6_tree, grid6_voronoi):
    import math

    c = 4
    _p, tau = sampling_parameters(grid6.n, c)
    outcome = core_fast(grid6, grid6_tree, grid6_voronoi, c, shared_seed=5)
    # Phase A: <= D * (tau + 1); Phase B: <= D + measured congestion.
    measured_c = quality.shortcut_congestion(outcome.shortcut)
    bound = (grid6_tree.height + 1) * (tau + 1) + grid6_tree.height + measured_c + 2
    assert outcome.rounds <= bound


def test_unusable_edges_unassigned(grid6, grid6_tree):
    from repro.graphs.partitions import voronoi

    partition = voronoi(grid6, 18, seed=9)
    outcome = core_fast(grid6, grid6_tree, partition, 1, shared_seed=11)
    for edge in outcome.unusable:
        assert edge not in outcome.shortcut.edge_map


def test_assignment_contains_own_visibility(grid6, grid6_tree, grid6_voronoi):
    """Every usable parent edge of a part member must carry that part
    (the member's id floods at least one hop)."""
    outcome = core_fast(grid6, grid6_tree, grid6_voronoi, 3, shared_seed=13)
    for v in grid6.nodes:
        edge = grid6_tree.parent_edge(v)
        if edge is None or edge in outcome.unusable:
            continue
        part = grid6_voronoi.part_of(v)
        if part is not None:
            assert part in outcome.shortcut.edge_map.get(edge, ())
