"""Tests for congestion / dilation / block parameter (Defs 1, 3; Lemma 1)."""

import pytest

from repro.congest.topology import Topology
from repro.core import quality, quality_fast
from repro.core.shortcut import TreeRestrictedShortcut
from repro.errors import ShortcutError
from repro.graphs.partitions import Partition
from repro.graphs.spanning_trees import SpanningTree


@pytest.fixture
def line():
    # Path 0-1-2-3-4-5 plus chord (0,5) making dilation interesting.
    return Topology(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])


@pytest.fixture
def line_tree():
    return SpanningTree(0, [-1, 0, 1, 2, 3, 4])


def test_block_components_counts_singletons(line, line_tree):
    parts = Partition(6, [[1, 3, 5]])  # scattered nodes, no edges
    s = TreeRestrictedShortcut.empty(line_tree, parts)
    blocks = quality.block_components(s, 0)
    assert len(blocks) == 3
    assert all(b.size == 1 for b in blocks)


def test_block_components_merge_via_edges(line, line_tree):
    parts = Partition(6, [[1, 3]])
    s = TreeRestrictedShortcut(line_tree, parts, [[(1, 2), (2, 3)]])
    blocks = quality.block_components(s, 0)
    assert len(blocks) == 1
    assert blocks[0].nodes == frozenset({1, 2, 3})
    assert blocks[0].root == 1
    assert blocks[0].root_depth == 1


def test_block_components_exclude_non_intersecting(line, line_tree):
    parts = Partition(6, [[1]])
    # An H_i component far from the part: nodes 3-4.
    s = TreeRestrictedShortcut(line_tree, parts, [[(3, 4)]])
    blocks = quality.block_components(s, 0)
    assert len(blocks) == 1  # only the singleton {1}
    assert blocks[0].nodes == frozenset({1})


def test_block_parameter_is_max(line, line_tree):
    parts = Partition(6, [[1, 3], [5]])
    s = TreeRestrictedShortcut.empty(line_tree, parts)
    assert quality.block_counts(s) == [2, 1]
    assert quality.block_parameter(s) == 2


def test_shortcut_congestion(line, line_tree):
    parts = Partition(6, [[1], [3], [5]])
    s = TreeRestrictedShortcut(
        line_tree, parts,
        [[(0, 1)], [(0, 1), (1, 2)], [(0, 1)]],
    )
    assert quality.shortcut_congestion(s) == 3


def test_definition1_congestion_counts_part_internal_edges(line, line_tree):
    parts = Partition(6, [[0, 1]])
    s = TreeRestrictedShortcut(line_tree, parts, [[(0, 1)]])
    # Edge (0,1) is in H_0 *and* inside G[P_0]: counted once.
    assert quality.congestion(s, line) == 1
    parts2 = Partition(6, [[0, 1], [2]])
    s2 = TreeRestrictedShortcut(line_tree, parts2, [[], [(0, 1), (1, 2)]])
    # Edge (0,1): inside G[P_0] and in H_1 -> congestion 2.
    assert quality.congestion(s2, line) == 2


def test_dilation_uses_shortcut_edges(line, line_tree):
    parts = Partition(6, [[0, 5]])  # adjacent via chord (0,5)
    s = TreeRestrictedShortcut.empty(line_tree, parts)
    assert quality.dilation(s, line) == 1  # the chord is in G[P_0]


def test_dilation_disconnected_raises(line, line_tree):
    parts = Partition(6, [[1], [3]])
    s = TreeRestrictedShortcut.empty(line_tree, parts)
    # Parts themselves are fine (singletons), but a combined part
    # {1, 3} with no connection would raise:
    bad = Partition(6, [[1, 3]])
    s_bad = TreeRestrictedShortcut.empty(line_tree, bad)
    with pytest.raises(ShortcutError):
        quality.dilation(s_bad, line)


def test_dilation_improves_with_shortcut(grid6, grid6_tree):
    from repro.graphs.partitions import grid_rows
    from repro.core.existence import full_ancestor_shortcut

    parts = grid_rows(6, 6)
    empty = TreeRestrictedShortcut.empty(grid6_tree, parts)
    full = full_ancestor_shortcut(grid6_tree, parts)
    assert quality.dilation(full, grid6) <= quality.dilation(empty, grid6) + 2 * grid6_tree.height


def test_lemma1_bound_formula():
    assert quality.lemma1_bound(3, 10) == 3 * 21


def test_lemma1_holds_for_greedy_shortcuts(grid6, grid6_tree, grid6_voronoi):
    from repro.core.existence import greedy_capped_shortcut

    for cap in (1, 2, 4, 8):
        s, _unusable = greedy_capped_shortcut(grid6_tree, grid6_voronoi, cap)
        report = quality.measure(s, grid6)
        assert report.dilation <= report.lemma1_dilation_bound


def test_measure_report_fields(grid6, grid6_tree, grid6_voronoi):
    from repro.core.existence import full_ancestor_shortcut

    s = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    report = quality.measure(s, grid6)
    assert report.block_parameter == 1
    assert report.congestion >= report.shortcut_congestion - 1
    assert report.dilation is not None
    assert report.tree_depth == grid6_tree.height
    assert "congestion" in str(report)


def test_measure_without_dilation(grid6, grid6_tree, grid6_voronoi):
    from repro.core.existence import full_ancestor_shortcut

    s = full_ancestor_shortcut(grid6_tree, grid6_voronoi)
    report = quality.measure(s, grid6, with_dilation=False)
    assert report.dilation is None
    assert "-" in str(report)


@pytest.mark.parametrize("kernel", quality.KERNELS)
def test_zero_part_shortcut_returns_zero(line, line_tree, kernel):
    """Regression: block_parameter / measure used to crash with
    ``ValueError: max() arg is an empty sequence`` on zero parts."""
    parts = Partition(6, [])
    s = TreeRestrictedShortcut.empty(line_tree, parts)
    assert quality.block_parameter(s) == 0
    assert quality.block_counts(s) == []
    report = quality.measure(s, line, kernel=kernel)
    assert report.block_parameter == 0
    assert report.congestion == 0
    assert report.shortcut_congestion == 0
    assert report.dilation == 0
    assert report.block_counts == ()


@pytest.mark.parametrize("kernel", quality.KERNELS)
def test_dilation_disconnected_raises_per_part(line, line_tree, kernel):
    """The disconnected error must also fire on a single-part query,
    name the offending part, and leave connected parts measurable."""
    parts = Partition(6, [[0, 1], [3, 5]])  # part 1 disconnected in G[P_1]+H_1
    s = TreeRestrictedShortcut.empty(line_tree, parts)
    with quality.using_kernel(kernel):
        assert quality.measure(s, line, with_dilation=False).dilation is None
        with pytest.raises(ShortcutError, match="G\\[P_1\\]"):
            quality.measure(s, line)
    dilation_of = quality.dilation if kernel == "reference" else quality_fast.dilation
    assert dilation_of(s, line, 0) == 1
    with pytest.raises(ShortcutError, match="disconnected"):
        dilation_of(s, line, 1)


@pytest.mark.parametrize("kernel", quality.KERNELS)
def test_congestion_ignores_weights(line, line_tree, kernel):
    """Definition 1 counts subgraphs per edge; weights must not change
    any quality measure."""
    parts = Partition(6, [[0, 1], [2]])
    subgraphs = [[], [(0, 1), (1, 2)]]
    s = TreeRestrictedShortcut(line_tree, parts, subgraphs)
    plain = quality.measure(s, line, kernel=kernel)
    heavy = line.with_weights({edge: 1000 + i for i, edge in enumerate(line.edges)})
    tree = SpanningTree(0, [-1, 0, 1, 2, 3, 4])
    s_heavy = TreeRestrictedShortcut(tree, parts, subgraphs)
    assert quality.measure(s_heavy, heavy, kernel=kernel) == plain
    assert quality.congestion(s_heavy, heavy) == 2


def test_block_root_is_unique_min_depth(grid6, grid6_tree):
    parts = Partition(36, [[30, 31, 32]])
    edges = [grid6_tree.parent_edge(v) for v in (30, 31, 32)]
    s = TreeRestrictedShortcut(grid6_tree, parts, [[e for e in edges if e]])
    for block in quality.block_components(s, 0):
        min_depth = min(grid6_tree.depth(v) for v in block.nodes)
        roots = [v for v in block.nodes if grid6_tree.depth(v) == min_depth]
        assert roots == [block.root]
